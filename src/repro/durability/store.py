"""Generational crash-safe snapshot store (``repro.durability``).

A :class:`SnapshotStore` owns one directory tree::

    <root>/
      gen-0000001/
        part-00000.bin      framed chunks of the pickled engine
        part-00001.bin      (header + payload + CRC32C each, see format.py)
        ...
        MANIFEST.json       written LAST, via temp -> fsync -> rename -> dir fsync
      gen-0000002/
        ...

The write protocol makes the manifest the commit point: part files are
written and fsynced first, the generation directory is fsynced so their
entries are durable, and only then is the manifest atomically renamed
into place and sealed.  A generation without an intact manifest never
existed as far as recovery is concerned — so a crash at *any* byte of
the write leaves either the new generation fully committed or the
previous one untouched, never a half-state.

Recovery (:meth:`SnapshotStore.recover`) scans generations newest-first
and loads the first one that survives full validation: manifest present
and parseable, every part present with the declared size, every part's
framing, version, config digest and CRC32C intact, and the reassembled
payload unpickling into an engine.  Anything less rejects the
generation and falls back; when nothing survives, the scan raises
:class:`~repro.errors.NoValidSnapshotError` (or
:class:`~repro.errors.SnapshotVersionError` when the only intact
generations are version-skewed) so callers rebuild from source instead
of serving partial state.
"""

from __future__ import annotations

import io as _io
import json
import os
import pickle
import shutil
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import (
    NoValidSnapshotError,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
)
from ..faults import FaultPlan
from ..obs import NOOP_SPAN
from ..storage.checksum import crc32c
from .format import FORMAT_VERSION, config_digest, decode_part, encode_part
from .io import CrashSimulator, DurableFile, atomic_write_bytes, fsync_dir

MANIFEST_NAME = "MANIFEST.json"
_GEN_PREFIX = "gen-"
_PART_PREFIX = "part-"


@dataclass
class GenerationInfo:
    """One generation directory as the recovery scan saw it."""

    number: int
    path: str
    ok: bool = False
    parts: int = 0
    bytes: int = 0
    config_digest: int = 0
    problems: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "number": self.number,
            "ok": self.ok,
            "parts": self.parts,
            "bytes": self.bytes,
            "config_digest": self.config_digest,
            "problems": list(self.problems),
        }


@dataclass
class FsckReport:
    """Offline integrity check over every generation in a store."""

    root: str
    generations: List[GenerationInfo] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """At least one generation would survive recovery."""
        return any(gen.ok for gen in self.generations)

    @property
    def newest_valid(self) -> Optional[int]:
        valid = [gen.number for gen in self.generations if gen.ok]
        return max(valid) if valid else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "newest_valid": self.newest_valid,
            "generations": [
                gen.to_dict()
                for gen in sorted(self.generations, key=lambda g: g.number)
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, stable ordering) for diffing."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


class SnapshotStore:
    """Crash-safe, generational persistence for one engine.

    Thread-safe: one internal lock serializes writers and guards the
    recovery counters surfaced on ``/metrics``.
    """

    def __init__(
        self,
        root: str,
        keep: int = 2,
        part_bytes: int = 1 << 20,
        plan: Optional[FaultPlan] = None,
    ):
        """Args:
            root: store directory (created if missing).
            keep: how many intact generations to retain after a save.
            part_bytes: payload bytes per part file — small values force
                multi-part generations, which the tests use to place
                crash points on structural boundaries.
            plan: default fault plan for writes (chaos harness hook).
        """
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = max(1, keep)
        self.part_bytes = max(1, part_bytes)
        self.plan = plan
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "writes": 0,
            "write_failures": 0,
            "recoveries": 0,
            "fallbacks": 0,
            "generations_rejected": 0,
            "generations_pruned": 0,
        }  # guarded by: self._lock

    # -- introspection -------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Copy of the recovery/write counters (``/metrics`` material)."""
        with self._lock:
            return dict(self._counters)

    def _bump(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[key] += amount

    def generation_numbers(self) -> List[int]:
        """Generation numbers present on disk, ascending."""
        numbers = []
        for entry in self.root.iterdir() if self.root.exists() else ():
            name = entry.name
            if entry.is_dir() and name.startswith(_GEN_PREFIX):
                suffix = name[len(_GEN_PREFIX):]
                if suffix.isdigit():
                    numbers.append(int(suffix))
        return sorted(numbers)

    def _gen_dir(self, number: int) -> Path:
        return self.root / f"{_GEN_PREFIX}{number:07d}"

    # -- writing -------------------------------------------------------------

    def save(
        self,
        engine: object,
        span: object = None,
        sim: Optional[CrashSimulator] = None,
    ) -> GenerationInfo:
        """Write the next generation durably; prune old ones on success.

        The manifest is the commit point: until its atomic rename is
        sealed by the directory fsync, the generation does not exist to
        recovery.  Raises a typed :class:`~repro.errors.SnapshotError`
        subclass on injected write faults, leaving the store exactly as
        it was.
        """
        span = (span if span is not None else NOOP_SPAN).child("snapshot.write")
        sim = sim if sim is not None else CrashSimulator(plan=self.plan)
        try:
            with span:
                numbers = self.generation_numbers()
                number = (numbers[-1] + 1) if numbers else 1
                gen_dir = self._gen_dir(number)
                span.set("generation", number)
                gen_dir.mkdir()
                payload = pickle.dumps(engine, protocol=pickle.HIGHEST_PROTOCOL)
                digest = config_digest(engine)
                parts = []
                for index in range(0, max(1, -(-len(payload) // self.part_bytes))):
                    chunk = payload[
                        index * self.part_bytes : (index + 1) * self.part_bytes
                    ]
                    blob = encode_part(chunk, digest)
                    name = f"{_PART_PREFIX}{index:05d}.bin"
                    with DurableFile(str(gen_dir / name), sim) as handle:
                        handle.write(blob)
                        handle.fsync()
                    parts.append(
                        {
                            "name": name,
                            "bytes": len(blob),
                            "payload_bytes": len(chunk),
                            "crc32c": crc32c(blob),
                        }
                    )
                    span.event("part_written", part=name, bytes=len(blob))
                # Part directory entries must be durable before the
                # manifest can commit the generation.
                fsync_dir(str(gen_dir), sim)
                manifest = {
                    "format_version": FORMAT_VERSION,
                    "generation": number,
                    "config_digest": digest,
                    "payload_bytes": len(payload),
                    "parts": parts,
                }
                blob = json.dumps(manifest, sort_keys=True, indent=2).encode(
                    "utf-8"
                )
                atomic_write_bytes(str(gen_dir / MANIFEST_NAME), blob, sim)
                span.event("manifest_committed", bytes=len(blob))
                info = GenerationInfo(
                    number=number,
                    path=str(gen_dir),
                    ok=True,
                    parts=len(parts),
                    bytes=sum(part["bytes"] for part in parts) + len(blob),
                    config_digest=digest,
                )
        except SnapshotError:
            self._bump("write_failures")
            raise
        self._bump("writes")
        self._prune()
        return info

    def _prune(self) -> None:
        """Drop generations older than the ``keep`` newest intact ones.

        Only runs after a successful save, so the newest generation is
        known-good; crashed attempts *between* surviving generations are
        left for fsck to report, bounded by the next successful save.
        """
        valid = [
            number
            for number in reversed(self.generation_numbers())
            if self._validate(number)[0] is not None
        ]
        if len(valid) <= self.keep:
            return
        horizon = valid[self.keep - 1]
        for number in self.generation_numbers():
            if number < horizon:
                shutil.rmtree(self._gen_dir(number), ignore_errors=True)
                self._bump("generations_pruned")

    # -- validation ----------------------------------------------------------

    def _validate(
        self, number: int
    ) -> Tuple[Optional[bytes], GenerationInfo]:
        """Fully validate one generation; return (payload or None, info)."""
        gen_dir = self._gen_dir(number)
        info = GenerationInfo(number=number, path=str(gen_dir))
        manifest_path = gen_dir / MANIFEST_NAME
        if not manifest_path.exists():
            info.problems.append("manifest missing (write never committed)")
            return None, info
        try:
            manifest = json.loads(manifest_path.read_bytes())
        except (ValueError, OSError) as exc:
            info.problems.append(f"manifest unreadable: {exc}")
            return None, info
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            info.problems.append(
                f"format version {version} (this build reads v{FORMAT_VERSION})"
            )
            return None, info
        digest = manifest.get("config_digest", 0)
        info.config_digest = digest
        assembled = _io.BytesIO()
        for part in manifest.get("parts", ()):
            name = str(part.get("name", ""))
            part_path = gen_dir / name
            if os.sep in name or not name.startswith(_PART_PREFIX):
                info.problems.append(f"manifest names a foreign part {name!r}")
                continue
            if not part_path.exists():
                info.problems.append(f"{name}: missing")
                continue
            blob = part_path.read_bytes()
            if len(blob) != part.get("bytes"):
                info.problems.append(
                    f"{name}: {len(blob)} bytes on disk, manifest declares "
                    f"{part.get('bytes')}"
                )
                continue
            if crc32c(blob) != part.get("crc32c"):
                info.problems.append(
                    f"{name}: framed CRC32C does not match the manifest"
                )
                continue
            try:
                payload, part_digest = decode_part(blob, path=name)
            except SnapshotError as exc:
                info.problems.append(f"{name}: {exc}")
                continue
            if part_digest != digest:
                info.problems.append(
                    f"{name}: config digest {part_digest:#010x} does not "
                    f"match the manifest's {digest:#010x}"
                )
                continue
            info.parts += 1
            info.bytes += len(blob)
            assembled.write(payload)
        if info.problems:
            return None, info
        payload = assembled.getvalue()
        if len(payload) != manifest.get("payload_bytes"):
            info.problems.append(
                f"reassembled payload is {len(payload)} bytes, manifest "
                f"declares {manifest.get('payload_bytes')}"
            )
            return None, info
        info.ok = True
        info.bytes += len(manifest_path.read_bytes())
        return payload, info

    # -- recovery ------------------------------------------------------------

    def recover(self, span: object = None) -> Tuple[object, GenerationInfo]:
        """Load the newest fully-intact generation.

        Scans newest-first; every rejected generation is recorded (a
        span event plus the ``generations_rejected`` counter) and the
        scan falls back to the next older one.  Raises
        :class:`~repro.errors.NoValidSnapshotError` when nothing
        survives, or :class:`~repro.errors.SnapshotVersionError` when
        the only structurally-intact generations are version-skewed.
        """
        from ..engine import XRankEngine  # runtime import: engine pulls in durability lazily too

        span = (span if span is not None else NOOP_SPAN).child(
            "snapshot.recover"
        )
        with span:
            numbers = list(reversed(self.generation_numbers()))
            span.set("generations_on_disk", len(numbers))
            rejected = 0
            version_skew = False
            for number in numbers:
                payload, info = self._validate(number)
                if payload is None:
                    rejected += 1
                    version_skew = version_skew or any(
                        "format version" in problem for problem in info.problems
                    )
                    span.event(
                        "generation_rejected",
                        generation=number,
                        reason=info.problems[0] if info.problems else "unknown",
                    )
                    continue
                try:
                    engine = pickle.loads(payload)
                except Exception as exc:  # checksummed payload that still fails to unpickle is corruption, whatever pickle raises
                    rejected += 1
                    span.event(
                        "generation_rejected",
                        generation=number,
                        reason=f"unpickle failed: {exc}",
                    )
                    continue
                if not isinstance(engine, XRankEngine):
                    rejected += 1
                    span.event(
                        "generation_rejected",
                        generation=number,
                        reason=f"payload is {type(engine).__name__}, not an engine",
                    )
                    continue
                if config_digest(engine) != info.config_digest:
                    rejected += 1
                    span.event(
                        "generation_rejected",
                        generation=number,
                        reason="config digest mismatch after unpickling",
                    )
                    continue
                self._bump("recoveries")
                if rejected:
                    self._bump("fallbacks")
                    self._bump("generations_rejected", rejected)
                span.set("generation", number)
                span.set("fell_back", rejected > 0)
                span.event("recovered", generation=number, rejected=rejected)
                return engine, info
            if rejected:
                self._bump("generations_rejected", rejected)
            if version_skew:
                raise SnapshotVersionError(
                    f"every intact generation under {self.root} is "
                    "version-skewed; nothing this build can read"
                )
            if numbers:
                raise NoValidSnapshotError(
                    f"no intact generation under {self.root} "
                    f"({rejected} rejected); rebuild from source"
                )
            raise NoValidSnapshotError(
                f"no snapshot generations under {self.root}"
            )

    # -- offline checking ----------------------------------------------------

    def fsck(self) -> FsckReport:
        """Validate every generation without loading any of them."""
        report = FsckReport(root=str(self.root))
        for number in self.generation_numbers():
            _payload, info = self._validate(number)
            report.generations.append(info)
        return report
