"""Tests for query workload generation."""

import pytest

from repro.datasets.dblp import generate_dblp
from repro.datasets.textgen import PlantedKeywords
from repro.datasets.workloads import (
    document_frequencies,
    high_correlation_queries,
    low_correlation_queries,
    random_queries,
)
from repro.errors import QueryError


@pytest.fixture(scope="module")
def plan():
    return PlantedKeywords.default(num_groups=3, group_size=4)


@pytest.fixture(scope="module")
def corpus():
    return generate_dblp(num_papers=50, seed=3)


class TestPlantedWorkloads:
    def test_high_correlation_from_one_group(self, plan):
        workload = high_correlation_queries(plan, 3, num_queries=5)
        assert len(workload) == 5
        for query in workload:
            assert len(query) == 3
            groups_containing = [
                g for g in plan.correlated_groups if set(query) <= set(g)
            ]
            assert groups_containing

    def test_high_correlation_too_many_keywords(self, plan):
        with pytest.raises(QueryError):
            high_correlation_queries(plan, 9)

    def test_high_correlation_requires_groups(self):
        with pytest.raises(QueryError):
            high_correlation_queries(PlantedKeywords(), 2)

    def test_low_correlation_distinct_keywords(self, plan):
        workload = low_correlation_queries(plan, 2, num_queries=4)
        for query in workload:
            assert len(set(query)) == 2
            assert all(k in plan.independent_keywords for k in query)

    def test_low_correlation_too_many(self, plan):
        with pytest.raises(QueryError):
            low_correlation_queries(plan, 99)

    def test_workload_iteration(self, plan):
        workload = high_correlation_queries(plan, 2, num_queries=3)
        assert list(workload) == workload.queries


class TestRandomWorkloads:
    def test_document_frequencies(self, corpus):
        freqs = document_frequencies(corpus.graph)
        # 'article' is a tag on every paper.
        assert freqs["article"] == corpus.num_documents
        assert all(count >= 1 for count in freqs.values())

    def test_selectivity_bands(self, corpus):
        freqs = document_frequencies(corpus.graph)
        high = random_queries(corpus.graph, 2, selectivity_band="high", seed=1)
        low = random_queries(corpus.graph, 2, selectivity_band="low", seed=1)
        mean_high = sum(
            freqs[k] for q in high for k in q
        ) / (2 * len(high))
        mean_low = sum(freqs[k] for q in low for k in q) / (2 * len(low))
        assert mean_high > mean_low

    def test_deterministic_with_seed(self, corpus):
        a = random_queries(corpus.graph, 2, seed=5)
        b = random_queries(corpus.graph, 2, seed=5)
        assert a.queries == b.queries

    def test_unknown_band(self, corpus):
        with pytest.raises(QueryError):
            random_queries(corpus.graph, 2, selectivity_band="weird")
