"""Crash-safety tests for repro.durability: part framing, the crash
simulator's loss model, the generational store's recover-or-fallback
contract (boundary truncations + a power-cut offset sweep), fsck, the
CLI surface, and the durable-write lint rule."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.linter import Linter
from repro.analysis.rules import ALL_RULES
from repro.cli import main
from repro.durability import (
    FRAME_OVERHEAD,
    HEADER_SIZE,
    MAGIC,
    CrashSimulator,
    DurableFile,
    SnapshotStore,
    atomic_write_bytes,
    config_digest,
    decode_part,
    encode_part,
    fsync_dir,
    verify_durability,
)
from repro.durability.store import MANIFEST_NAME
from repro.engine import XRankEngine
from repro.errors import (
    ClusterError,
    NoValidSnapshotError,
    PowerCutError,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    SnapshotWriteError,
)
from repro.faults import (
    SITE_FSYNC_DROPPED,
    SITE_POWERCUT,
    SITE_WRITE_ERROR,
    SITE_WRITE_TORN,
    FaultPlan,
    FaultSpec,
)
from repro.obs import Span

DOCS = [
    ("a.xml", "<doc><title>alpha beta</title><p>alpha gamma</p></doc>"),
    ("b.xml", "<doc><title>beta gamma</title><p>alpha beta</p></doc>"),
    ("c.xml", "<doc><title>delta</title><p>gamma alpha words</p></doc>"),
]


def build_engine(extra=False) -> XRankEngine:
    engine = XRankEngine()
    for uri, source in DOCS:
        engine.add_xml(source, uri=uri)
    if extra:
        engine.add_xml("<doc><p>epsilon alpha fresh</p></doc>", uri="d.xml")
    engine.build(kinds=("dil",))
    return engine


def answers(engine):
    return [
        [(hit.dewey, hit.rank) for hit in engine.search(q, m=10, kind="dil")]
        for q in ("alpha", "beta gamma", "delta")
    ]


# -- part framing ------------------------------------------------------------------


class TestPartFormat:
    def test_round_trip_preserves_payload_and_digest(self):
        blob = encode_part(b"hello snapshot", digest=0xDEADBEEF)
        payload, digest = decode_part(blob)
        assert payload == b"hello snapshot"
        assert digest == 0xDEADBEEF

    def test_frame_overhead_is_fixed(self):
        assert len(encode_part(b"")) == FRAME_OVERHEAD
        assert len(encode_part(b"xyz")) == FRAME_OVERHEAD + 3

    def test_file_is_greppable_by_magic(self):
        assert encode_part(b"payload").startswith(MAGIC)

    def test_bad_magic_is_a_version_error_not_corruption(self):
        blob = b"NOTSNAP!" + encode_part(b"payload")[8:]
        with pytest.raises(SnapshotVersionError, match="bad magic"):
            decode_part(blob)

    def test_future_format_version_is_typed(self):
        blob = bytearray(encode_part(b"payload"))
        blob[8] = 0xFF  # version u16 LE at offset 8
        with pytest.raises(SnapshotVersionError, match="format v"):
            decode_part(bytes(blob))

    def test_truncation_at_every_byte_is_typed(self):
        blob = encode_part(b"some payload bytes", digest=7)
        for cut in range(len(blob)):
            with pytest.raises((SnapshotCorruptError, SnapshotVersionError)):
                decode_part(blob[:cut])

    def test_single_flipped_bit_fails_crc(self):
        blob = bytearray(encode_part(b"x" * 64))
        blob[HEADER_SIZE + 10] ^= 0x40
        with pytest.raises(SnapshotCorruptError, match="CRC32C"):
            decode_part(bytes(blob))

    def test_trailing_garbage_is_rejected(self):
        with pytest.raises(SnapshotCorruptError, match="truncated"):
            decode_part(encode_part(b"payload") + b"junk")

    def test_config_digest_pins_ranking_knobs(self):
        a, b = build_engine(), build_engine()
        assert config_digest(a) == config_digest(b)
        b.drop_stopwords = not getattr(b, "drop_stopwords", False)
        assert config_digest(a) != config_digest(b)


# -- the crash simulator -----------------------------------------------------------


class TestCrashSimulator:
    def test_unsynced_bytes_are_lost(self, tmp_path):
        sim = CrashSimulator()
        path = tmp_path / "f"
        with DurableFile(str(path), sim) as handle:
            handle.write(b"durable!")
            handle.fsync()
            handle.write(b"volatile")
        sim.crash()
        assert path.read_bytes() == b"durable!"

    def test_keep_unsynced_models_a_lucky_flush(self, tmp_path):
        sim = CrashSimulator(keep_unsynced=True)
        path = tmp_path / "f"
        with DurableFile(str(path), sim) as handle:
            handle.write(b"durable!")
            handle.fsync()
            handle.write(b"volatile")
        sim.crash()
        assert path.read_bytes() == b"durable!volatile"

    def test_unsealed_rename_is_undone_by_crash(self, tmp_path):
        sim = CrashSimulator()
        tmp, dst = tmp_path / "f.tmp", tmp_path / "f"
        with DurableFile(str(tmp), sim) as handle:
            handle.write(b"bytes")
            handle.fsync()
        sim.rename(str(tmp), str(dst))
        assert dst.exists()  # atomic for readers...
        sim.crash()
        assert not dst.exists() and tmp.exists()  # ...but not durable

    def test_dir_fsync_seals_the_rename(self, tmp_path):
        sim = CrashSimulator()
        tmp, dst = tmp_path / "f.tmp", tmp_path / "f"
        with DurableFile(str(tmp), sim) as handle:
            handle.write(b"bytes")
            handle.fsync()
        sim.rename(str(tmp), str(dst))
        fsync_dir(str(tmp_path), sim)
        sim.crash()
        assert dst.read_bytes() == b"bytes"

    def test_atomic_write_bytes_survives_a_crash_after_return(self, tmp_path):
        sim = CrashSimulator()
        path = tmp_path / "blob"
        atomic_write_bytes(str(path), b"committed", sim)
        sim.crash()
        assert path.read_bytes() == b"committed"

    def test_dead_volume_refuses_all_io(self, tmp_path):
        sim = CrashSimulator(crash_at_byte=3)
        with pytest.raises(PowerCutError):
            with DurableFile(str(tmp_path / "f"), sim) as handle:
                handle.write(b"longer than three")
        assert sim.crashed
        with pytest.raises(PowerCutError):
            DurableFile(str(tmp_path / "g"), sim)

    def test_crash_at_byte_cuts_mid_write(self, tmp_path):
        sim = CrashSimulator(crash_at_byte=5)
        path = tmp_path / "f"
        with pytest.raises(PowerCutError):
            with DurableFile(str(path), sim) as handle:
                handle.write(b"0123456789")
        assert path.read_bytes() == b""  # nothing was ever fsynced

    def test_write_error_site_is_typed_and_nonfatal(self, tmp_path):
        plan = FaultPlan(1, [FaultSpec(SITE_WRITE_ERROR, probability=1.0, times=1)])
        sim = CrashSimulator(plan=plan)
        with DurableFile(str(tmp_path / "f"), sim) as handle:
            with pytest.raises(SnapshotWriteError):
                handle.write(b"data")
        assert not sim.crashed  # an EIO is not a power cut

    def test_dropped_fsync_is_silent_until_the_crash(self, tmp_path):
        plan = FaultPlan(
            1, [FaultSpec(SITE_FSYNC_DROPPED, probability=1.0, times=1)]
        )
        sim = CrashSimulator(plan=plan)
        path = tmp_path / "f"
        with DurableFile(str(path), sim) as handle:
            handle.write(b"supposedly durable")
            handle.fsync()  # dropped: returns, bytes stay volatile
        assert sim.dropped_fsyncs == 1
        sim.crash()
        assert path.read_bytes() == b""


# -- the generational store --------------------------------------------------------


class TestSnapshotStore:
    def test_save_recover_round_trip_multi_part(self, tmp_path):
        engine = build_engine()
        store = SnapshotStore(tmp_path, part_bytes=2048)
        info = store.save(engine)
        assert info.ok and info.parts > 1  # small parts force chunking
        recovered, rinfo = SnapshotStore(tmp_path).recover()
        assert rinfo.number == info.number
        assert answers(recovered) == answers(engine)

    def test_generations_are_sequential(self, tmp_path):
        engine = build_engine()
        store = SnapshotStore(tmp_path, keep=3)
        assert [store.save(engine).number for _ in range(3)] == [1, 2, 3]

    def test_prune_keeps_newest_intact(self, tmp_path):
        engine = build_engine()
        store = SnapshotStore(tmp_path, keep=2)
        for _ in range(4):
            store.save(engine)
        assert store.generation_numbers() == [3, 4]
        assert store.counters()["generations_pruned"] == 2

    def test_empty_store_raises_typed(self, tmp_path):
        with pytest.raises(NoValidSnapshotError, match="no snapshot"):
            SnapshotStore(tmp_path / "empty").recover()

    def test_fallback_past_corrupt_newest_generation(self, tmp_path):
        v1, v2 = build_engine(), build_engine(extra=True)
        store = SnapshotStore(tmp_path, part_bytes=2048)
        store.save(v1)
        info = store.save(v2)
        part = next(p for p in sorted((tmp_path / f"gen-{info.number:07d}").iterdir()) if p.name.startswith("part-"))
        part.write_bytes(part.read_bytes()[:-3])  # torn tail
        recovered, rinfo = SnapshotStore(tmp_path).recover()
        assert rinfo.number == 1
        assert answers(recovered) == answers(v1)
        counters = SnapshotStore(tmp_path).counters()
        assert counters["recoveries"] == 0  # fresh handle; per-store counters
        store2 = SnapshotStore(tmp_path)
        store2.recover()
        assert store2.counters()["fallbacks"] == 1
        assert store2.counters()["generations_rejected"] == 1

    def test_missing_manifest_means_generation_never_existed(self, tmp_path):
        v1, v2 = build_engine(), build_engine(extra=True)
        store = SnapshotStore(tmp_path)
        store.save(v1)
        info = store.save(v2)
        (tmp_path / f"gen-{info.number:07d}" / MANIFEST_NAME).unlink()
        recovered, rinfo = SnapshotStore(tmp_path).recover()
        assert rinfo.number == 1
        assert answers(recovered) == answers(v1)

    def test_version_skewed_store_raises_version_error(self, tmp_path):
        store = SnapshotStore(tmp_path)
        info = store.save(build_engine())
        manifest = tmp_path / f"gen-{info.number:07d}" / MANIFEST_NAME
        doc = json.loads(manifest.read_bytes())
        doc["format_version"] = 99
        manifest.write_text(json.dumps(doc))
        with pytest.raises(SnapshotVersionError, match="version-skewed"):
            SnapshotStore(tmp_path).recover()

    def test_all_corrupt_raises_no_valid_snapshot(self, tmp_path):
        store = SnapshotStore(tmp_path, part_bytes=2048)
        info = store.save(build_engine())
        gen = tmp_path / f"gen-{info.number:07d}"
        for part in gen.glob("part-*.bin"):
            part.write_bytes(b"\x00" * 10)
        with pytest.raises(NoValidSnapshotError, match="rebuild from source"):
            SnapshotStore(tmp_path).recover()

    def test_foreign_part_name_in_manifest_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(build_engine())
        info = store.save(build_engine(extra=True))
        manifest = tmp_path / f"gen-{info.number:07d}" / MANIFEST_NAME
        doc = json.loads(manifest.read_bytes())
        doc["parts"][0]["name"] = "../../etc/passwd"
        manifest.write_text(json.dumps(doc))
        _engine, rinfo = SnapshotStore(tmp_path).recover()
        assert rinfo.number == 1  # fell back, never opened the foreign path

    def test_fsck_reports_each_generation(self, tmp_path):
        v1, v2 = build_engine(), build_engine(extra=True)
        store = SnapshotStore(tmp_path, part_bytes=2048)
        store.save(v1)
        info = store.save(v2)
        part = next(iter(sorted((tmp_path / f"gen-{info.number:07d}").glob("part-*.bin"))))
        part.write_bytes(part.read_bytes()[:10])
        report = SnapshotStore(tmp_path).fsck()
        assert report.ok and report.newest_valid == 1
        by_number = {gen.number: gen for gen in report.generations}
        assert by_number[1].ok and not by_number[2].ok
        assert any("bytes on disk" in p for p in by_number[2].problems)
        # canonical JSON is byte-stable
        assert report.to_json() == SnapshotStore(tmp_path).fsck().to_json()

    def test_failed_save_leaves_store_recoverable(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(build_engine())
        plan = FaultPlan(5, [FaultSpec(SITE_POWERCUT, probability=1.0, times=1)])
        with pytest.raises(SnapshotError):
            store.save(build_engine(extra=True), sim=CrashSimulator(plan=plan))
        assert store.counters()["write_failures"] == 1
        engine, info = SnapshotStore(tmp_path).recover()
        assert info.number == 1 and answers(engine) == answers(build_engine())


# -- boundary truncations of a committed generation --------------------------------


class TestBoundaryTruncations:
    """Truncate a committed generation at every structural boundary —
    header seam, part framing edge, manifest — and prove recovery
    falls back to generation 1, never serving mixed state."""

    @pytest.fixture()
    def stores(self, tmp_path):
        v1, v2 = build_engine(), build_engine(extra=True)
        store = SnapshotStore(tmp_path, part_bytes=2048)
        store.save(v1)
        info = store.save(v2)
        return tmp_path, info, answers(v1), answers(v2)

    def _recover(self, root):
        return SnapshotStore(root).recover()

    @pytest.mark.parametrize(
        "cut",
        [0, 1, HEADER_SIZE - 1, HEADER_SIZE, HEADER_SIZE + 1, -4, -1],
    )
    def test_part_truncated_at_boundary_falls_back(self, stores, cut):
        root, info, oracle_v1, _oracle_v2 = stores
        part = sorted((root / f"gen-{info.number:07d}").glob("part-*.bin"))[0]
        blob = part.read_bytes()
        part.write_bytes(blob[: cut if cut >= 0 else len(blob) + cut])
        engine, rinfo = self._recover(root)
        assert rinfo.number == 1
        assert answers(engine) == oracle_v1

    @pytest.mark.parametrize("cut", [0, 1, 10, -1])
    def test_manifest_truncated_falls_back(self, stores, cut):
        root, info, oracle_v1, _oracle_v2 = stores
        manifest = root / f"gen-{info.number:07d}" / MANIFEST_NAME
        blob = manifest.read_bytes()
        manifest.write_bytes(blob[: cut if cut >= 0 else len(blob) + cut])
        engine, rinfo = self._recover(root)
        assert rinfo.number == 1
        assert answers(engine) == oracle_v1

    def test_untouched_generation_recovers_new(self, stores):
        root, info, _oracle_v1, oracle_v2 = stores
        engine, rinfo = self._recover(root)
        assert rinfo.number == info.number
        assert answers(engine) == oracle_v2


# -- power-cut offset sweep (hypothesis-style) -------------------------------------


class TestPowerCutSweep:
    def test_every_offset_recovers_or_falls_back(self, tmp_path):
        """Crash a generation-2 save at seeded byte offsets under both
        page-cache models; every outcome must equal one oracle."""
        import random
        import shutil

        v1, v2 = build_engine(), build_engine(extra=True)
        oracle_v1, oracle_v2 = answers(v1), answers(v2)
        base = tmp_path / "base"
        SnapshotStore(base, part_bytes=2048).save(v1)

        probe = tmp_path / "probe"
        shutil.copytree(base, probe)
        sim = CrashSimulator()
        SnapshotStore(probe, part_bytes=2048).save(v2, sim=sim)
        total = sim.written

        rng = random.Random(42)
        offsets = {0, 1, total - 1, total, total + 1}
        offsets.update(rng.randrange(total + 1) for _ in range(8))
        fallbacks = 0
        for offset in sorted(offsets):
            for keep_unsynced in (False, True):
                case = tmp_path / "case"
                if case.exists():
                    shutil.rmtree(case)
                shutil.copytree(base, case)
                store = SnapshotStore(case, part_bytes=2048)
                try:
                    store.save(
                        v2,
                        sim=CrashSimulator(
                            crash_at_byte=offset, keep_unsynced=keep_unsynced
                        ),
                    )
                except (PowerCutError, SnapshotWriteError):
                    pass
                engine, _info = SnapshotStore(case, part_bytes=2048).recover()
                got = answers(engine)
                assert got in (oracle_v1, oracle_v2), (
                    f"offset={offset} keep_unsynced={keep_unsynced}: "
                    "answers match neither oracle — mixed state"
                )
                if got == oracle_v1:
                    fallbacks += 1
        assert fallbacks > 0  # the sweep actually bit

    def test_battery_passes_and_is_deterministic(self, tmp_path):
        report = verify_durability(seed=11, interior_offsets=2, part_bytes=8192)
        assert report.ok, report.violations
        assert report.cases > 0
        assert report.fallbacks_seen > 0
        again = verify_durability(seed=11, interior_offsets=2, part_bytes=8192)
        assert report.to_json() == again.to_json()

    def test_every_write_site_produces_a_case(self):
        report = verify_durability(seed=3, interior_offsets=0, part_bytes=8192)
        assert report.ok, report.violations
        sites = {label.split(",")[0] for label in report.site_outcomes}
        assert {
            f"site={SITE_WRITE_ERROR}",
            f"site={SITE_WRITE_TORN}",
            f"site={SITE_POWERCUT}",
            f"site={SITE_FSYNC_DROPPED}",
        } <= sites


# -- tracing -----------------------------------------------------------------------


class TestSnapshotSpans:
    def test_save_emits_snapshot_write_span(self, tmp_path):
        root = Span("test.root", trace_id="t1")
        store = SnapshotStore(tmp_path, part_bytes=2048)
        store.save(build_engine(), span=root)
        (write,) = [s for s in root.children if s.name == "snapshot.write"]
        assert write.attrs["generation"] == 1
        events = [event["name"] for event in write.events]
        assert "part_written" in events
        assert events[-1] == "manifest_committed"

    def test_recover_span_records_fallback(self, tmp_path):
        store = SnapshotStore(tmp_path, part_bytes=2048)
        store.save(build_engine())
        info = store.save(build_engine(extra=True))
        gen = tmp_path / f"gen-{info.number:07d}"
        (gen / MANIFEST_NAME).unlink()
        root = Span("test.root", trace_id="t1")
        SnapshotStore(tmp_path).recover(span=root)
        (recover,) = [s for s in root.children if s.name == "snapshot.recover"]
        assert recover.attrs["generation"] == 1
        assert recover.attrs["fell_back"] is True
        events = [event["name"] for event in recover.events]
        assert "generation_rejected" in events and "recovered" in events


# -- CLI: repro snapshot / repro fsck ----------------------------------------------


class TestSnapshotCLI:
    @pytest.fixture()
    def engine_file(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        for uri, source in DOCS:
            (docs / uri).write_text(source)
        out = tmp_path / "engine.xrank"
        assert main(["index", str(docs), "--out", str(out)]) == 0
        return out

    def test_save_load_fsck_round_trip(self, engine_file, tmp_path, capsys):
        snapdir = tmp_path / "snaps"
        assert main(
            ["snapshot", "save", str(snapdir), "--index", str(engine_file)]
        ) == 0
        assert "committed generation 1" in capsys.readouterr().out
        assert main(
            ["snapshot", "load", str(snapdir), "--query", "alpha"]
        ) == 0
        out = capsys.readouterr().out
        assert "recovered generation 1" in out and "result(s)" in out
        assert main(["fsck", str(snapdir)]) == 0
        assert "newest recoverable generation: 1" in capsys.readouterr().out

    def test_fsck_flags_corruption_and_load_falls_back(
        self, engine_file, tmp_path, capsys
    ):
        snapdir = tmp_path / "snaps"
        main(["snapshot", "save", str(snapdir), "--index", str(engine_file)])
        main(["snapshot", "save", str(snapdir), "--index", str(engine_file)])
        part = next((snapdir / "gen-0000002").glob("part-*.bin"))
        part.write_bytes(part.read_bytes()[:16])
        capsys.readouterr()
        assert main(["fsck", str(snapdir)]) == 0  # gen 1 still recoverable
        out = capsys.readouterr().out
        assert "gen-0000002: CORRUPT" in out
        assert "newest recoverable generation: 1" in out
        assert main(["snapshot", "load", str(snapdir)]) == 0
        assert "fell back past 1 rejected" in capsys.readouterr().out

    def test_fsck_json_is_canonical(self, engine_file, tmp_path, capsys):
        snapdir = tmp_path / "snaps"
        main(["snapshot", "save", str(snapdir), "--index", str(engine_file)])
        capsys.readouterr()
        assert main(["fsck", str(snapdir), "--json"]) == 0
        first = capsys.readouterr().out
        assert json.loads(first)["ok"] is True
        assert main(["fsck", str(snapdir), "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_fsck_empty_dir_exits_nonzero(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        assert main(["fsck", str(empty)]) == 1
        assert "no snapshot generations" in capsys.readouterr().out

    def test_verify_reduced_sweep_exits_zero(self, tmp_path, capsys):
        assert main(
            ["snapshot", "verify", "--seed", "5", "--offsets", "0", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True and report["violations"] == []


# -- the durable-write lint rule ---------------------------------------------------

STORE_PATH = "src/repro/durability/fixture_writer.py"


@pytest.fixture
def linter() -> Linter:
    return Linter(ALL_RULES)


def lint(linter, source, path=STORE_PATH):
    return linter.lint_source(textwrap.dedent(source), path)


def rule_ids(violations):
    return [v.rule for v in violations]


class TestDurableWriteRule:
    def test_rename_without_fsync_fires(self, linter):
        violations = lint(
            linter,
            """
            import os
            def commit(tmp, dst):
                os.replace(tmp, dst)
            """,
        )
        assert "durable-write" in rule_ids(violations)

    def test_fsync_before_rename_is_clean(self, linter):
        violations = lint(
            linter,
            """
            import os
            def commit(handle, tmp, dst):
                os.fsync(handle.fileno())
                os.replace(tmp, dst)
            """,
        )
        assert "durable-write" not in rule_ids(violations)

    def test_fsync_dir_helper_counts(self, linter):
        violations = lint(
            linter,
            """
            import os
            def commit(tmp, dst, parent):
                fsync_dir(parent)
                os.rename(tmp, dst)
            """,
        )
        assert "durable-write" not in rule_ids(violations)

    def test_str_replace_is_not_a_rename(self, linter):
        violations = lint(
            linter,
            """
            def tidy(name):
                return name.replace("-", "_")
            """,
        )
        assert "durable-write" not in rule_ids(violations)

    def test_rule_scoped_to_persistence_packages(self, linter):
        violations = lint(
            linter,
            """
            import os
            def shuffle(tmp, dst):
                os.replace(tmp, dst)
            """,
            path="src/repro/service/fixture_core.py",
        )
        assert "durable-write" not in rule_ids(violations)

    def test_suppression_comment_is_honored(self, linter):
        violations = lint(
            linter,
            """
            import os
            def commit(tmp, dst):
                os.replace(tmp, dst)  # repro: ignore[durable-write] — modelled
            """,
        )
        assert "durable-write" not in rule_ids(violations)

    def test_production_tree_is_clean(self, linter):
        from pathlib import Path

        import repro

        package = Path(repro.__file__).parent
        result = linter.lint_paths_result(
            [package / "durability", package / "storage"]
        )
        assert not [
            v for v in result.violations if v.rule == "durable-write"
        ]


# -- cluster restart–rejoin from snapshot ------------------------------------------


class TestClusterRejoin:
    def test_rejoin_requires_snapshot_root(self):
        from repro.cluster.local import LocalCluster

        cluster = LocalCluster.from_sources(
            ["<doc><p>alpha one</p></doc>", "<doc><p>alpha two</p></doc>"]
        )
        with pytest.raises(ClusterError, match="snapshot_root"):
            cluster.restart_from_snapshot(0, 0)
