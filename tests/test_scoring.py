"""Unit tests for the ranking-function pieces (paper Section 2.3.2)."""

import pytest

from repro.config import RankingParams
from repro.errors import QueryError
from repro.ranking.scoring import (
    aggregate_occurrences,
    occurrence_rank,
    overall_rank,
    ta_threshold,
)


class TestOccurrenceRank:
    def test_direct_containment_no_decay(self):
        assert occurrence_rank(0.5, 0, decay=0.75) == 0.5

    def test_decay_per_level(self):
        assert occurrence_rank(1.0, 2, decay=0.5) == 0.25

    def test_decay_one_means_no_specificity(self):
        assert occurrence_rank(0.8, 5, decay=1.0) == pytest.approx(0.8)

    def test_negative_depth_rejected(self):
        with pytest.raises(QueryError):
            occurrence_rank(1.0, -1, decay=0.5)


class TestAggregation:
    def test_max_default(self):
        assert aggregate_occurrences([0.1, 0.5, 0.3]) == 0.5

    def test_sum(self):
        assert aggregate_occurrences([0.1, 0.5], "sum") == pytest.approx(0.6)

    def test_empty(self):
        assert aggregate_occurrences([]) == 0.0

    def test_unknown_rejected(self):
        with pytest.raises(QueryError):
            aggregate_occurrences([1.0], "median")


class TestOverallRank:
    def test_sum_times_proximity(self):
        params = RankingParams()
        rank = overall_rank([0.2, 0.3], [[10], [11]], params)
        assert rank == pytest.approx(0.5)  # adjacent => proximity 1

    def test_proximity_scales_down(self):
        params = RankingParams()
        near = overall_rank([0.2, 0.3], [[10], [11]], params)
        far = overall_rank([0.2, 0.3], [[10], [200]], params)
        assert far < near

    def test_proximity_disabled(self):
        params = RankingParams(use_proximity=False)
        rank = overall_rank([0.2, 0.3], [[10], [9999]], params)
        assert rank == pytest.approx(0.5)

    def test_monotone_in_keyword_ranks(self):
        """The TA requirement: the first factor is monotone."""
        params = RankingParams(use_proximity=False)
        low = overall_rank([0.1, 0.1], [[1], [2]], params)
        high = overall_rank([0.2, 0.1], [[1], [2]], params)
        assert high > low


class TestThreshold:
    def test_sum_of_current_ranks(self):
        assert ta_threshold([0.5, 0.25, 0.1]) == pytest.approx(0.85)

    def test_threshold_bounds_overall_rank(self):
        """decay <= 1 and proximity <= 1 imply rank <= threshold built from
        the same per-keyword ElemRanks."""
        params = RankingParams()
        keyword_ranks = [0.4 * 0.75, 0.2]  # decayed contributions
        rank = overall_rank(keyword_ranks, [[1], [50]], params)
        assert rank <= ta_threshold([0.4, 0.2])


class TestRankingParamsValidation:
    def test_decay_bounds(self):
        with pytest.raises(QueryError):
            RankingParams(decay=0.0)
        with pytest.raises(QueryError):
            RankingParams(decay=1.5)

    def test_aggregation_validated(self):
        with pytest.raises(QueryError):
            RankingParams(aggregation="avg")
