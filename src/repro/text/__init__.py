"""Text substrate: tokenization, normalization and the Zipfian vocabulary
model used by the synthetic corpus generators."""

from .tokenize import (
    STOPWORDS,
    PositionCounter,
    iter_words,
    remove_stopwords,
    tokenize_query,
    words,
)
from .vocabulary import ZipfVocabulary, synthetic_words

__all__ = [
    "STOPWORDS",
    "PositionCounter",
    "ZipfVocabulary",
    "iter_words",
    "remove_stopwords",
    "synthetic_words",
    "tokenize_query",
    "words",
]
