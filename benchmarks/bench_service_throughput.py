"""Multi-threaded load test against the in-process serving layer.

Drives :class:`repro.service.core.XRankService` (no HTTP — the point is
serving-layer overhead, not socket throughput) with a pool of client
threads replaying a fixed query workload over a generated DBLP corpus:

* **cold** phase — caches disabled, every query evaluated from the index;
* **warm** phase — result + posting-list caches enabled and primed, the
  same workload replayed;
* **deadline** phase — a zero-millisecond budget on a two-keyword query,
  which must come back ``degraded=True`` instead of raising.
* **trace** phase — the observability tax.  The tracing-*disabled* cost
  (one sampling branch plus the NOOP-span plumbing per query) is
  microbenchmarked directly and expressed as a ratio over the median
  untraced query — that ratio must stay within ``TRACE_BUDGET_RATIO``
  (3%), and it upper-bounds what any untraced deployment pays for the
  instrumentation.  The tracing-*enabled* cost is also measured
  (interleaved untraced/traced passes of the same workload) but reported
  informationally: wall-clock A/B on shared runners is too noisy to
  gate at single-digit percentages.
* **profile** phase — the cost-attribution tax, measured the same way.
  The profiling-*disabled* plumbing (one ``is not None`` branch per
  counter event) and the profiling-*enabled* plumbing (the increments
  plus one registry fold per query) are microbenchmarked at the
  workload's measured events-per-query rate and expressed as ratios
  over the median unprofiled query; CI gates disabled at
  ``PROFILE_DISABLED_BUDGET_RATIO`` (3%) and enabled at
  ``PROFILE_ENABLED_BUDGET_RATIO`` (5%).  The within-run A/B ratio is
  reported informationally, as with tracing.

Results (QPS, p50/p95/p99 latency, cache hit rate, trace and profile
overhead) are written to ``BENCH_service.json`` at the repository root.

Acceptance (asserted below): warm-cache QPS strictly exceeds cold-cache
QPS on the same workload, the deadline-limited run degrades rather than
erroring, the tracing-disabled overhead fits the 3% budget, and the
profiling overheads fit their 3%/5% budgets.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import pytest

from repro.datasets.dblp import generate_dblp
from repro.datasets.textgen import PlantedKeywords
from repro.engine import XRankEngine
from repro.obs import Tracer
from repro.obs.profile import (
    ProfileRegistry,
    QueryProfile,
    activate,
    active_profile,
)
from repro.service.core import XRankService

NUM_PAPERS = 150
NUM_THREADS = 4
REQUESTS_PER_THREAD = 40
TINY_PAPERS = 40
TINY_REQUESTS_PER_THREAD = 10
#: Allowed tracing-disabled overhead: the NOOP plumbing may cost at most
#: 3% of the median untraced query.  CI gates ``trace.within_budget``.
TRACE_BUDGET_RATIO = 1.03
#: Allowed profiling overheads, same discipline: the disabled branch
#: tax and the enabled counter/registry tax over the unprofiled query.
#: CI gates ``profile.within_budget``.
PROFILE_DISABLED_BUDGET_RATIO = 1.03
PROFILE_ENABLED_BUDGET_RATIO = 1.05
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _build_engine(num_papers: int = NUM_PAPERS) -> XRankEngine:
    planted = PlantedKeywords.default()
    planted.correlated_rate = 0.5
    planted.independent_rate = 0.7
    corpus = generate_dblp(num_papers=num_papers, seed=11, planted=planted)
    engine = XRankEngine()
    for document in corpus.documents:
        engine.add_document(document)
    engine.build(kinds=["hdil"])
    return engine


def _workload(planted: PlantedKeywords) -> List[str]:
    """A small mixed workload: correlated pairs plus common singletons."""
    queries = [
        " ".join(group[:2]) for group in planted.correlated_groups[:3]
    ]
    queries += [group[0] for group in planted.correlated_groups[:2]]
    queries.append(planted.independent_keywords[0])
    return queries


def _drive(
    service: XRankService,
    queries: List[str],
    requests_per_thread: int = REQUESTS_PER_THREAD,
) -> Dict[str, float]:
    """Replay the workload from NUM_THREADS client threads; return stats."""
    errors: List[BaseException] = []
    barrier = threading.Barrier(NUM_THREADS)

    def client(worker: int) -> None:
        try:
            barrier.wait(timeout=30)
            for i in range(requests_per_thread):
                query = queries[(worker + i) % len(queries)]
                response = service.search(query, m=10)
                assert isinstance(response.hits, list)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(w,)) for w in range(NUM_THREADS)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    elapsed = time.perf_counter() - started
    assert not errors, errors

    total = NUM_THREADS * requests_per_thread
    latency = service.metrics.latency_percentiles()
    return {
        "requests": total,
        "elapsed_s": round(elapsed, 4),
        "qps": round(total / elapsed, 2),
        "p50_ms": round(latency["p50_ms"], 4),
        "p95_ms": round(latency["p95_ms"], 4),
        "p99_ms": round(latency["p99_ms"], 4),
        "result_cache_hit_rate": round(service.result_cache.hit_rate, 4),
        "list_cache_hit_rate": round(service.list_cache.hit_rate, 4),
    }


def _noop_plumbing_ns(iterations: int = 20000) -> float:
    """Per-query cost of the tracing plumbing with sampling off, in ns.

    Replays the exact call sequence ``XRankService.search`` makes on the
    NOOP path — begin, three child spans, their events/sets, a recording
    check, finish — so the number is the real tracing-disabled tax, not
    a synthetic lower bound.  Microbenchmarked directly because an A/B
    against a build without the instrumentation is impossible at runtime.
    """
    tracer = Tracer(sample="never")
    started = time.perf_counter()
    for _ in range(iterations):
        span = tracer.begin(
            "service.search", query="q", kind="hdil", m=10, mode="and"
        )
        with span.child("admission"):
            pass
        with span.child("cache.lookup") as cache_span:
            cache_span.event("miss")
        with span.child("evaluate", kind="hdil", mode="and") as eval_span:
            io_before = None if not eval_span.recording else object()
            assert io_before is None
            eval_span.set("hits", 10)
        if span.recording:
            span.set("cached", False)
        span.finish()
        tracer.finish(span)
    return (time.perf_counter() - started) / iterations * 1e9


def _trace_overhead(
    engine: XRankEngine, queries: List[str], repetitions: int
) -> Dict[str, object]:
    """The trace phase: disabled-tracing tax (gated) + sampled cost (info).

    Runs interleaved single-threaded passes of the workload on two
    uncached services — tracing off vs ``sample="always"`` — taking the
    per-mode minimum total to suppress scheduler noise, then divides the
    microbenchmarked NOOP plumbing cost by the untraced per-query time.
    """
    off_service = XRankService(
        engine, result_cache_size=0, list_cache_size=0,
        tracer=Tracer(sample="never"),
    )
    on_service = XRankService(
        engine, result_cache_size=0, list_cache_size=0,
        tracer=Tracer(sample="always", buffer_size=8),
    )

    def one_pass(service: XRankService) -> float:
        started = time.perf_counter()
        for _ in range(repetitions):
            for query in queries:
                service.search(query, m=10)
        return time.perf_counter() - started

    one_pass(off_service)  # warm the page cache once for both services
    off_totals: List[float] = []
    on_totals: List[float] = []
    for _ in range(3):
        off_totals.append(one_pass(off_service))
        on_totals.append(one_pass(on_service))

    requests = repetitions * len(queries)
    off_query_ns = min(off_totals) / requests * 1e9
    noop_ns = _noop_plumbing_ns()
    off_overhead_ratio = 1.0 + noop_ns / off_query_ns
    return {
        "off": {
            "total_s": round(min(off_totals), 4),
            "per_query_us": round(off_query_ns / 1e3, 2),
        },
        "on": {
            "total_s": round(min(on_totals), 4),
            "traces_retained": len(on_service.tracer.buffer),
        },
        "noop_plumbing_ns_per_query": round(noop_ns, 1),
        "off_overhead_ratio": round(off_overhead_ratio, 5),
        # Informational only: within-run A/B of full tracing vs none.
        "sampled_overhead_ratio": round(
            min(on_totals) / min(off_totals), 4
        ),
        "budget_ratio": TRACE_BUDGET_RATIO,
        "within_budget": bool(off_overhead_ratio <= TRACE_BUDGET_RATIO),
    }


def _profile_plumbing_ns(
    events: int, iterations: int = 4000
) -> Dict[str, float]:
    """Per-query cost of the profiling plumbing, disabled and enabled.

    Replays the hot-loop pattern ``XRankService.search`` and the
    evaluators use — capture the active profile once, then one
    ``is not None`` branch per counter event (plus the increment, the
    :class:`QueryProfile` allocation, and the registry fold when
    enabled) — at the workload's measured events-per-query rate.
    Microbenchmarked directly for the same reason as the NOOP tracing
    plumbing: the disabled path cannot be A/B'd out of the build.
    """
    registry = ProfileRegistry()

    def one_mode(enabled: bool) -> float:
        started = time.perf_counter()
        for _ in range(iterations):
            profile = QueryProfile() if enabled else None
            with activate(profile):
                captured = active_profile()
                for _ in range(events):
                    if captured is not None:
                        captured.postings_scanned += 1
            if profile is not None:
                registry.record("hdil", "bench:1kw", 10, profile)
        return (time.perf_counter() - started) / iterations * 1e9

    return {"disabled_ns": one_mode(False), "enabled_ns": one_mode(True)}


def _profile_overhead(
    engine: XRankEngine, queries: List[str], repetitions: int
) -> Dict[str, object]:
    """The profile phase: disabled/enabled plumbing tax, both gated.

    Same structure as :func:`_trace_overhead`: interleaved
    single-threaded passes on uncached services give a per-query
    baseline (and an informational A/B ratio), then the microbenchmarked
    plumbing costs — scaled to the events-per-query the workload
    actually generated — are divided by that baseline.
    """
    off_service = XRankService(engine, result_cache_size=0, list_cache_size=0)
    on_service = XRankService(
        engine, result_cache_size=0, list_cache_size=0, profile=True
    )

    def one_pass(service: XRankService) -> float:
        started = time.perf_counter()
        for _ in range(repetitions):
            for query in queries:
                service.search(query, m=10)
        return time.perf_counter() - started

    one_pass(off_service)  # warm the page cache once for both services
    off_totals: List[float] = []
    on_totals: List[float] = []
    for _ in range(3):
        off_totals.append(one_pass(off_service))
        on_totals.append(one_pass(on_service))

    requests = repetitions * len(queries)
    off_query_ns = min(off_totals) / requests * 1e9
    snapshot = on_service.profile_snapshot()
    total_ops = sum(
        sum(entry["counters"].values()) for entry in snapshot["profiles"]
    )
    events_per_query = max(1, round(total_ops / max(1, snapshot["queries"])))
    plumbing = _profile_plumbing_ns(events_per_query)
    disabled_ratio = 1.0 + plumbing["disabled_ns"] / off_query_ns
    enabled_ratio = 1.0 + plumbing["enabled_ns"] / off_query_ns
    return {
        "off": {
            "total_s": round(min(off_totals), 4),
            "per_query_us": round(off_query_ns / 1e3, 2),
        },
        "on": {
            "total_s": round(min(on_totals), 4),
            "queries_profiled": snapshot["queries"],
            "aggregate_cells": len(snapshot["profiles"]),
        },
        "events_per_query": events_per_query,
        "disabled_plumbing_ns_per_query": round(plumbing["disabled_ns"], 1),
        "enabled_plumbing_ns_per_query": round(plumbing["enabled_ns"], 1),
        "disabled_overhead_ratio": round(disabled_ratio, 5),
        "enabled_overhead_ratio": round(enabled_ratio, 5),
        # Informational only: within-run A/B of full profiling vs none.
        "measured_overhead_ratio": round(min(on_totals) / min(off_totals), 4),
        "disabled_budget_ratio": PROFILE_DISABLED_BUDGET_RATIO,
        "enabled_budget_ratio": PROFILE_ENABLED_BUDGET_RATIO,
        "within_budget": bool(
            disabled_ratio <= PROFILE_DISABLED_BUDGET_RATIO
            and enabled_ratio <= PROFILE_ENABLED_BUDGET_RATIO
        ),
    }


def run_benchmark(
    engine: XRankEngine,
    num_papers: int = NUM_PAPERS,
    requests_per_thread: int = REQUESTS_PER_THREAD,
) -> Dict[str, object]:
    """Cold / warm / deadline phases against ``engine``; return the report."""
    planted = PlantedKeywords.default()
    queries = _workload(planted)

    # Cold: no caching at all — every request hits the evaluator.
    cold_service = XRankService(engine, result_cache_size=0, list_cache_size=0)
    cold = _drive(cold_service, queries, requests_per_thread)

    # Warm: caches on, primed with one pass of the workload.
    warm_service = XRankService(
        engine, result_cache_size=256, list_cache_size=256
    )
    for query in queries:
        warm_service.search(query, m=10)
    warm_service.metrics = type(warm_service.metrics)()  # drop priming stats
    warm = _drive(warm_service, queries, requests_per_thread)

    # Deadline: a zero budget must degrade, never error.
    degraded_response = cold_service.search(queries[0], m=10, deadline_ms=0.0)
    deadline = {
        "query": queries[0],
        "deadline_ms": 0.0,
        "degraded": degraded_response.degraded,
        "hits": len(degraded_response.hits),
        "errored": False,
    }

    # Trace: the observability tax, with the disabled path gated at 3%.
    trace = _trace_overhead(
        engine, queries, repetitions=max(2, requests_per_thread // 4)
    )

    # Profile: the cost-attribution tax, disabled and enabled both gated.
    profile = _profile_overhead(
        engine, queries, repetitions=max(2, requests_per_thread // 4)
    )

    return {
        "benchmark": "service_throughput",
        "corpus": {"kind": "dblp", "papers": num_papers, "index": "hdil"},
        "load": {
            "threads": NUM_THREADS,
            "requests_per_thread": requests_per_thread,
            "distinct_queries": len(queries),
        },
        "cold": cold,
        "warm": warm,
        "speedup": round(warm["qps"] / cold["qps"], 2) if cold["qps"] else None,
        "deadline": deadline,
        "trace": trace,
        "profile": profile,
    }


def check_report(report: Dict[str, object]) -> List[str]:
    """Acceptance failures for a report; empty means the benchmark passed."""
    failures: List[str] = []
    if not report["warm"]["qps"] > report["cold"]["qps"]:
        failures.append(
            f"warm qps {report['warm']['qps']} not above cold "
            f"{report['cold']['qps']}"
        )
    if not report["warm"]["result_cache_hit_rate"] > 0.5:
        failures.append(
            "warm result-cache hit rate "
            f"{report['warm']['result_cache_hit_rate']} <= 0.5"
        )
    if report["deadline"]["degraded"] is not True:
        failures.append("zero-deadline query did not degrade")
    if report["trace"]["within_budget"] is not True:
        failures.append(
            "tracing-disabled overhead "
            f"{report['trace']['off_overhead_ratio']} exceeds the "
            f"{TRACE_BUDGET_RATIO} budget"
        )
    if not report["trace"]["on"]["traces_retained"] > 0:
        failures.append("sample=always pass retained no traces")
    if report["profile"]["within_budget"] is not True:
        failures.append(
            "profiling overhead disabled "
            f"{report['profile']['disabled_overhead_ratio']} / enabled "
            f"{report['profile']['enabled_overhead_ratio']} exceeds the "
            f"{PROFILE_DISABLED_BUDGET_RATIO}/{PROFILE_ENABLED_BUDGET_RATIO} "
            "budgets"
        )
    if not report["profile"]["on"]["queries_profiled"] > 0:
        failures.append("profile=True pass recorded no query profiles")
    return failures


def _summary_line(report: Dict[str, object]) -> str:
    cold, warm, trace = report["cold"], report["warm"], report["trace"]
    profile = report["profile"]
    return (
        f"service throughput: cold {cold['qps']} qps "
        f"(p95 {cold['p95_ms']:.2f}ms) -> warm {warm['qps']} qps "
        f"(p95 {warm['p95_ms']:.4f}ms, hit rate "
        f"{warm['result_cache_hit_rate']:.0%}); trace off-tax "
        f"{(trace['off_overhead_ratio'] - 1) * 100:.3f}% "
        f"(sampled {trace['sampled_overhead_ratio']}x); profile tax "
        f"off {(profile['disabled_overhead_ratio'] - 1) * 100:.3f}% / "
        f"on {(profile['enabled_overhead_ratio'] - 1) * 100:.3f}%"
    )


@pytest.fixture(scope="module")
def service_engine() -> XRankEngine:
    return _build_engine()


def test_service_throughput(service_engine, capsys):
    report = run_benchmark(service_engine)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print(f"\n{_summary_line(report)} -> {OUTPUT.name}")

    failures = check_report(report)
    assert not failures, (failures, report)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point for CI's bench-smoke lane."""
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help=f"smoke-test scale ({TINY_PAPERS} papers, "
        f"{TINY_REQUESTS_PER_THREAD} requests/thread)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT, help="report destination"
    )
    args = parser.parse_args(argv)

    papers = TINY_PAPERS if args.tiny else NUM_PAPERS
    requests = TINY_REQUESTS_PER_THREAD if args.tiny else REQUESTS_PER_THREAD
    report = run_benchmark(
        _build_engine(papers), num_papers=papers, requests_per_thread=requests
    )
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(_summary_line(report))
    print(f"wrote {args.out}")
    failures = check_report(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
