"""Tests for query-dependent HITS re-ranking."""

import pytest

from repro.errors import QueryError
from repro.index.builder import IndexBuilder
from repro.query.dil_eval import DILEvaluator
from repro.query.hits_rerank import build_base_set, hits_rerank
from repro.query.results import QueryResult
from repro.xmlmodel.graph import CollectionGraph
from repro.xmlmodel.parser import parse_xml


@pytest.fixture()
def linked_graph():
    """Two keyword-matching docs; one is cited by three others."""
    graph = CollectionGraph()
    graph.add_document(
        parse_xml("<p id='a'><t>needle popular</t></p>", doc_id=0, uri="doc0")
    )
    graph.add_document(
        parse_xml("<p id='b'><t>needle obscure</t></p>", doc_id=1, uri="doc1")
    )
    for i in range(2, 5):
        graph.add_document(
            parse_xml(f"<c><r xlink='doc0'/></c>", doc_id=i, uri=f"doc{i}")
        )
    graph.finalize()
    return graph


def search(graph, keywords, m=10):
    builder = IndexBuilder(graph)
    return DILEvaluator(builder.build_dil()).evaluate(keywords, m=m)


class TestBaseSet:
    def test_expands_along_hyperlinks(self, linked_graph):
        root_element = linked_graph.documents[0].root
        root = {linked_graph.index_of[root_element.dewey]}
        members, edges = build_base_set(linked_graph, root)
        # The three citing elements join the base set.
        member_tags = {linked_graph.elements[i].tag for i in members}
        assert "r" in member_tags
        assert edges

    def test_edges_reindexed_locally(self, linked_graph):
        root = set(range(len(linked_graph.elements)))
        members, edges = build_base_set(linked_graph, root)
        assert all(0 <= s < len(members) and 0 <= t < len(members) for s, t in edges)


class TestRerank:
    def test_authority_promotes_cited_result(self, linked_graph):
        results = search(linked_graph, ["needle"])
        # Force the obscure doc first to prove re-ranking moves things.
        forced = sorted(results, key=lambda r: r.dewey.doc_id, reverse=True)
        reranked = hits_rerank(forced, linked_graph, blend=1.0)
        assert reranked[0].dewey.doc_id == 0  # the cited document wins

    def test_blend_zero_preserves_order(self, linked_graph):
        results = search(linked_graph, ["needle"])
        reranked = hits_rerank(results, linked_graph, blend=0.0)
        assert [str(r.dewey) for r in reranked] == [
            str(r.dewey) for r in results
        ]

    def test_scores_bounded(self, linked_graph):
        results = search(linked_graph, ["needle"])
        for result in hits_rerank(results, linked_graph, blend=0.5):
            assert 0.0 <= result.rank <= 1.0

    def test_empty_results(self, linked_graph):
        assert hits_rerank([], linked_graph) == []

    def test_bad_blend(self, linked_graph):
        results = search(linked_graph, ["needle"])
        with pytest.raises(QueryError):
            hits_rerank(results, linked_graph, blend=1.5)

    def test_requires_dewey_results(self, linked_graph):
        with pytest.raises(QueryError):
            hits_rerank(
                [QueryResult(rank=1.0, elem_id=0)], linked_graph
            )

    def test_keyword_ranks_preserved(self, linked_graph):
        results = search(linked_graph, ["needle"])
        reranked = hits_rerank(results, linked_graph, blend=0.3)
        originals = {str(r.dewey): r.keyword_ranks for r in results}
        for result in reranked:
            assert result.keyword_ranks == originals[str(result.dewey)]
