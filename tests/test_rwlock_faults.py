"""Fault tolerance of the serving layer's reader-writer lock.

The fault subsystem makes exceptions mid-critical-section routine: a
writer applying an index update can hit a :class:`CorruptPageError`, a
reader can see a :class:`ReadFaultError` escape the hardened search
path.  These tests pin the contract that an exception inside ``read()``
or ``write()`` always releases the lock — no stuck writers, no reader
starvation, no leaked hold state — so a faulted operation never wedges
the whole service.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import CorruptPageError, ReadFaultError
from repro.service.concurrency import ReadWriteLock

#: Generous bound for "the other thread definitely got the lock".
WAIT_S = 5.0


class TestWriterFaults:
    def test_writer_raising_releases_lock(self):
        lock = ReadWriteLock()
        with pytest.raises(CorruptPageError):
            with lock.write():
                raise CorruptPageError(3, "dil:xql")
        # A subsequent writer on the same thread proceeds immediately.
        with lock.write():
            pass

    def test_readers_proceed_after_writer_fault(self):
        lock = ReadWriteLock()
        with pytest.raises(CorruptPageError):
            with lock.write():
                raise CorruptPageError(1)

        entered = threading.Event()

        def reader():
            with lock.read():
                entered.set()

        thread = threading.Thread(target=reader)
        thread.start()
        assert entered.wait(WAIT_S), "reader starved after writer fault"
        thread.join(WAIT_S)

    def test_waiting_writer_unblocked_by_faulting_writer(self):
        lock = ReadWriteLock()
        first_holds = threading.Event()
        release_first = threading.Event()
        second_done = threading.Event()

        def faulting_writer():
            try:
                with lock.write():
                    first_holds.set()
                    release_first.wait(WAIT_S)
                    raise ReadFaultError(7)
            except ReadFaultError:
                pass

        def second_writer():
            with lock.write():
                second_done.set()

        one = threading.Thread(target=faulting_writer)
        one.start()
        assert first_holds.wait(WAIT_S)
        two = threading.Thread(target=second_writer)
        two.start()
        release_first.set()
        assert second_done.wait(WAIT_S), "writer stuck behind faulted writer"
        one.join(WAIT_S)
        two.join(WAIT_S)


class TestReaderFaults:
    def test_reader_raising_releases_lock(self):
        lock = ReadWriteLock()
        with pytest.raises(ReadFaultError):
            with lock.read():
                raise ReadFaultError(2)
        # A writer must not wait on the faulted reader's hold.
        with lock.write():
            pass

    def test_writer_unblocked_when_reader_faults(self):
        lock = ReadWriteLock()
        reader_holds = threading.Event()
        release_reader = threading.Event()
        writer_done = threading.Event()

        def faulting_reader():
            try:
                with lock.read():
                    reader_holds.set()
                    release_reader.wait(WAIT_S)
                    raise CorruptPageError(9, "hdil:tree")
            except CorruptPageError:
                pass

        def writer():
            with lock.write():
                writer_done.set()

        reader = threading.Thread(target=faulting_reader)
        reader.start()
        assert reader_holds.wait(WAIT_S)
        thread = threading.Thread(target=writer)
        thread.start()
        release_reader.set()
        assert writer_done.wait(WAIT_S), "writer starved by faulted reader"
        reader.join(WAIT_S)
        thread.join(WAIT_S)

    def test_no_leaked_hold_state_after_fault(self):
        # A faulted read section must not be mistaken for re-entrancy on
        # the next acquisition by the same thread.
        lock = ReadWriteLock()
        for _ in range(3):
            with pytest.raises(ReadFaultError):
                with lock.read():
                    raise ReadFaultError(4)
        with lock.read():
            pass


class TestRepeatedFaultStorm:
    def test_alternating_faulting_readers_and_writers(self):
        """Many threads faulting mid-section leave the lock fully usable."""
        lock = ReadWriteLock()
        errors = []

        def faulty(i):
            try:
                if i % 2:
                    with lock.write():
                        raise ReadFaultError(i)
                else:
                    with lock.read():
                        raise CorruptPageError(i)
            except (ReadFaultError, CorruptPageError):
                pass
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=faulty, args=(i,)) for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WAIT_S)
        assert not errors
        assert not any(thread.is_alive() for thread in threads)
        with lock.write():
            pass
        with lock.read():
            pass
