"""Parallel/sequential identity verification.

The parallel build's contract is *byte identity*: for any worker count,
the posting map (down to its encoded bytes and keyword insertion order),
the ElemRank vector, and the top-k results of probe queries must equal the
sequential build's.  This module is the one place that contract is
checked; the ``repro build --verify`` CLI flag, ``repro check --strict``,
the build benchmark, and the property tests all call into it.
"""

from __future__ import annotations

from typing import List, Sequence


def compare_postings(sequential, parallel, limit: int = 5) -> List[str]:
    """Differences between two posting maps; empty means byte-identical.

    Compares keyword insertion order (index layouts depend on it), then
    each keyword's encoded posting bytes — encoding covers Dewey ID, the
    float32 rank and the delta-coded position list, so byte equality here
    is byte equality of everything the indexes bulk-load.
    """
    problems: List[str] = []
    seq_keys = list(sequential)
    par_keys = list(parallel)
    if seq_keys != par_keys:
        missing = [k for k in seq_keys if k not in parallel]
        extra = [k for k in par_keys if k not in sequential]
        if missing or extra:
            problems.append(
                f"keyword sets differ: {len(missing)} missing "
                f"(e.g. {missing[:3]}), {len(extra)} extra (e.g. {extra[:3]})"
            )
        else:
            first = next(
                (i for i, (a, b) in enumerate(zip(seq_keys, par_keys)) if a != b),
                -1,
            )
            problems.append(
                "keyword insertion order differs starting at position "
                f"{first}: {seq_keys[first]!r} vs {par_keys[first]!r}"
            )
        return problems
    for keyword in seq_keys:
        seq_list = sequential[keyword]
        par_list = parallel[keyword]
        if len(seq_list) != len(par_list):
            problems.append(
                f"{keyword!r}: {len(seq_list)} vs {len(par_list)} postings"
            )
        else:
            for position, (a, b) in enumerate(zip(seq_list, par_list)):
                if a.encode() != b.encode():
                    problems.append(
                        f"{keyword!r}: posting {position} differs "
                        f"({a.dewey} vs {b.dewey})"
                    )
                    break
        if len(problems) >= limit:
            problems.append("... (further differences suppressed)")
            break
    return problems


def compare_elemranks(sequential_engine, parallel_engine) -> List[str]:
    """Exact equality of the two engines' ElemRank mappings."""
    problems: List[str] = []
    seq = sequential_engine.builder.elemranks
    par = parallel_engine.builder.elemranks
    if len(seq) != len(par):
        problems.append(f"ElemRank table sizes differ: {len(seq)} vs {len(par)}")
        return problems
    for dewey, score in seq.items():
        other = par.get(dewey)
        if other != score:
            problems.append(
                f"ElemRank({dewey}) differs: {score!r} vs {other!r}"
            )
            if len(problems) >= 5:
                break
    return problems


def compare_search_results(
    sequential_engine,
    parallel_engine,
    queries: Sequence[str],
    kind: str = "hdil",
    m: int = 10,
) -> List[str]:
    """Top-m agreement (dewey + rank) on probe queries."""
    problems: List[str] = []
    for query in queries:
        seq_hits = sequential_engine.search(query, m=m, kind=kind)
        par_hits = parallel_engine.search(query, m=m, kind=kind)
        seq_view = [(hit.dewey, hit.rank) for hit in seq_hits]
        par_view = [(hit.dewey, hit.rank) for hit in par_hits]
        if seq_view != par_view:
            problems.append(
                f"top-{m} for {query!r} differs: {seq_view[:3]} vs "
                f"{par_view[:3]}"
            )
    return problems


def compare_engines(
    sequential_engine,
    parallel_engine,
    queries: Sequence[str] = (),
    kind: str = "hdil",
    m: int = 10,
) -> List[str]:
    """The full identity battery; empty result means identical builds."""
    problems = compare_postings(
        sequential_engine.builder.direct_postings,
        parallel_engine.builder.direct_postings,
    )
    problems.extend(compare_elemranks(sequential_engine, parallel_engine))
    if queries:
        problems.extend(
            compare_search_results(
                sequential_engine, parallel_engine, queries, kind=kind, m=m
            )
        )
    return problems


def default_probe_queries(engine, count: int = 3) -> List[str]:
    """A few single-keyword probe queries drawn from the built postings."""
    builder = engine.builder
    if builder is None or not builder.direct_postings:
        return []
    by_frequency = sorted(
        builder.direct_postings,
        key=lambda keyword: (-len(builder.direct_postings[keyword]), keyword),
    )
    return by_frequency[:count]
