#!/usr/bin/env python3
"""Advanced query features in one tour.

* disjunctive ("or") semantics — Section 2.2's second semantics;
* per-keyword weights — Section 2.3.2.2's weighted variant;
* path constraints — Section 7's structured-query integration;
* tf-idf scoring — Section 4's alternative element scorer;
* query-dependent HITS re-ranking — Section 3.1 footnote 1;
* snippet highlighting;
* the explain API — per-keyword rank decomposition of Section 2.3.2.

Run:  python examples/advanced_queries.py
"""

from repro import XRankEngine
from repro.query.hits_rerank import hits_rerank

CORPUS = [
    (
        "library",
        "<library>"
        "<book id='b1'><title>databases and ranking</title>"
        "<chapter><para>a ranking chapter mentioning databases twice: "
        "databases</para></chapter></book>"
        "<book id='b2'><title>pure ranking theory</title>"
        "<chapter><para>ranking without the other topic</para></chapter>"
        "</book>"
        "<review><text>review of ranking databases <cite ref='b1'/></text>"
        "</review>"
        "<review><text>another take <cite ref='b1'/></text></review>"
        "</library>",
    ),
]


def heading(title: str) -> None:
    print(f"\n--- {title} ---")


def main() -> None:
    engine = XRankEngine()
    for uri, source in CORPUS:
        engine.add_xml(source, uri=uri)
    engine.build(kinds=["hdil", "dil"])

    heading("conjunctive (default): both keywords required")
    for hit in engine.search("ranking databases", kind="dil", highlight=True):
        print(f"  [{hit.rank:.5f}] <{hit.tag}> {hit.snippet[:70]}")

    heading("disjunctive: any keyword matches")
    for hit in engine.search("ranking databases", kind="dil", mode="or", m=8):
        print(f"  [{hit.rank:.5f}] <{hit.tag}> {hit.snippet[:70]}")

    heading("weighted: databases counts 5x")
    for hit in engine.search(
        "ranking databases", kind="dil", mode="or",
        weights={"databases": 5.0}, m=4,
    ):
        print(f"  [{hit.rank:.5f}] <{hit.tag}> {hit.snippet[:60]}")

    heading("path-constrained: only //book/title results")
    for hit in engine.search("ranking", kind="dil", path="book/title", m=5):
        print(f"  [{hit.rank:.5f}] {hit.path}")

    heading("tf-idf scorer instead of ElemRank")
    tfidf_engine = XRankEngine(scorer="tfidf")
    for uri, source in CORPUS:
        tfidf_engine.add_xml(source, uri=uri)
    tfidf_engine.build(kinds=["hdil"])
    for hit in tfidf_engine.search("databases", m=3):
        print(f"  [{hit.rank:.5f}] <{hit.tag}> {hit.snippet[:60]}")
    print("  (the para with two 'databases' occurrences leads under tf-idf)")

    heading("explain: the Section 2.3.2 decomposition of the top hit")
    top = engine.explain("ranking databases", kind="dil", m=1)[0]
    print(f"  element <{top['tag']}> at {top['dewey']} ({top['path']})")
    for keyword, rank in top["keyword_ranks"].items():
        print(f"    r({keyword}) = {rank:.6f} at positions {list(top['positions'][keyword])}")
    print(f"    proximity p = {top['proximity']:.4f} (window {top['smallest_window']})")
    print(f"    overall = (sum of r) * p = {top['overall_rank']:.6f}")

    heading("query-dependent HITS re-ranking (blend=0.7)")
    results = engine.evaluator("dil").evaluate(["ranking"], m=8)
    reranked = hits_rerank(results, engine.graph, blend=0.7)
    for result in reranked[:4]:
        element = engine.graph.element_by_dewey(result.dewey)
        print(f"  [{result.rank:.4f}] <{element.tag}> {element.text_content()[:55]}")
    print("  (the twice-cited book's subtree gains authority)")


if __name__ == "__main__":
    main()
