"""Tests for the tf-idf alternative scorer (paper Section 4's hook)."""

import pytest

from repro.engine import XRankEngine
from repro.index.builder import IndexBuilder
from repro.query.dil_eval import DILEvaluator
from repro.query.rdil_eval import RDILEvaluator
from repro.ranking.tfidf import compute_tfidf_weights
from repro.xmlmodel.graph import CollectionGraph
from repro.xmlmodel.parser import parse_xml


def make_graph(*sources):
    graph = CollectionGraph()
    for i, source in enumerate(sources):
        graph.add_document(parse_xml(source, doc_id=i))
    graph.finalize()
    return graph


class TestWeights:
    def test_normalized_to_unit_interval(self):
        graph = make_graph("<a><b>rare</b><c>common common common</c></a>")
        weights = compute_tfidf_weights(graph)
        assert weights
        assert all(0 < w <= 1.0 for w in weights.values())
        assert max(weights.values()) == pytest.approx(1.0)

    def test_rare_terms_weigh_more_than_common(self):
        sources = ["<d><p>common rare</p></d>"] + [
            "<d><p>common filler</p></d>" for _ in range(8)
        ]
        graph = make_graph(*sources)
        weights = compute_tfidf_weights(graph)
        target = graph.documents[0].root.find_first("p").dewey.components
        assert weights[(target, "rare")] > weights[(target, "common")]

    def test_term_frequency_raises_weight(self):
        graph = make_graph(
            "<d><a>word</a><b>word word word</b><c>other other</c></d>"
        )
        weights = compute_tfidf_weights(graph)
        a = graph.documents[0].root.find_first("a").dewey.components
        b = graph.documents[0].root.find_first("b").dewey.components
        assert weights[(b, "word")] > weights[(a, "word")]

    def test_empty_graph(self):
        graph = CollectionGraph()
        graph.finalize()
        assert compute_tfidf_weights(graph) == {}


class TestTfIdfIndexing:
    def test_builder_scorer_option(self):
        graph = make_graph("<d><p>alpha beta</p></d>", "<d><p>alpha</p></d>")
        builder = IndexBuilder(graph, scorer="tfidf")
        posting = builder.direct_postings["beta"][0]
        weights = compute_tfidf_weights(graph)
        expected = weights[(posting.dewey.components, "beta")]
        assert posting.elemrank == pytest.approx(expected, rel=1e-5)

    def test_unknown_scorer_rejected(self):
        graph = make_graph("<d>x</d>")
        with pytest.raises(ValueError):
            IndexBuilder(graph, scorer="bm25")

    def test_rdil_matches_dil_under_tfidf(self):
        """The query algorithms are score-agnostic: the TA guarantee must
        hold for tf-idf scores exactly as for ElemRank."""
        graph = make_graph(
            "<d><p>alpha beta</p><q>alpha</q></d>",
            "<d><p>beta</p><q>alpha beta gamma</q></d>",
            "<d><p>alpha alpha beta</p></d>",
        )
        builder = IndexBuilder(graph, scorer="tfidf")
        dil = DILEvaluator(builder.build_dil())
        rdil = RDILEvaluator(builder.build_rdil())
        for m in (1, 3, 10):
            a = [round(r.rank, 8) for r in dil.evaluate(["alpha", "beta"], m=m)]
            b = [round(r.rank, 8) for r in rdil.evaluate(["alpha", "beta"], m=m)]
            assert a == pytest.approx(b, rel=1e-5)

    def test_engine_tfidf_end_to_end(self):
        engine = XRankEngine(scorer="tfidf")
        engine.add_xml("<d><title>rare topic</title><body>common words common</body></d>")
        engine.add_xml("<d><body>common words again</body></d>")
        engine.build(kinds=["hdil"])
        hits = engine.search("rare")
        assert hits and hits[0].tag == "title"

    def test_tfidf_changes_ranking_vs_elemrank(self):
        """A heavily cited element wins under ElemRank; a term-dense element
        wins under tf-idf."""
        sources = [
            "<d><p>needle</p></d>",                        # cited a lot
            "<d><p>needle needle needle needle</p></d>",   # term-dense
        ]
        graph = make_graph(*sources)
        # Add citing documents pointing at doc 0.
        graph = CollectionGraph()
        for i, source in enumerate(sources):
            graph.add_document(parse_xml(source, doc_id=i, uri=f"doc{i}"))
        for i in range(2, 8):
            graph.add_document(
                parse_xml(f'<c><x xlink="doc0"/></c>', doc_id=i, uri=f"doc{i}")
            )
        graph.finalize()

        elem_eval = DILEvaluator(IndexBuilder(graph, scorer="elemrank").build_dil())
        tfidf_eval = DILEvaluator(IndexBuilder(graph, scorer="tfidf").build_dil())
        by_elemrank = elem_eval.evaluate(["needle"], m=2)
        by_tfidf = tfidf_eval.evaluate(["needle"], m=2)
        assert by_elemrank[0].dewey.doc_id == 0
        assert by_tfidf[0].dewey.doc_id == 1
