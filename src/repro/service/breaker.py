"""Per-index-kind circuit breaker for the serving layer.

When an index kind's reads keep failing — checksum mismatches, injected
read errors — continuing to hammer it buys nothing: every query pays the
failure latency and the answer is still wrong or absent.  The breaker
trips after ``threshold`` *consecutive* failures on a kind and, while
open, the service routes queries for that kind to its fallback
(RDIL/HDIL fall back to DIL, whose plain sequential lists make it the
most corruption-tolerant evaluator; DIL itself has no fallback).

Determinism: the cooldown is counted in **queries observed**, not wall
clock — a chaos run with a fixed seed must trip and recover the breaker
at exactly the same points every time, so time-based cooldowns are out.
After ``cooldown`` queries the breaker moves to half-open and lets one
probe through; a success closes it, a failure re-opens it for another
cooldown.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ServiceError
from .concurrency import GuardedLock

#: Where a broken ranked index sends its queries.  DIL is the terminal
#: fallback: no auxiliary structures, sequential scans only.
FALLBACK_KIND: Dict[str, str] = {
    "hdil": "dil",
    "rdil": "dil",
    "naive-rank": "naive-id",
}

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Thread-safe consecutive-failure breaker, one state per index kind."""

    def __init__(self, threshold: int = 3, cooldown: int = 32, events=None):
        """Args:
            threshold: consecutive failures on one kind that trip it open.
            cooldown: queries (on that kind) to wait before half-opening.
            events: optional :class:`repro.obs.log.EventLog`; every state
                transition (trip, half-open, close, re-open) is emitted
                there, trace-correlated with the query that caused it.
        """
        if threshold < 1:
            raise ServiceError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 1:
            raise ServiceError(f"cooldown must be >= 1, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.events = events
        self._lock = GuardedLock("breaker")
        self._failures: Dict[str, int] = {}  # guarded by: self._lock
        self._open_remaining: Dict[str, int] = {}  # guarded by: self._lock
        self._half_open: Dict[str, bool] = {}  # guarded by: self._lock
        self.trips = 0  # guarded by: self._lock

    def _emit(self, state: str, kind: str, **fields: object) -> None:
        """Emit one transition event (called *outside* the breaker lock)."""
        if self.events is not None:
            self.events.emit("breaker_transition", state=state, index_kind=kind, **fields)

    def allow(self, kind: str) -> bool:
        """May a query be served from ``kind`` right now?

        While open, each call counts down the cooldown; the call that
        exhausts it half-opens the breaker and is itself allowed through
        as the probe.
        """
        with self._lock:
            remaining = self._open_remaining.get(kind)
            if remaining is None:
                return True
            if remaining > 1:
                self._open_remaining[kind] = remaining - 1
                return False
            del self._open_remaining[kind]
            self._half_open[kind] = True
        self._emit(_HALF_OPEN, kind)
        return True

    def record_success(self, kind: str) -> None:
        """A query on ``kind`` succeeded: reset failures, close if probing."""
        with self._lock:
            closed_probe = self._half_open.pop(kind, None)
            self._failures.pop(kind, None)
        if closed_probe:
            self._emit(_CLOSED, kind)

    def record_failure(self, kind: str) -> None:
        """A query on ``kind`` hit a fault; trip when the streak is long
        enough (a failed half-open probe re-opens immediately)."""
        tripped = None
        with self._lock:
            if self._half_open.pop(kind, False):
                self._open_remaining[kind] = self.cooldown
                self.trips += 1
                tripped = "probe_failed"
            else:
                streak = self._failures.get(kind, 0) + 1
                self._failures[kind] = streak
                if (
                    streak >= self.threshold
                    and kind not in self._open_remaining
                ):
                    self._open_remaining[kind] = self.cooldown
                    self._failures.pop(kind, None)
                    self.trips += 1
                    tripped = "failure_streak"
        if tripped is not None:
            self._emit(_OPEN, kind, reason=tripped, cooldown=self.cooldown)

    def is_open(self, kind: Optional[str] = None) -> bool:
        """Is this kind (or, with no argument, any kind) currently open?"""
        with self._lock:
            if kind is not None:
                return kind in self._open_remaining
            return bool(self._open_remaining)

    def state(self) -> Dict[str, object]:
        """JSON-ready snapshot for /stats and /healthz."""
        with self._lock:
            kinds = {}
            for kind in set(self._failures) | set(self._open_remaining) | set(
                self._half_open
            ):
                if kind in self._open_remaining:
                    kinds[kind] = {
                        "state": _OPEN,
                        "cooldown_remaining": self._open_remaining[kind],
                    }
                elif self._half_open.get(kind):
                    kinds[kind] = {"state": _HALF_OPEN}
                else:
                    kinds[kind] = {
                        "state": _CLOSED,
                        "failures": self._failures.get(kind, 0),
                    }
            return {
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                "trips": self.trips,
                "kinds": kinds,
            }
