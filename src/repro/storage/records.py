"""Binary record primitives shared by the storage structures.

Everything persisted to the simulated disk is built from three primitives:
unsigned varints (LEB128, shared with the Dewey codec), fixed 8-byte floats,
and length-prefixed byte strings.  A :class:`RecordWriter` accumulates one
record; a :class:`RecordReader` walks one buffer.  Keeping the codecs here,
rather than inside each index, guarantees the space numbers in Table 1 are
measured with one consistent encoding.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from ..errors import StorageError
from ..xmlmodel.dewey import DeweyId, decode_varint, encode_varint

_FLOAT = struct.Struct("<d")
_FLOAT32 = struct.Struct("<f")


class RecordWriter:
    """Accumulates binary fields into one record buffer."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def uint(self, value: int) -> "RecordWriter":
        """Append an unsigned varint."""
        self._parts.append(encode_varint(value))
        return self

    def float64(self, value: float) -> "RecordWriter":
        """Append an 8-byte little-endian float."""
        self._parts.append(_FLOAT.pack(value))
        return self

    def float32(self, value: float) -> "RecordWriter":
        """4-byte float; ranks are stored at this precision (2003-era)."""
        self._parts.append(_FLOAT32.pack(value))
        return self

    def raw(self, data: bytes) -> "RecordWriter":
        """Append bytes verbatim (no framing)."""
        self._parts.append(data)
        return self

    def bytes_field(self, data: bytes) -> "RecordWriter":
        """Append a length-prefixed byte string."""
        self._parts.append(encode_varint(len(data)))
        self._parts.append(data)
        return self

    def dewey(self, dewey: DeweyId) -> "RecordWriter":
        """Append an encoded Dewey ID."""
        self._parts.append(dewey.encode())
        return self

    def uint_list(self, values: List[int]) -> "RecordWriter":
        """Delta-encoded sorted integer list (positions compress well)."""
        self.uint(len(values))
        previous = 0
        for value in values:
            if value < previous:
                raise StorageError("uint_list requires a sorted list")
            self.uint(value - previous)
            previous = value
        return self

    def getvalue(self) -> bytes:
        """The accumulated record buffer."""
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)


class RecordReader:
    """Sequential reader over a record buffer."""

    def __init__(self, data: bytes, offset: int = 0):
        self.data = data
        self.offset = offset

    @property
    def exhausted(self) -> bool:
        return self.offset >= len(self.data)

    def uint(self) -> int:
        """Read an unsigned varint."""
        value, self.offset = decode_varint(self.data, self.offset)
        return value

    def float64(self) -> float:
        """Read an 8-byte float."""
        end = self.offset + _FLOAT.size
        if end > len(self.data):
            raise StorageError("truncated float field")
        value = _FLOAT.unpack_from(self.data, self.offset)[0]
        self.offset = end
        return value

    def float32(self) -> float:
        """Read a 4-byte float."""
        end = self.offset + _FLOAT32.size
        if end > len(self.data):
            raise StorageError("truncated float32 field")
        value = _FLOAT32.unpack_from(self.data, self.offset)[0]
        self.offset = end
        return value

    def bytes_field(self) -> bytes:
        """Read a length-prefixed byte string."""
        length = self.uint()
        end = self.offset + length
        if end > len(self.data):
            raise StorageError("truncated bytes field")
        value = self.data[self.offset : end]
        self.offset = end
        return value

    def dewey(self) -> DeweyId:
        """Read an encoded Dewey ID."""
        value, self.offset = DeweyId.decode(self.data, self.offset)
        return value

    def uint_list(self) -> List[int]:
        """Read a delta-encoded sorted integer list."""
        count = self.uint()
        values: List[int] = []
        current = 0
        for _ in range(count):
            current += self.uint()
            values.append(current)
        return values


def pack_into_pages(
    records: List[bytes], page_size: int
) -> Tuple[List[bytes], List[int]]:
    """Pack records into page-sized buffers without splitting a record.

    Each page is ``varint(record_count) || record*``.  Records larger than a
    page are rejected — the index layer is responsible for chunking anything
    that can outgrow a page (e.g. huge position lists).

    Returns ``(pages, first_record_index_per_page)``; the second list lets
    callers recover which records landed on which page, which HDIL uses to
    build a B+-tree whose leaf level *is* the list (paper Section 4.4.1).
    """
    pages: List[bytes] = []
    boundaries: List[int] = []
    current: List[bytes] = []
    current_size = 0
    emitted = 0

    def flush() -> None:
        nonlocal current, current_size, emitted
        if current:
            header = encode_varint(len(current))
            pages.append(header + b"".join(current))
            boundaries.append(emitted)
            emitted += len(current)
            current = []
            current_size = 0

    for record in records:
        overhead = 5  # generous bound for the count header
        if len(record) + overhead > page_size:
            raise StorageError(
                f"record of {len(record)} bytes cannot fit a {page_size}-byte page"
            )
        if current_size + len(record) + overhead > page_size:
            flush()
        current.append(record)
        current_size += len(record)
    flush()
    return pages, boundaries


def unpack_page(page: bytes) -> Tuple[int, RecordReader]:
    """Read a page header; returns (record_count, reader positioned at body)."""
    count, offset = decode_varint(page, 0)
    return count, RecordReader(page, offset)
