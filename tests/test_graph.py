"""Unit tests for the collection graph: element table, IDREF/XLink
resolution, document management."""

import pytest

from repro.errors import DocumentNotFoundError
from repro.xmlmodel.graph import CollectionGraph
from repro.xmlmodel.parser import parse_xml


def make_graph(*sources, uris=None):
    graph = CollectionGraph()
    for i, source in enumerate(sources):
        uri = uris[i] if uris else f"doc{i}"
        graph.add_document(parse_xml(source, doc_id=i, uri=uri))
    graph.finalize()
    return graph


class TestElementTable:
    def test_dense_index_covers_all_elements(self, figure1_graph):
        graph = figure1_graph
        assert len(graph.elements) == graph.documents[5].num_elements
        for i, element in enumerate(graph.elements):
            assert graph.index_of[element.dewey] == i

    def test_parent_index(self, figure1_graph):
        graph = figure1_graph
        for i, element in enumerate(graph.elements):
            if element.parent is None:
                assert graph.parent_index[i] == -1
            else:
                assert graph.elements[graph.parent_index[i]] is element.parent

    def test_counts(self, figure1_graph):
        graph = figure1_graph
        for i, element in enumerate(graph.elements):
            assert graph.children_count[i] == element.num_subelements
        assert graph.num_documents == 1
        assert all(
            count == graph.documents[5].num_elements
            for count in graph.doc_element_count
        )

    def test_element_by_dewey(self, figure1_graph):
        graph = figure1_graph
        subsection = graph.documents[5].root.find_first("subsection")
        assert graph.element_by_dewey(subsection.dewey) is subsection


class TestIdrefResolution:
    def test_intra_document_ref(self, figure1_graph):
        graph = figure1_graph
        assert graph.resolution.idrefs_resolved == 1
        cite = graph.documents[5].root.find_first("cite")
        paper2 = [
            e for e in graph.documents[5].iter_elements()
            if e.tag == "paper" and e.attribute("id") == "2"
        ][0]
        edges = [
            (graph.elements[s], graph.elements[t])
            for s, t in graph.hyperlink_edges
        ]
        assert (cite, paper2) in edges

    def test_dangling_idref_counted(self):
        graph = make_graph('<a><x ref="nothing"/></a>')
        assert graph.resolution.idrefs_dangling == 1
        assert "nothing" in graph.resolution.dangling_targets
        assert graph.hyperlink_edges == []

    def test_multivalue_idrefs(self):
        graph = make_graph('<a><p id="1"/><p id="2"/><x ref="1 2"/></a>')
        assert graph.resolution.idrefs_resolved == 2


class TestXlinkResolution:
    def test_interdocument_link(self):
        graph = make_graph(
            '<a><cite xlink="doc1"/></a>', "<b>target</b>"
        )
        assert graph.resolution.xlinks_resolved == 1
        src, dst = graph.hyperlink_edges[0]
        assert graph.elements[dst].tag == "b"

    def test_fragment_link(self):
        graph = make_graph(
            '<a><cite xlink="doc1#sec2"/></a>',
            '<b><s id="sec1"/><s id="sec2"/></b>',
        )
        assert graph.resolution.xlinks_resolved == 1
        _, dst = graph.hyperlink_edges[0]
        assert graph.elements[dst].attribute("id") == "sec2"

    def test_dangling_uri_and_fragment(self):
        graph = make_graph(
            '<a><c xlink="nowhere"/><c xlink="doc1#missing"/></a>', "<b/>"
        )
        assert graph.resolution.xlinks_dangling == 2

    def test_figure1_xlink_dangles_without_target(self, figure1_graph):
        # '/paper/xmlql/' names a document that is not in the collection.
        assert figure1_graph.resolution.xlinks_dangling == 1

    def test_out_hyperlink_counts(self):
        graph = make_graph(
            '<a><c xlink="doc1"/><c xlink="doc1"/></a>', "<b/>"
        )
        source_index = [
            i for i, e in enumerate(graph.elements) if e.tag == "c"
        ]
        counts = [graph.out_hyperlink_count[i] for i in source_index]
        assert sorted(counts) == [1, 1]


class TestDocumentManagement:
    def test_duplicate_doc_id_rejected(self):
        graph = CollectionGraph()
        graph.add_document(parse_xml("<a/>", doc_id=1))
        with pytest.raises(DocumentNotFoundError):
            graph.add_document(parse_xml("<b/>", doc_id=1))

    def test_remove_document(self):
        graph = make_graph("<a/>", "<b/>")
        removed = graph.remove_document(0)
        assert removed.root.tag == "a"
        graph.finalize()
        assert graph.num_documents == 1
        with pytest.raises(DocumentNotFoundError):
            graph.remove_document(0)

    def test_remove_clears_uri_mapping(self):
        graph = make_graph("<a/>", "<b/>")
        graph.remove_document(0)
        assert graph.document_by_uri("doc0") is None
        assert graph.document_by_uri("doc1") is not None

    def test_finalize_idempotent(self):
        graph = make_graph('<a><c xlink="doc1"/></a>', "<b/>")
        edges_before = list(graph.hyperlink_edges)
        graph.finalize()
        assert graph.hyperlink_edges == edges_before

    def test_lazy_finalize_through_num_elements(self):
        graph = CollectionGraph()
        graph.add_document(parse_xml("<a><b/></a>", doc_id=0))
        assert not graph.finalized
        assert graph.num_elements == 2
        assert graph.finalized
