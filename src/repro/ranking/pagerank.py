"""Classic PageRank over a plain directed graph.

Two roles in this reproduction:

* the HTML baseline — the paper's design goal is that XRANK "behaves just
  like a HTML search engine" when documents have two levels, and the tests
  verify that ElemRank over flat HTML documents matches PageRank over the
  document-level link graph;
* the starting point of the ElemRank derivation (Section 3.1's first
  formula), which :mod:`repro.ranking.elemrank` refines step by step.

Dangling nodes (no out-links) redistribute their navigation mass uniformly,
the standard fix that keeps the iteration a proper Markov chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConvergenceError


@dataclass
class RankResult:
    """Outcome of a rank computation."""

    scores: np.ndarray
    iterations: int
    converged: bool
    residual: float

    def as_dict(self, labels: Sequence) -> Dict:
        """Scores keyed by the given labels."""
        return {label: float(score) for label, score in zip(labels, self.scores)}


def pagerank(
    num_nodes: int,
    edges: Sequence[Tuple[int, int]],
    damping: float = 0.85,
    threshold: float = 2e-5,
    max_iterations: int = 500,
    raise_on_divergence: bool = False,
) -> RankResult:
    """Power-iteration PageRank.

    Args:
        num_nodes: node count; nodes are 0..num_nodes-1.
        edges: directed (source, target) pairs; parallel edges allowed and
            weighted naturally.
        damping: the navigation probability ``d`` (paper uses 0.85).
        threshold: L1 convergence threshold.
        max_iterations: iteration cap.
        raise_on_divergence: raise :class:`ConvergenceError` instead of
            returning an unconverged result.
    """
    if num_nodes == 0:
        return RankResult(np.zeros(0), 0, True, 0.0)

    sources = np.fromiter((s for s, _ in edges), dtype=np.int64, count=len(edges))
    targets = np.fromiter((t for _, t in edges), dtype=np.int64, count=len(edges))
    out_degree = np.bincount(sources, minlength=num_nodes).astype(np.float64)
    dangling = out_degree == 0
    safe_degree = np.where(dangling, 1.0, out_degree)

    scores = np.full(num_nodes, 1.0 / num_nodes)
    base = (1.0 - damping) / num_nodes
    for iteration in range(1, max_iterations + 1):
        per_edge = scores / safe_degree
        new_scores = np.full(num_nodes, base)
        np.add.at(new_scores, targets, damping * per_edge[sources])
        # Dangling nodes spread their navigation mass uniformly.
        dangling_mass = scores[dangling].sum()
        new_scores += damping * dangling_mass / num_nodes
        residual = float(np.abs(new_scores - scores).sum())
        scores = new_scores
        if residual < threshold:
            return RankResult(scores, iteration, True, residual)
    if raise_on_divergence:
        raise ConvergenceError(
            f"PageRank did not converge in {max_iterations} iterations "
            f"(residual {residual:.2e})"
        )
    return RankResult(scores, max_iterations, False, residual)


def pagerank_from_adjacency(
    adjacency: Dict[int, List[int]],
    damping: float = 0.85,
    threshold: float = 2e-5,
    max_iterations: int = 500,
) -> RankResult:
    """Convenience wrapper taking ``{source: [targets]}``."""
    num_nodes = 0
    for source, targets in adjacency.items():
        num_nodes = max(num_nodes, source + 1, *(t + 1 for t in targets), 1)
    edges = [
        (source, target)
        for source, targets in adjacency.items()
        for target in targets
    ]
    return pagerank(num_nodes, edges, damping, threshold, max_iterations)
