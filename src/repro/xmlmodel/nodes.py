"""The XML node tree: elements, value nodes and documents (paper Section 2.1).

The paper's data model is a directed graph ``G = (N, CE, HE)`` where the
nodes are *elements* and *values*, ``CE`` are containment edges and ``HE``
hyperlink edges.  This module provides the tree part (elements, values and
containment); :mod:`repro.xmlmodel.graph` adds hyperlinks across the forest.

Design notes, all taken from the paper:

* Attributes are treated as sub-elements ("For ease of exposition, we treat
  attributes as though they are sub-elements").  The parser materializes each
  attribute ``name="value"`` as a child element tagged ``name`` containing a
  value node, and every such pseudo-element consumes a sibling position in
  the Dewey numbering.

* Element tag names and attribute names are themselves values ("we treat
  element tag names and attribute names also as values"), so a keyword query
  can match a tag such as ``author``.  Tag-name words are recorded as
  occurrences in the element itself.

* Each word in a document carries a *global word position*, which the
  ranking function's proximity measure (smallest containing window,
  Section 2.3.2.2) operates on.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .dewey import DeweyId

#: A keyword occurrence: (word, global position inside the document).
WordOccurrence = Tuple[str, int]


class ValueNode:
    """A text value directly contained by an element.

    ``words`` holds the tokenized content with global word positions; the
    raw ``text`` is retained for display (result snippets).
    """

    __slots__ = ("dewey", "text", "words", "parent")

    def __init__(self, dewey: DeweyId, text: str, words: Sequence[WordOccurrence]):
        self.dewey = dewey
        self.text = text
        self.words: Tuple[WordOccurrence, ...] = tuple(words)
        self.parent: Optional["Element"] = None

    @property
    def is_element(self) -> bool:
        return False

    def __repr__(self) -> str:
        preview = self.text if len(self.text) <= 32 else self.text[:29] + "..."
        return f"ValueNode({self.dewey}, {preview!r})"


Node = Union["Element", ValueNode]


class Element:
    """An XML element: a tag, a Dewey ID and an ordered list of children.

    Children are elements and value nodes interleaved in document order;
    attribute pseudo-elements come first (their relative order is the
    attribute order in the source).  ``tag_words`` are the occurrences
    contributed by the tag name itself.
    """

    __slots__ = (
        "tag",
        "dewey",
        "children",
        "parent",
        "tag_words",
        "from_attribute",
    )

    def __init__(
        self,
        tag: str,
        dewey: DeweyId,
        tag_words: Sequence[WordOccurrence] = (),
        from_attribute: bool = False,
    ):
        self.tag = tag
        self.dewey = dewey
        self.children: List[Node] = []
        self.parent: Optional["Element"] = None
        self.tag_words: Tuple[WordOccurrence, ...] = tuple(tag_words)
        self.from_attribute = from_attribute

    @property
    def is_element(self) -> bool:
        return True

    def append(self, node: Node) -> None:
        """Attach a child node (sets its parent pointer)."""
        node.parent = self
        self.children.append(node)

    # -- navigation -----------------------------------------------------------

    def child_elements(self) -> Iterator["Element"]:
        """Child elements, attributes included, in order."""
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def value_children(self) -> Iterator[ValueNode]:
        """Direct value-node children, in order."""
        for child in self.children:
            if isinstance(child, ValueNode):
                yield child

    def iter_elements(self) -> Iterator["Element"]:
        """Depth-first pre-order traversal over this element and descendants."""
        stack: List[Element] = [self]
        while stack:
            element = stack.pop()
            yield element
            stack.extend(reversed(list(element.child_elements())))

    def iter_values(self) -> Iterator[ValueNode]:
        """All value nodes in the subtree, in document order."""
        for child in self.children:
            if isinstance(child, ValueNode):
                yield child
            else:
                yield from child.iter_values()

    def ancestors(self) -> Iterator["Element"]:
        """Parent, grandparent, ..., root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # -- content --------------------------------------------------------------

    @property
    def num_subelements(self) -> int:
        """``N_c``: number of element children (attributes included)."""
        return sum(1 for _ in self.child_elements())

    def direct_words(self) -> Iterator[WordOccurrence]:
        """Words *directly* contained: tag-name words plus child value text.

        These are the occurrences the inverted lists index against this
        element's Dewey ID (paper Section 4.2.1: "the Dewey IDs of all the
        XML elements that directly contain the keyword").
        """
        yield from self.tag_words
        for value in self.value_children():
            yield from value.words

    def all_words(self) -> Iterator[WordOccurrence]:
        """Every word occurrence in the subtree (``contains*`` semantics)."""
        for element in self.iter_elements():
            yield from element.direct_words()

    def text_content(self) -> str:
        """Concatenated raw text of the subtree, for snippets."""
        parts = [v.text for v in self.iter_values()]
        return " ".join(part for part in parts if part)

    def attribute(self, name: str) -> Optional[str]:
        """The raw text of the attribute pseudo-element ``name``, if any."""
        for child in self.child_elements():
            if child.from_attribute and child.tag == name:
                texts = [v.text for v in child.value_children()]
                return " ".join(texts) if texts else ""
        return None

    def find_first(self, tag: str) -> Optional["Element"]:
        """First descendant element (pre-order) with the given tag."""
        for element in self.iter_elements():
            if element is not self and element.tag == tag:
                return element
        return None

    def __repr__(self) -> str:
        return f"Element(<{self.tag}>, {self.dewey})"


class Document:
    """A parsed XML (or HTML) document.

    Attributes:
        doc_id: integer id; the first Dewey component of every node.
        uri: logical name used to resolve inter-document XLink references.
        root: the root element.
        is_html: True for HTML documents, where only the root is an answer
            node (paper Section 2.2).
        word_count: total number of word occurrences (global positions run
            from 0 to ``word_count - 1``).
    """

    def __init__(
        self,
        doc_id: int,
        root: Element,
        uri: str = "",
        is_html: bool = False,
        word_count: int = 0,
    ):
        self.doc_id = doc_id
        self.root = root
        self.uri = uri
        self.is_html = is_html
        self.word_count = word_count
        self._by_dewey: Optional[Dict[DeweyId, Element]] = None

    @property
    def num_elements(self) -> int:
        """``N_de``: the number of elements in this document."""
        return sum(1 for _ in self.root.iter_elements())

    def iter_elements(self) -> Iterator[Element]:
        """Pre-order traversal of the whole document."""
        return self.root.iter_elements()

    def element_by_dewey(self, dewey: DeweyId) -> Optional[Element]:
        """Look up an element by its Dewey ID (lazily builds a map)."""
        if self._by_dewey is None:
            self._by_dewey = {e.dewey: e for e in self.root.iter_elements()}
        return self._by_dewey.get(dewey)

    def elements_with_id_attribute(self) -> Dict[str, Element]:
        """Map from ``id`` attribute value to element, for IDREF resolution."""
        targets: Dict[str, Element] = {}
        for element in self.root.iter_elements():
            value = element.attribute("id")
            if value:
                targets.setdefault(value.strip(), element)
        return targets

    def __repr__(self) -> str:
        kind = "html" if self.is_html else "xml"
        return (
            f"Document(id={self.doc_id}, uri={self.uri!r}, {kind}, "
            f"{self.num_elements} elements)"
        )
