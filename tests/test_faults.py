"""Unit tests for the fault-injection subsystem (repro.faults).

Covers the seeded plan itself (determinism, per-site stream independence,
trigger shapes), the checksummed disk under injected faults, the serving
layer's circuit breaker, the client's retry/backoff/error-budget
machinery, per-shard build retries, and the ``fault-typed-errors`` lint
rule.  The end-to-end storm lives in ``tests/test_faults_chaos.py``.
"""

from __future__ import annotations

import pytest

from repro.analysis.linter import Linter
from repro.analysis.rules import ALL_RULES
from repro.build.pipeline import build_corpus, specs_from_sources
from repro.config import StorageParams
from repro.errors import (
    BuildError,
    CorruptPageError,
    FaultError,
    ReadFaultError,
    RetryBudgetExhaustedError,
    ServiceHTTPError,
)
from repro.faults import (
    ALL_SITES,
    NO_FAULTS,
    READ_SITES,
    SITE_READ_BITFLIP,
    SITE_READ_ERROR,
    SITE_READ_TORN,
    SITE_RUNFILE_CORRUPT,
    SITE_WORKER_CRASH,
    FaultPlan,
    FaultReport,
    FaultSpec,
)
from repro.service.breaker import FALLBACK_KIND, CircuitBreaker
from repro.service.client import ServiceClient
from repro.storage.checksum import checksum_frame, crc32c
from repro.storage.disk import SimulatedDisk


# -- FaultPlan ---------------------------------------------------------------------


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        def decisions(seed):
            plan = FaultPlan.uniform(seed, 0.3, sites=READ_SITES)
            return [
                (site, plan.should_fire(site))
                for _ in range(50)
                for site in READ_SITES
            ]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_sites_are_independent_streams(self):
        # Consulting one site must not perturb another's sequence.
        solo = FaultPlan.uniform(42, 0.5, sites=(SITE_READ_ERROR,))
        solo_seq = [solo.should_fire(SITE_READ_ERROR) for _ in range(40)]

        mixed = FaultPlan.uniform(42, 0.5, sites=READ_SITES)
        mixed_seq = []
        for _ in range(40):
            mixed.should_fire(SITE_READ_TORN)
            mixed.should_fire(SITE_READ_BITFLIP)
            mixed_seq.append(mixed.should_fire(SITE_READ_ERROR))
        assert mixed_seq == solo_seq

    def test_times_caps_fires(self):
        plan = FaultPlan(1, [FaultSpec(SITE_READ_ERROR, 1.0, times=2)])
        fired = [plan.should_fire(SITE_READ_ERROR) for _ in range(10)]
        assert fired == [True, True] + [False] * 8
        assert plan.fires(SITE_READ_ERROR) == 2

    def test_skip_delays_first_fire(self):
        plan = FaultPlan(1, [FaultSpec(SITE_READ_ERROR, 1.0, skip=3)])
        fired = [plan.should_fire(SITE_READ_ERROR) for _ in range(6)]
        assert fired == [False, False, False, True, True, True]

    def test_unknown_site_never_fires(self):
        plan = FaultPlan(1, [FaultSpec(SITE_READ_ERROR, 1.0)])
        assert not plan.should_fire(SITE_WORKER_CRASH)
        assert NO_FAULTS.should_fire(SITE_READ_ERROR) is False

    def test_zero_probability_never_fires(self):
        plan = FaultPlan.uniform(9, 0.0, sites=ALL_SITES)
        assert not any(plan.should_fire(s) for s in ALL_SITES for _ in range(20))

    def test_choose_is_deterministic_and_bounded(self):
        one = FaultPlan(5, [FaultSpec(SITE_READ_BITFLIP, 1.0)])
        two = FaultPlan(5, [FaultSpec(SITE_READ_BITFLIP, 1.0)])
        picks = [one.choose(SITE_READ_BITFLIP, 100) for _ in range(20)]
        assert picks == [two.choose(SITE_READ_BITFLIP, 100) for _ in range(20)]
        assert all(0 <= p < 100 for p in picks)
        assert one.choose("no.such.site", 100) == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(SITE_READ_ERROR, probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(SITE_READ_ERROR, times=-1)

    def test_counters_and_report(self):
        plan = FaultPlan(3, [FaultSpec(SITE_READ_ERROR, 1.0, times=1)])
        plan.should_fire(SITE_READ_ERROR)
        plan.should_fire(SITE_READ_ERROR)
        counters = plan.counters()
        assert counters == {SITE_READ_ERROR: {"calls": 2, "fires": 1}}
        report = FaultReport.from_plan(plan)
        assert report.to_dict() == {"seed": 3, "sites": counters}

    def test_plan_survives_pickling(self):
        import pickle

        plan = FaultPlan(11, [FaultSpec(SITE_READ_ERROR, 1.0, times=1)])
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.should_fire(SITE_READ_ERROR)  # lock restored, state kept
        assert clone.fires(SITE_READ_ERROR) == 1


# -- crc32c ------------------------------------------------------------------------


class TestChecksum:
    def test_crc32c_test_vector(self):
        # The canonical Castagnoli check value (RFC 3720 appendix B.4).
        assert crc32c(b"123456789") == 0xE3069283

    def test_crc32c_detects_single_bit_flip(self):
        data = bytearray(b"the quick brown fox")
        reference = crc32c(bytes(data))
        data[4] ^= 0x10
        assert crc32c(bytes(data)) != reference

    def test_checksum_frame_is_4_le_bytes(self):
        frame = checksum_frame(b"abc")
        assert len(frame) == 4
        assert int.from_bytes(frame, "little") == crc32c(b"abc")


# -- SimulatedDisk under faults ----------------------------------------------------


class TestDiskFaults:
    def _disk(self, plan, checksums=True, read_retries=1):
        disk = SimulatedDisk(
            StorageParams(checksums=checksums, read_retries=read_retries)
        )
        disk.fault_plan = plan
        return disk

    def test_transient_read_error_retried_in_place(self):
        plan = FaultPlan(1, [FaultSpec(SITE_READ_ERROR, 1.0, times=1)])
        disk = self._disk(plan)
        pid = disk.allocate(b"payload", owner="dil:test")
        assert disk.read(pid) == b"payload"
        assert disk.stats.read_errors == 1
        assert disk.stats.retries == 1

    def test_persistent_read_error_escapes_typed(self):
        plan = FaultPlan(1, [FaultSpec(SITE_READ_ERROR, 1.0)])
        disk = self._disk(plan, read_retries=2)
        pid = disk.allocate(b"payload")
        with pytest.raises(ReadFaultError) as excinfo:
            disk.read(pid)
        assert excinfo.value.page_id == pid
        assert disk.stats.retries == 2

    def test_bitflip_detected_by_checksum_with_owner(self):
        plan = FaultPlan(2, [FaultSpec(SITE_READ_BITFLIP, 1.0, times=1)])
        disk = self._disk(plan)
        pid = disk.allocate(b"x" * 64, owner="hdil:keyword")
        # Bit rot is persistent: the retry re-reads the damaged page and
        # the checksum fails again, so the error escapes.
        with pytest.raises(CorruptPageError) as excinfo:
            disk.read(pid)
        assert excinfo.value.page_id == pid
        assert "hdil:keyword" in str(excinfo.value)
        assert disk.stats.corrupt_pages >= 1

    def test_torn_read_is_transient_under_checksums(self):
        plan = FaultPlan(3, [FaultSpec(SITE_READ_TORN, 1.0, times=1)])
        disk = self._disk(plan)
        pid = disk.allocate(b"y" * 64)
        # The torn copy fails its checksum; the stored page is intact, so
        # the in-place retry returns the real bytes.
        assert disk.read(pid) == b"y" * 64
        assert disk.stats.corrupt_pages == 1
        assert disk.stats.retries == 1

    def test_torn_read_without_checksums_is_silent(self):
        # The corruption checksums exist to catch: with them off, a torn
        # read flows truncated bytes into the caller.
        plan = FaultPlan(3, [FaultSpec(SITE_READ_TORN, 1.0, times=1)])
        disk = self._disk(plan, checksums=False)
        pid = disk.allocate(b"y" * 64)
        assert len(disk.read(pid)) < 64

    def test_faults_are_subclasses_of_fault_error(self):
        assert issubclass(ReadFaultError, FaultError)
        assert issubclass(CorruptPageError, FaultError)

    def test_owner_labels_recorded(self):
        disk = SimulatedDisk()
        pid = disk.allocate(b"data", owner="rdil:xml")
        assert disk.owner_of(pid) == "rdil:xml"

    def test_clean_disk_unaffected_by_no_faults(self):
        disk = self._disk(NO_FAULTS)
        pid = disk.allocate(b"stable")
        for _ in range(3):
            disk.drop_cache()
            assert disk.read(pid) == b"stable"
        assert disk.stats.retries == 0


# -- CircuitBreaker ----------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=4)
        for _ in range(2):
            breaker.record_failure("hdil")
        assert not breaker.is_open("hdil")
        breaker.record_failure("hdil")
        assert breaker.is_open("hdil")
        assert breaker.trips == 1

    def test_success_resets_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown=4)
        breaker.record_failure("hdil")
        breaker.record_success("hdil")
        breaker.record_failure("hdil")
        assert not breaker.is_open("hdil")

    def test_cooldown_counts_queries_then_half_opens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=3)
        breaker.record_failure("rdil")
        assert breaker.is_open("rdil")
        assert not breaker.allow("rdil")
        assert not breaker.allow("rdil")
        # The call that exhausts the cooldown is the half-open probe.
        assert breaker.allow("rdil")
        breaker.record_success("rdil")
        assert not breaker.is_open("rdil")
        assert breaker.allow("rdil")

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        breaker.record_failure("rdil")
        assert not breaker.allow("rdil")
        assert breaker.allow("rdil")  # probe
        breaker.record_failure("rdil")
        assert breaker.is_open("rdil")
        assert breaker.trips == 2

    def test_kinds_are_isolated(self):
        breaker = CircuitBreaker(threshold=1, cooldown=8)
        breaker.record_failure("hdil")
        assert breaker.is_open("hdil")
        assert not breaker.is_open("dil")
        assert breaker.allow("dil")
        assert breaker.is_open()  # any-kind form

    def test_fallback_map_terminates_at_dil(self):
        for kind, fallback in FALLBACK_KIND.items():
            assert fallback not in FALLBACK_KIND, (kind, fallback)

    def test_state_snapshot(self):
        breaker = CircuitBreaker(threshold=2, cooldown=5)
        breaker.record_failure("hdil")
        state = breaker.state()
        assert state["threshold"] == 2
        assert state["kinds"]["hdil"] == {"state": "closed", "failures": 1}
        breaker.record_failure("hdil")
        assert breaker.state()["kinds"]["hdil"]["state"] == "open"


# -- ServiceClient retry machinery -------------------------------------------------


class _ScriptedClient(ServiceClient):
    """A client whose wire layer is a scripted list of outcomes."""

    def __init__(self, script, **kwargs):
        kwargs.setdefault("sleep", self.record_sleep)
        self.sleeps = []
        super().__init__(**kwargs)
        self._script = list(script)
        self.calls = 0

    def record_sleep(self, seconds):
        self.sleeps.append(seconds)

    def _request_once(self, method, path, body, headers=None):
        self.calls += 1
        outcome = self._script.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestClientRetries:
    def test_retries_503_then_succeeds(self):
        client = _ScriptedClient(
            [ServiceHTTPError(503, {"error": "overloaded"}), {"ok": True}],
            max_retries=3,
        )
        assert client.stats() == {"ok": True}
        assert client.calls == 2
        assert client.retries == 1
        assert len(client.sleeps) == 1

    def test_retryable_500_retried_plain_500_not(self):
        client = _ScriptedClient(
            [
                ServiceHTTPError(500, {"error": "fault", "retryable": True}),
                {"ok": True},
            ]
        )
        assert client.healthz() == {"ok": True}

        client = _ScriptedClient([ServiceHTTPError(500, {"error": "bug"})])
        with pytest.raises(ServiceHTTPError):
            client.healthz()
        assert client.calls == 1

    def test_400_never_retried(self):
        client = _ScriptedClient([ServiceHTTPError(400, {"error": "bad"})])
        with pytest.raises(ServiceHTTPError) as excinfo:
            client.search("")
        assert excinfo.value.status == 400
        assert client.calls == 1

    def test_transport_errors_surface_typed_after_retries(self):
        client = _ScriptedClient(
            [ConnectionRefusedError("refused")] * 3, max_retries=2
        )
        with pytest.raises(ServiceHTTPError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
        assert client.calls == 3

    def test_backoff_is_jittered_exponential_and_seeded(self):
        script = [ServiceHTTPError(503, {})] * 4 + [{"ok": True}]
        one = _ScriptedClient(
            list(script), max_retries=4, backoff_base_s=0.1,
            backoff_cap_s=10.0, retry_seed=99,
        )
        one.healthz()
        two = _ScriptedClient(
            list(script), max_retries=4, backoff_base_s=0.1,
            backoff_cap_s=10.0, retry_seed=99,
        )
        two.healthz()
        assert one.sleeps == two.sleeps
        for attempt, delay in enumerate(one.sleeps):
            envelope = 0.1 * (2 ** attempt)
            assert envelope * 0.5 <= delay <= envelope

    def test_backoff_respects_cap(self):
        client = _ScriptedClient(
            [ServiceHTTPError(503, {})] * 8 + [{"ok": True}],
            max_retries=8, backoff_base_s=0.05, backoff_cap_s=0.2,
        )
        client.healthz()
        assert max(client.sleeps) <= 0.2

    def test_error_budget_exhaustion(self):
        client = _ScriptedClient(
            [ServiceHTTPError(503, {})] * 10, max_retries=9, error_budget=2
        )
        with pytest.raises(RetryBudgetExhaustedError):
            client.healthz()
        assert client.retries == 2

    def test_successes_earn_budget_back(self):
        script = [
            ServiceHTTPError(503, {}), {"ok": 1},   # spends 1, earns 1
            ServiceHTTPError(503, {}), {"ok": 2},   # spends 1, earns 1
            ServiceHTTPError(503, {}), {"ok": 3},
        ]
        client = _ScriptedClient(script, max_retries=1, error_budget=1)
        assert client.healthz() == {"ok": 1}
        assert client.healthz() == {"ok": 2}
        assert client.healthz() == {"ok": 3}


# -- build pipeline per-shard retry ------------------------------------------------

_SOURCES = [
    ("<doc><t>ranked keyword search</t></doc>", "a.xml"),
    ("<doc><t>xml element trees</t></doc>", "b.xml"),
    ("<doc><t>inverted list storage</t></doc>", "c.xml"),
    ("<doc><t>dewey identifiers</t></doc>", "d.xml"),
]


class TestBuildRetries:
    def _clean(self):
        return build_corpus(specs_from_sources(_SOURCES))

    def test_inline_worker_crash_retried(self):
        plan = FaultPlan(1, [FaultSpec(SITE_WORKER_CRASH, 1.0, times=1)])
        result = build_corpus(specs_from_sources(_SOURCES), fault_plan=plan)
        assert result.stats.retries >= 1
        assert result.raw_postings == self._clean().raw_postings

    def test_runfile_corruption_retried(self, tmp_path):
        plan = FaultPlan(2, [FaultSpec(SITE_RUNFILE_CORRUPT, 1.0, times=1)])
        result = build_corpus(
            specs_from_sources(_SOURCES),
            spill_dir=tmp_path,
            fault_plan=plan,
        )
        assert result.stats.retries >= 1
        assert plan.fires(SITE_RUNFILE_CORRUPT) == 1
        assert result.raw_postings == self._clean().raw_postings

    def test_persistent_crash_fails_after_capped_attempts(self):
        plan = FaultPlan(3, [FaultSpec(SITE_WORKER_CRASH, 1.0)])
        with pytest.raises(BuildError) as excinfo:
            build_corpus(specs_from_sources(_SOURCES), fault_plan=plan)
        assert "attempts" in str(excinfo.value)

    def test_pool_worker_crash_retried(self, tmp_path):
        plan = FaultPlan(
            4,
            [
                FaultSpec(SITE_WORKER_CRASH, 1.0, times=1),
                FaultSpec(SITE_RUNFILE_CORRUPT, 1.0, times=1),
            ],
        )
        result = build_corpus(
            specs_from_sources(_SOURCES),
            workers=2,
            spill_dir=tmp_path,
            fault_plan=plan,
        )
        assert result.stats.retries >= 1
        assert result.raw_postings == self._clean().raw_postings


# -- fault-typed-errors lint rule --------------------------------------------------


class TestFaultTypedErrorsRule:
    STORAGE_PATH = "src/repro/storage/fixture_disk.py"

    def _lint(self, source, path=STORAGE_PATH):
        import textwrap

        return Linter(ALL_RULES).lint_source(textwrap.dedent(source), path)

    def test_builtin_raise_in_storage_fires(self):
        violations = self._lint(
            """
            def fetch(page_id):
                raise RuntimeError("read failed")
            """
        )
        assert [v.rule for v in violations] == ["fault-typed-errors"]
        assert "RuntimeError" in violations[0].message

    def test_typed_raise_is_clean(self):
        violations = self._lint(
            """
            from repro.errors import ReadFaultError

            def fetch(page_id):
                raise ReadFaultError(page_id)
            """
        )
        assert "fault-typed-errors" not in [v.rule for v in violations]

    def test_bare_reraise_is_out_of_scope(self):
        violations = self._lint(
            """
            def fetch(page_id, inner):
                try:
                    return inner(page_id)
                except ReadFaultError:
                    raise
            """
        )
        assert "fault-typed-errors" not in [v.rule for v in violations]

    def test_suppression_comment_honoured(self):
        violations = self._lint(
            """
            def validate(rate):
                if rate < 0:
                    raise ValueError(rate)  # repro: ignore[fault-typed-errors]
            """
        )
        assert "fault-typed-errors" not in [v.rule for v in violations]

    def test_rule_scoped_to_fault_bearing_packages(self):
        violations = self._lint(
            """
            def parse(value):
                raise ValueError(value)
            """,
            path="src/repro/query/fixture_eval.py",
        )
        assert "fault-typed-errors" not in [v.rule for v in violations]
