"""Unit tests for posting streams and failure injection across storage."""

import pickle

import pytest

from repro.config import StorageParams
from repro.engine import XRankEngine
from repro.errors import QueryError, StorageError
from repro.index.postings import Posting
from repro.query.streams import PostingStream, smallest_head_index
from repro.storage.disk import SimulatedDisk
from repro.storage.listfile import ListFile
from repro.storage.records import RecordReader
from repro.xmlmodel.dewey import DeweyId


def posting(dewey_text, rank=0.5, positions=(1,)):
    return Posting(DeweyId.parse(dewey_text), rank, tuple(positions))


class TestPostingStream:
    def test_peek_next_eof(self):
        stream = PostingStream.from_postings([posting("0.1"), posting("0.2")])
        assert stream.peek().dewey == DeweyId.parse("0.1")
        assert stream.next().dewey == DeweyId.parse("0.1")
        assert stream.next().dewey == DeweyId.parse("0.2")
        assert stream.eof
        with pytest.raises(QueryError):
            stream.peek()

    def test_none_source_is_empty(self):
        stream = PostingStream(None)
        assert stream.eof

    def test_tombstone_filtering(self):
        stream = PostingStream.from_postings(
            [posting("0.1"), posting("1.1"), posting("2.1")],
            deleted_docs={1},
        )
        doc_ids = []
        while not stream.eof:
            doc_ids.append(stream.next().dewey.doc_id)
        assert doc_ids == [0, 2]

    def test_all_tombstoned(self):
        stream = PostingStream.from_postings(
            [posting("0.1")], deleted_docs={0}
        )
        assert stream.eof

    def test_from_cursor(self):
        disk = SimulatedDisk(StorageParams(page_size=256))
        records = [posting(f"0.{i}").encode() for i in range(20)]
        list_file = ListFile.write(disk, records)
        from repro.storage.listfile import ListCursor

        stream = PostingStream.from_cursor(ListCursor(list_file))
        count = 0
        while not stream.eof:
            stream.next()
            count += 1
        assert count == 20

    def test_smallest_head_index(self):
        streams = [
            PostingStream.from_postings([posting("0.5")]),
            PostingStream.from_postings([posting("0.2")]),
            PostingStream.from_postings([]),
        ]
        assert smallest_head_index(streams) == 1
        streams[1].next()
        assert smallest_head_index(streams) == 0
        streams[0].next()
        assert smallest_head_index(streams) is None


class TestFailureInjection:
    def test_corrupt_record_raises_storage_error(self):
        with pytest.raises((StorageError, Exception)):
            Posting.decode(b"\x03\x01\x02")  # truncated

    def test_corrupt_page_in_list_raises(self):
        disk = SimulatedDisk(StorageParams(page_size=256))
        list_file = ListFile.write(disk, [posting("0.1").encode()])
        # Corrupt the page: claim 5 records but store garbage.
        disk.write(list_file.page_ids[0], b"\x05garbage")
        with pytest.raises(Exception):
            list(list_file.scan())

    def test_reader_bounds_checked(self):
        reader = RecordReader(b"\x02a")
        with pytest.raises(StorageError):
            reader.bytes_field()

    def test_decode_float_from_short_buffer(self):
        with pytest.raises(StorageError):
            RecordReader(b"\x00\x00").float32()


class TestEnginePickling:
    def test_full_engine_roundtrip(self):
        engine = XRankEngine()
        engine.add_xml("<a><b>hello world</b><c xlink=\"page\"/></a>", uri="doc")
        engine.add_html("<p>hello web page</p>", uri="page")
        engine.build(kinds=["hdil", "dil", "rdil", "naive-rank"])
        blob = pickle.dumps(engine)
        clone = pickle.loads(blob)
        for kind in ("hdil", "dil", "rdil", "naive-rank"):
            original = [(h.dewey, round(h.rank, 9)) for h in engine.search("hello", kind=kind)]
            restored = [(h.dewey, round(h.rank, 9)) for h in clone.search("hello", kind=kind)]
            assert original == restored

    def test_pickled_engine_supports_updates(self):
        engine = XRankEngine()
        engine.add_xml("<a>seed words</a>")
        engine.build(kinds=["dil-incremental"])
        clone = pickle.loads(pickle.dumps(engine))
        clone.add_xml_incremental("<b>added after unpickling</b>")
        assert clone.search("unpickling", kind="dil-incremental")


class TestUnicode:
    def test_unicode_words_indexed(self):
        engine = XRankEngine()
        engine.add_xml("<a><titre>éléphant größe 北京 данные</titre></a>")
        engine.build(kinds=["dil"])
        for word in ("éléphant", "größe", "北京", "данные"):
            assert engine.search(word, kind="dil"), word

    def test_underscore_not_a_word_character(self):
        from repro.text.tokenize import words

        assert words("snake_case words") == ["snake", "case", "words"]

    def test_unicode_in_attributes(self):
        engine = XRankEngine()
        engine.add_xml('<a name="café münchen"><b>text</b></a>')
        engine.build(kinds=["dil"])
        assert engine.search("café", kind="dil")
