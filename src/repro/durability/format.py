"""The on-disk snapshot part format (``repro.durability``).

Every durable artifact the snapshot layer writes — the engine file
``repro index --out`` produces, and each ``part-NNNNN.bin`` chunk inside
a generation directory — is a single self-validating *part*::

    offset  size  field
    ------  ----  -----------------------------------------------------
         0     8  magic            b"XRSNAP1\\0"
         8     2  format version   u16 LE (currently 1)
        10     2  flags            u16 LE (reserved, 0)
        12     4  config digest    u32 LE (CRC32C of the engine's
                                   structural config, see
                                   :func:`config_digest`)
        16     8  payload length   u64 LE
        24     n  payload          opaque bytes (pickle stream or chunk)
      24+n     4  CRC32C           u32 LE over header + payload

The framing is deliberately boring: fixed little-endian header, length
before payload, checksum last.  :func:`decode_part` refuses to hand back
a single payload byte unless the magic, version, declared length and
trailing CRC32C all check out — a mismatched version raises
:class:`~repro.errors.SnapshotVersionError` (typed, recoverable) instead
of feeding a foreign pickle stream to the unpickler, and any truncation
or bit rot raises :class:`~repro.errors.SnapshotCorruptError`.
"""

from __future__ import annotations

import json
import struct
from typing import Tuple

from ..errors import SnapshotCorruptError, SnapshotVersionError
from ..storage.checksum import crc32c

#: Eight bytes of magic: file(1)-greppable, NUL-terminated.
MAGIC = b"XRSNAP1\0"

#: Bump on any incompatible layout change; readers accept exactly this.
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sHHIQ")
_FOOTER = struct.Struct("<I")

#: Fixed framing overhead of one part, in bytes.
HEADER_SIZE = _HEADER.size
FOOTER_SIZE = _FOOTER.size
FRAME_OVERHEAD = HEADER_SIZE + FOOTER_SIZE


def config_digest(engine: object) -> int:
    """CRC32C over the engine's *structural* configuration.

    Two snapshots are load-compatible only if they were produced by
    engines whose ranking semantics match; the digest pins the knobs
    that change what the pickled state *means* (scorer, ElemRank
    variant, stopword policy, the full config dataclass) without pinning
    volatile state like generation counters.  Stored in every part
    header and re-checked after unpickling, so a snapshot written under
    one configuration regime cannot silently rank under another.
    """
    description = {
        "class": type(engine).__name__,
        "config": repr(getattr(engine, "config", None)),
        "drop_stopwords": bool(getattr(engine, "drop_stopwords", False)),
        "elemrank_variant": str(getattr(engine, "elemrank_variant", "")),
        "scorer": str(getattr(engine, "scorer", "")),
    }
    canonical = json.dumps(description, sort_keys=True).encode("utf-8")
    return crc32c(canonical)


def encode_part(payload: bytes, digest: int = 0) -> bytes:
    """Frame ``payload`` as one part: header + payload + CRC32C footer."""
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, 0, digest & 0xFFFFFFFF, len(payload)
    )
    return header + payload + _FOOTER.pack(crc32c(payload, crc32c(header)))


def decode_part(blob: bytes, path: str = "") -> Tuple[bytes, int]:
    """Validate one part and return ``(payload, config_digest)``.

    Raises:
        SnapshotVersionError: bad magic (not a snapshot at all) or a
            format version this build does not read.
        SnapshotCorruptError: truncated framing, length mismatch, or a
            CRC32C that does not match — torn write or bit rot.
    """
    where = f" in {path}" if path else ""
    if len(blob) < HEADER_SIZE:
        raise SnapshotCorruptError(
            f"snapshot part truncated{where}: {len(blob)} bytes is "
            f"smaller than the {HEADER_SIZE}-byte header"
        )
    magic, version, _flags, digest, length = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise SnapshotVersionError(
            f"not a snapshot part{where}: bad magic {magic!r} "
            f"(expected {MAGIC!r})"
        )
    if version != FORMAT_VERSION:
        raise SnapshotVersionError(
            f"snapshot part{where} is format v{version}; "
            f"this build reads v{FORMAT_VERSION}"
        )
    expected = HEADER_SIZE + length + FOOTER_SIZE
    if len(blob) != expected:
        raise SnapshotCorruptError(
            f"snapshot part truncated{where}: header declares "
            f"{length} payload bytes ({expected} framed), got {len(blob)}"
        )
    payload = blob[HEADER_SIZE : HEADER_SIZE + length]
    (stored_crc,) = _FOOTER.unpack_from(blob, HEADER_SIZE + length)
    actual_crc = crc32c(payload, crc32c(blob[:HEADER_SIZE]))
    if stored_crc != actual_crc:
        raise SnapshotCorruptError(
            f"snapshot part{where} failed its CRC32C check "
            f"(stored {stored_crc:#010x}, computed {actual_crc:#010x}): "
            "torn write or bit rot"
        )
    return payload, digest
