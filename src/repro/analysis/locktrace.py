"""Opt-in runtime lock-order detection (lockdep-lite).

Static lint can prove *where* the engine is touched without a lock; it
cannot prove that two locks are always taken in the same order.  This
module wraps locks with recording proxies: every acquisition while
another lock is held adds an edge ``held -> acquired`` to a per-tracer
graph.  A cycle in that graph means two code paths take the same locks
in opposite orders — a potential ABBA deadlock, reported even when the
interleaving never actually deadlocked during the run.

Edges are recorded *thread-agnostically*: a single thread running A→B
and later B→A is enough to prove the ordering conflict, which keeps the
detector deterministic in single-threaded tests.

The tracer also records the writer-preference hazard specific to
:class:`~repro.service.concurrency.ReadWriteLock`: a thread re-acquiring
a read lock it already holds (deadlocks as soon as a writer queues
between the two acquisitions) and a read→write upgrade attempt (always
deadlocks: the writer waits for the thread's own read to drain).  Both
are recorded *before* delegating, so they are observed even when the
underlying lock raises — and they are flagged as hazards even when the
lucky interleaving let the run survive.

Usage::

    tracer = LockTracer()
    service.lock = tracer.wrap(service.lock, "service")
    ... exercise ...
    report = tracer.report()
    assert not report.cycles and not report.reentrant_reads
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class LockOrderReport:
    """What a :class:`LockTracer` observed."""

    #: (held_lock, acquired_lock) -> times that ordering was seen.
    edges: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Lock-name cycles, each a closed path like ``["a", "b", "a"]``.
    cycles: List[List[str]] = field(default_factory=list)
    #: Human-readable descriptions of read re-entry / upgrade hazards.
    reentrant_reads: List[str] = field(default_factory=list)
    #: Total acquisitions recorded (read + write + plain).
    acquisitions: int = 0

    @property
    def clean(self) -> bool:
        return not self.cycles and not self.reentrant_reads

    def describe(self) -> str:
        lines = [f"{self.acquisitions} acquisitions, {len(self.edges)} order edges"]
        for cycle in self.cycles:
            lines.append("lock-order cycle (potential ABBA deadlock): " + " -> ".join(cycle))
        for hazard in self.reentrant_reads:
            lines.append("re-entrancy hazard: " + hazard)
        return "\n".join(lines)


class LockTracer:
    """Records acquisition order across all locks wrapped by this tracer.

    When constructed with a ``race_detector``
    (:class:`~repro.analysis.races.RaceDetector`), every wrapped lock
    additionally feeds the detector's happens-before machinery: the
    proxies report *after* an acquisition succeeds and *before* a release
    happens, which is the window in which vector-clock transfer is sound.
    """

    def __init__(self, race_detector=None):
        self._mutex = threading.Lock()
        self._local = threading.local()
        self._edges: Dict[Tuple[str, str], int] = {}
        self._hazards: List[str] = []
        self._acquisitions = 0
        self.race_detector = race_detector

    # -- wrapping ----------------------------------------------------------------

    def wrap(self, lock: object, name: str):
        """Wrap a lock in a recording proxy.

        ``ReadWriteLock``-shaped objects (``acquire_read`` present) get a
        :class:`TracedRWLock`; anything with ``acquire``/``release``
        (``threading.Lock``, ``RLock``) gets a :class:`TracedLock`.
        """
        if hasattr(lock, "acquire_read"):
            return TracedRWLock(self, lock, name)
        if hasattr(lock, "acquire"):
            return TracedLock(self, lock, name)
        raise TypeError(f"cannot trace object without acquire methods: {lock!r}")

    # -- recording (called by the proxies) ---------------------------------------

    def _held_stack(self) -> List[Tuple[str, str]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def record_acquire(self, name: str, mode: str) -> None:
        """Record intent to acquire; called *before* blocking on the lock."""
        stack = self._held_stack()
        with self._mutex:
            self._acquisitions += 1
            for held_name, held_mode in stack:
                if held_name == name:
                    if held_mode == "read" and mode == "read":
                        self._hazards.append(
                            f"same-thread nested read of {name!r}: deadlocks "
                            "whenever a writer queues between the two acquisitions"
                        )
                    elif held_mode == "read" and mode == "write":
                        self._hazards.append(
                            f"read->write upgrade on {name!r}: the writer waits "
                            "for this thread's own read lock to drain"
                        )
                    continue
                edge = (held_name, name)
                self._edges[edge] = self._edges.get(edge, 0) + 1
        stack.append((name, mode))

    def record_release(self, name: str, mode: str) -> None:
        stack = self._held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == (name, mode):
                del stack[index]
                return

    # -- race-detector bridging (called by the proxies) ----------------------------

    def notify_acquired(self, name: str, mode: str) -> None:
        """The underlying lock is now actually held by this thread."""
        if self.race_detector is not None:
            self.race_detector.on_acquired(name, mode)

    def notify_releasing(self, name: str, mode: str) -> None:
        """The underlying lock is about to be released (still held)."""
        if self.race_detector is not None:
            self.race_detector.on_release(name, mode)

    # -- reporting ---------------------------------------------------------------

    def report(self) -> LockOrderReport:
        with self._mutex:
            edges = dict(self._edges)
            hazards = list(self._hazards)
            acquisitions = self._acquisitions
        return LockOrderReport(
            edges=edges,
            cycles=_find_cycles(edges),
            reentrant_reads=hazards,
            acquisitions=acquisitions,
        )


def _find_cycles(edges: Dict[Tuple[str, str], int]) -> List[List[str]]:
    """Every elementary cycle in the acquisition-order graph, as paths.

    The graphs here are tiny (locks in the process, not acquisitions), so
    a DFS from each node is plenty.  Cycles are deduplicated by their
    rotation-normalised node set.
    """
    graph: Dict[str, List[str]] = {}
    for held, acquired in edges:
        graph.setdefault(held, []).append(acquired)
    for successors in graph.values():
        successors.sort()

    cycles: List[List[str]] = []
    seen_keys = set()

    def dfs(start: str, node: str, path: List[str]) -> None:
        for successor in graph.get(node, ()):
            if successor == start:
                cycle = path + [start]
                smallest = min(range(len(path)), key=lambda i: path[i])
                key = tuple(path[smallest:] + path[:smallest])
                if key not in seen_keys:
                    seen_keys.add(key)
                    cycles.append(cycle)
            elif successor not in path and successor > start:
                # Only explore nodes ordered after `start`, so each cycle
                # is found exactly once, from its smallest node.
                dfs(start, successor, path + [successor])

    for start in sorted(graph):
        dfs(start, start, [start])
    return cycles


class TracedLock:
    """Recording proxy for a ``threading.Lock``-shaped object."""

    def __init__(self, tracer: LockTracer, lock: object, name: str):
        self._tracer = tracer
        self._lock = lock
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._tracer.record_acquire(self.name, "exclusive")
        acquired = self._lock.acquire(blocking, timeout)
        if not acquired:
            self._tracer.record_release(self.name, "exclusive")
        else:
            self._tracer.notify_acquired(self.name, "exclusive")
        return acquired

    def release(self) -> None:
        self._tracer.notify_releasing(self.name, "exclusive")
        self._lock.release()
        self._tracer.record_release(self.name, "exclusive")

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> Optional[bool]:
        self.release()
        return None

    def locked(self) -> bool:
        return self._lock.locked()


class TracedRWLock:
    """Recording proxy with the :class:`ReadWriteLock` surface."""

    def __init__(self, tracer: LockTracer, lock: object, name: str):
        self._tracer = tracer
        self._lock = lock
        self.name = name

    # Read side -------------------------------------------------------------------

    def acquire_read(self) -> None:
        self._tracer.record_acquire(self.name, "read")
        try:
            self._lock.acquire_read()
        except BaseException:
            self._tracer.record_release(self.name, "read")
            raise
        self._tracer.notify_acquired(self.name, "read")

    def release_read(self) -> None:
        self._tracer.notify_releasing(self.name, "read")
        self._lock.release_read()
        self._tracer.record_release(self.name, "read")

    def read(self):
        from contextlib import contextmanager

        @contextmanager
        def _ctx():
            self.acquire_read()
            try:
                yield self
            finally:
                self.release_read()

        return _ctx()

    # Write side ------------------------------------------------------------------

    def acquire_write(self) -> None:
        self._tracer.record_acquire(self.name, "write")
        try:
            self._lock.acquire_write()
        except BaseException:
            self._tracer.record_release(self.name, "write")
            raise
        self._tracer.notify_acquired(self.name, "write")

    def release_write(self) -> None:
        self._tracer.notify_releasing(self.name, "write")
        self._lock.release_write()
        self._tracer.record_release(self.name, "write")

    def write(self):
        from contextlib import contextmanager

        @contextmanager
        def _ctx():
            self.acquire_write()
            try:
                yield self
            finally:
                self.release_write()

        return _ctx()

    # Introspection ---------------------------------------------------------------

    def state(self) -> dict:
        return self._lock.state()
