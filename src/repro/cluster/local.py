"""An in-process cluster: real HTTP workers + coordinator, one call away.

:class:`LocalCluster` is the deployment harness the identity battery,
the failover tests, the chaos runs and the ``repro cluster`` CLI all
share.  It runs the full production path — LPT shard plan, global
statistics exchange, per-shard engine builds with injected ElemRanks,
one real HTTP server per replica on an ephemeral port, scatter-gather
coordinator over real :class:`~repro.service.client.ServiceClient`
RPCs — inside one process, so a 4-shard × 2-replica cluster boots in a
test in well under a second and there is no mock transport whose
behaviour could drift from production's.

Replicas of a shard share the (read-only, immutable once built) engine
object by default; pass ``independent_engines=True`` to round-trip each
extra replica through an engine snapshot instead, which is exactly the
bring-up path a separate worker process uses.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..build.shard import DocumentSpec, shard_specs
from ..config import XRankConfig
from ..errors import ClusterError
from .coordinator import ClusterCoordinator, ReplicaEndpoint
from .stats import GlobalStats, build_full_graph, compute_global_stats
from .worker import (
    DEFAULT_CLUSTER_KINDS,
    ShardWorker,
    build_shard_engine,
    specs_from_sources,
)


class LocalCluster:
    """A started-on-demand sharded/replicated cluster in one process."""

    def __init__(
        self,
        specs: Sequence[DocumentSpec],
        num_shards: int = 2,
        replicas: int = 1,
        kinds: Sequence[str] = DEFAULT_CLUSTER_KINDS,
        config: Optional[XRankConfig] = None,
        independent_engines: bool = False,
        coordinator_options: Optional[Dict[str, object]] = None,
        worker_options: Optional[Dict[str, object]] = None,
        snapshot_root: Optional[str] = None,
    ):
        """Args:
            worker_options: extra keyword arguments for every
                :class:`~repro.cluster.worker.ShardWorker` (e.g.
                ``{"profile": True}`` to collect per-query cost profiles
                on each replica); also applied to replicas resurrected
                via :meth:`restart_from_snapshot`.
            snapshot_root: enable the restart–rejoin path — each shard
                gets a generational :class:`~repro.durability.
                SnapshotStore` under this directory, seeded with one
                committed generation at build time, and
                :meth:`restart_from_snapshot` can then resurrect a
                replica from disk instead of from the in-process engine.
        """
        if replicas < 1:
            raise ClusterError(f"replicas must be >= 1, got {replicas}")
        self.specs = list(specs)
        if not self.specs:
            raise ClusterError("cannot build a cluster over an empty corpus")
        self.kinds = tuple(kinds)
        self.config = config
        self.replicas = replicas
        self.coordinator_options = dict(coordinator_options or {})
        self.worker_options = dict(worker_options or {})
        self.snapshot_root = Path(snapshot_root) if snapshot_root else None
        self.stores: Dict[int, object] = {}
        self.rejoins = 0

        # 1. Shard plan: the same deterministic LPT partition the parallel
        #    build uses (doc ids were assigned before sharding).
        self.shard_plan: List[List[DocumentSpec]] = [
            shard for shard in shard_specs(self.specs, num_shards) if shard
        ]
        self.num_shards = len(self.shard_plan)

        # 2. Global-statistics exchange over the full corpus.
        self.stats: GlobalStats = compute_global_stats(
            build_full_graph(self.specs), config
        )

        # 3. Per-shard engines with injected global ElemRanks.
        self.workers: List[List[ShardWorker]] = []
        for shard_id, shard in enumerate(self.shard_plan):
            engine = build_shard_engine(
                shard, self.stats, kinds=self.kinds, config=config
            )
            if self.snapshot_root is not None:
                from ..durability import SnapshotStore

                store = SnapshotStore(self.snapshot_root / f"shard-{shard_id}")
                store.save(engine)
                self.stores[shard_id] = store
            shard_store = self.stores.get(shard_id)
            group: List[ShardWorker] = [
                ShardWorker(
                    engine,
                    shard_id=shard_id,
                    replica_id=0,
                    snapshot_store=shard_store,
                    **self.worker_options,
                )
            ]
            for replica_id in range(1, replicas):
                if independent_engines:
                    with tempfile.TemporaryDirectory() as scratch:
                        snapshot = Path(scratch) / "engine"
                        engine.save(snapshot)
                        group.append(
                            ShardWorker.from_snapshot(
                                snapshot,
                                shard_id=shard_id,
                                replica_id=replica_id,
                                **self.worker_options,
                            )
                        )
                else:
                    group.append(
                        ShardWorker(
                            engine,
                            shard_id=shard_id,
                            replica_id=replica_id,
                            snapshot_store=shard_store,
                            **self.worker_options,
                        )
                    )
            self.workers.append(group)
        self.coordinator: Optional[ClusterCoordinator] = None

    # -- constructors ----------------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: Sequence, **options) -> "LocalCluster":
        """Build from raw XML strings / ``(source, uri)`` pairs / specs."""
        return cls(specs_from_sources(sources), **options)

    @classmethod
    def from_corpus(cls, corpus, **options) -> "LocalCluster":
        """Build from a generated :class:`~repro.datasets.dblp.Corpus`.

        Reuses each document's URI so cross-document citation links
        resolve in the full-corpus graph exactly as the generator's own
        graph resolved them.
        """
        specs = [
            DocumentSpec(
                doc_id=document.doc_id, uri=document.uri, source=source
            )
            for document, source in zip(corpus.documents, corpus.sources)
        ]
        return cls(specs, **options)

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> "LocalCluster":
        """Start every replica's HTTP server and wire up the coordinator."""
        for group in self.workers:
            for worker in group:
                worker.start()
        self.coordinator = ClusterCoordinator(
            [
                [self._endpoint(worker) for worker in group]
                for group in self.workers
            ],
            default_kind=(
                "hdil" if "hdil" in self.kinds else self.kinds[-1]
            ),
            **self.coordinator_options,
        )
        return self

    def stop(self) -> None:
        for group in self.workers:
            for worker in group:
                if worker.running:
                    worker.stop()
        self.coordinator = None

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- failure injection (failover tests, chaos, CLI demos) ------------------------

    def worker(self, shard_id: int, replica_id: int) -> ShardWorker:
        for candidate in self.workers[shard_id]:
            if candidate.replica_id == replica_id:
                return candidate
        raise ClusterError(f"no replica {replica_id} in shard {shard_id}")

    def kill(self, shard_id: int, replica_id: int) -> None:
        """Drop one replica's listener, as a crashed process would."""
        self.worker(shard_id, replica_id).kill()

    def restart(self, shard_id: int, replica_id: int) -> ReplicaEndpoint:
        """Bring a killed replica back (new ephemeral port) and announce
        its new address to the coordinator."""
        worker = self.worker(shard_id, replica_id)
        worker.start()
        endpoint = self._endpoint(worker)
        if self.coordinator is not None:
            self.coordinator.replace_endpoint(endpoint)
        return endpoint

    def restart_from_snapshot(
        self, shard_id: int, replica_id: int, span=None
    ) -> ReplicaEndpoint:
        """Resurrect a replica from its shard's snapshot store.

        The hard-crash restart path: unlike :meth:`restart` (which
        reuses the still-in-memory engine, i.e. a listener blip), this
        discards the old worker object entirely and goes through the
        full crash→recover→re-verify→re-register cycle —
        :meth:`~repro.cluster.worker.ShardWorker.rejoin_from_store`
        recovers the newest intact generation, re-checks global-stats
        coverage, and the fresh worker's new endpoint is announced to
        the coordinator.
        """
        if self.snapshot_root is None:
            raise ClusterError(
                "cluster was built without snapshot_root; "
                "there is nothing on disk to rejoin from"
            )
        old = self.worker(shard_id, replica_id)
        if old.running:
            old.kill()
        worker = ShardWorker.rejoin_from_store(
            self.stores[shard_id],
            shard_id=shard_id,
            replica_id=replica_id,
            stats=self.stats,
            span=span,
            **self.worker_options,
        )
        group = self.workers[shard_id]
        group[group.index(old)] = worker
        worker.start()
        self.rejoins += 1
        endpoint = self._endpoint(worker)
        if self.coordinator is not None:
            self.coordinator.replace_endpoint(endpoint)
        return endpoint

    # -- queries ---------------------------------------------------------------------

    def search(self, query: str, **options):
        if self.coordinator is None:
            raise ClusterError("cluster is not started")
        return self.coordinator.search(query, **options)

    def profile_snapshot(self) -> Dict[str, object]:
        """The coordinator-merged cluster-wide cost profile."""
        if self.coordinator is None:
            raise ClusterError("cluster is not started")
        return self.coordinator.profile_snapshot()

    # -- introspection ---------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        return {
            "shards": self.num_shards,
            "replicas": self.replicas,
            "documents": self.stats.num_documents,
            "elements": self.stats.num_elements,
            "kinds": list(self.kinds),
            "elemrank_iterations": self.stats.elemrank_iterations,
            "elemrank_converged": self.stats.elemrank_converged,
            "shard_sizes": [len(shard) for shard in self.shard_plan],
            "workers": [
                [worker.describe() for worker in group]
                for group in self.workers
            ],
            "rejoins": self.rejoins,
            "snapshot_stores": {
                str(shard_id): store.counters()
                for shard_id, store in sorted(self.stores.items())
            },
        }

    @staticmethod
    def _endpoint(worker: ShardWorker) -> ReplicaEndpoint:
        return ReplicaEndpoint(
            shard_id=worker.shard_id,
            replica_id=worker.replica_id,
            host=worker.host,
            port=worker.port,
        )
