"""Serialize node trees back to XML text.

Round-tripping matters for the corpus generators (which build documents as
strings, parse them, and occasionally need to write them out for inspection)
and for debugging index contents.  Attribute pseudo-elements are folded back
into real attributes, so ``parse → serialize`` is a faithful inverse up to
whitespace.
"""

from __future__ import annotations

from typing import List

from .nodes import Document, Element, ValueNode

_ESCAPES_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ESCAPES_ATTR = {**_ESCAPES_TEXT, '"': "&quot;"}


def escape_text(text: str) -> str:
    """Escape character-data special characters (& < >)."""
    for char, entity in _ESCAPES_TEXT.items():
        text = text.replace(char, entity)
    return text


def escape_attribute(text: str) -> str:
    """Escape attribute-value special characters (& < > \")."""
    for char, entity in _ESCAPES_ATTR.items():
        text = text.replace(char, entity)
    return text


def element_to_xml(element: Element, indent: int = 0, step: int = 2) -> str:
    """Serialize one element subtree with indentation."""
    pad = " " * indent
    attributes: List[str] = []
    content_children = []
    for child in element.children:
        if isinstance(child, Element) and child.from_attribute:
            value = attribute_text(child)
            attributes.append(f'{child.tag}="{escape_attribute(value)}"')
        else:
            content_children.append(child)

    attr_str = (" " + " ".join(attributes)) if attributes else ""
    if not content_children:
        return f"{pad}<{element.tag}{attr_str}/>"

    # Single text child renders inline for readability.
    if len(content_children) == 1 and isinstance(content_children[0], ValueNode):
        text = escape_text(content_children[0].text)
        return f"{pad}<{element.tag}{attr_str}>{text}</{element.tag}>"

    lines = [f"{pad}<{element.tag}{attr_str}>"]
    for child in content_children:
        if isinstance(child, Element):
            lines.append(element_to_xml(child, indent + step, step))
        else:
            lines.append(f"{' ' * (indent + step)}{escape_text(child.text)}")
    lines.append(f"{pad}</{element.tag}>")
    return "\n".join(lines)


def document_to_xml(document: Document) -> str:
    """Serialize a whole document (no XML declaration)."""
    return element_to_xml(document.root) + "\n"


def attribute_text(element: Element) -> str:
    """Raw text of an attribute pseudo-element (joined value children)."""
    return " ".join(v.text for v in element.value_children())
