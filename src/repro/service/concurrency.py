"""A writer-preference reader-writer lock for the serving layer.

``XRankEngine`` is plain single-threaded Python: two concurrent
``search()`` calls share cursor state on one simulated disk, and a
``search()`` racing an ``add_document()`` can observe half-built indexes.
The service therefore brackets every query in a *read* lock and every
corpus/index mutation in a *write* lock: any number of readers proceed
concurrently, writers are exclusive.

Writer preference — readers arriving while a writer waits queue behind
it — keeps update latency bounded under heavy query traffic (a steady
stream of readers can otherwise starve writers forever).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict

from ..errors import LockUsageError


class ReadWriteLock:
    """Many concurrent readers / one exclusive writer, writer preference.

    **Not reentrant.**  Writer preference makes same-thread re-acquisition
    a deadlock, not a convenience: a thread nesting ``acquire_read()``
    inside its own read section blocks forever as soon as a writer queues
    between the two acquisitions (the inner read waits for the writer,
    the writer waits for the outer read to drain), and a read->write
    upgrade waits for the thread's *own* read lock.  Both patterns raise
    :class:`~repro.errors.LockUsageError` immediately instead of hanging;
    structure code so each thread holds at most one side of the lock at a
    time (e.g. private ``_locked`` helpers called from one locked public
    entry point).
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        # thread ident -> read-lock hold count, to detect re-entrancy.
        self._reader_idents: Dict[int, int] = {}
        self._writer_active = False
        self._writer_ident: int = -1
        self._writers_waiting = 0

    # -- read side -------------------------------------------------------------

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then enter.

        Raises:
            LockUsageError: this thread already holds the read or write
                side (re-entrancy would deadlock under writer preference).
        """
        ident = threading.get_ident()
        with self._cond:
            if self._reader_idents.get(ident):
                raise LockUsageError(
                    "nested acquire_read() on the same thread: deadlocks "
                    "whenever a writer queues between the two acquisitions"
                )
            if self._writer_active and self._writer_ident == ident:
                raise LockUsageError(
                    "acquire_read() while holding the write lock on the "
                    "same thread: the reader waits for its own writer"
                )
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self._reader_idents[ident] = self._reader_idents.get(ident, 0) + 1

    def release_read(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            self._readers -= 1
            count = self._reader_idents.get(ident, 0) - 1
            if count <= 0:
                self._reader_idents.pop(ident, None)
            else:
                self._reader_idents[ident] = count
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self):
        """``with lock.read(): ...`` — shared access."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    # -- write side ------------------------------------------------------------

    def acquire_write(self) -> None:
        """Block until all readers drain and no other writer holds the lock.

        Raises:
            LockUsageError: this thread already holds the read lock
                (upgrade deadlock) or the write lock (not reentrant).
        """
        ident = threading.get_ident()
        with self._cond:
            if self._reader_idents.get(ident):
                raise LockUsageError(
                    "read->write upgrade on the same thread: the writer "
                    "waits for this thread's own read lock to drain"
                )
            if self._writer_active and self._writer_ident == ident:
                raise LockUsageError(
                    "nested acquire_write() on the same thread: the lock "
                    "is not reentrant"
                )
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self._writer_ident = ident

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._writer_ident = -1
            self._cond.notify_all()

    @contextmanager
    def write(self):
        """``with lock.write(): ...`` — exclusive access."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # -- introspection -----------------------------------------------------------

    def state(self) -> dict:
        """Snapshot for /stats: active readers, writer, waiting writers."""
        with self._cond:
            return {
                "active_readers": self._readers,
                "writer_active": self._writer_active,
                "writers_waiting": self._writers_waiting,
            }
