#!/usr/bin/env python3
"""Live index maintenance (paper Section 4.5).

Demonstrates document-granularity updates without full rebuilds:

* new documents land in a small delta index and are immediately searchable
  (main + delta cursors chain into one Dewey-ordered stream);
* deletes tombstone a document across all structures;
* ``replace_document`` edits a document by tombstone-and-re-add;
* ``merge_incremental`` compacts the delta into the main index and reclaims
  tombstoned postings — the point where a production deployment would also
  recompute exact ElemRanks offline (Figure 2).

Run:  python examples/live_updates.py
"""

from repro import XRankEngine


def show(engine: XRankEngine, query: str) -> None:
    hits = engine.search(query, kind="dil-incremental", m=5)
    print(f"  search({query!r}) -> {[f'{h.dewey}:{h.tag}' for h in hits]}")


def main() -> None:
    engine = XRankEngine()
    engine.add_xml("<article><title>stable base document</title></article>")
    engine.build(kinds=["dil-incremental"])
    print("built with one document;", engine.stats())

    print("\nincremental additions:")
    engine.add_xml_incremental(
        "<article><title>breaking news flash</title>"
        "<body>details of the breaking story</body></article>"
    )
    show(engine, "breaking news")
    index = engine.index("dil-incremental")
    print(f"  delta holds {index.delta_size} postings")

    print("\nreplace a document (edit = tombstone + re-add):")
    hits = engine.search("breaking", kind="dil-incremental")
    old_id = int(hits[0].dewey.split(".")[0])
    engine.replace_document(
        old_id,
        "<article><title>corrected news flash</title></article>",
    )
    show(engine, "breaking")
    show(engine, "corrected")

    print("\ncompaction:")
    before = index.inverted_list_bytes
    engine.merge_incremental()
    print(
        f"  merge: lists {before}B -> {index.inverted_list_bytes}B, "
        f"delta={index.delta_size}"
    )
    show(engine, "corrected")


if __name__ == "__main__":
    main()
