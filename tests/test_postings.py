"""Unit tests for posting extraction and the naive ancestor expansion."""

import pytest

from repro.index.postings import (
    Posting,
    expand_to_naive_postings,
    extract_direct_postings,
    rank_order,
)
from repro.ranking.elemrank import compute_elemrank
from repro.xmlmodel.dewey import DeweyId
from repro.xmlmodel.graph import CollectionGraph
from repro.xmlmodel.parser import parse_xml


def graph_and_ranks(*sources):
    graph = CollectionGraph()
    for i, source in enumerate(sources):
        graph.add_document(parse_xml(source, doc_id=i))
    graph.finalize()
    result = compute_elemrank(graph)
    return graph, result.as_mapping(graph)


class TestPostingCodec:
    def test_roundtrip(self):
        posting = Posting(DeweyId.parse("3.1.4"), 0.125, (7, 9, 30))
        assert Posting.decode(posting.encode()) == posting

    def test_payload_roundtrip(self):
        posting = Posting(DeweyId.parse("3.1"), 0.5, (1,))
        decoded = Posting.decode_payload(posting.dewey, posting.encode_payload())
        assert decoded == posting

    def test_float32_rounding(self):
        posting = Posting(DeweyId((1,)), 1 / 3, ())
        decoded = Posting.decode(posting.encode())
        assert decoded.elemrank == pytest.approx(1 / 3, rel=1e-6)


class TestDirectExtraction:
    def test_only_direct_containers(self):
        graph, ranks = graph_and_ranks("<a><b>word</b></a>")
        postings = extract_direct_postings(graph, ranks)
        assert [str(p.dewey) for p in postings["word"]] == ["0.0"]

    def test_sorted_by_dewey(self):
        graph, ranks = graph_and_ranks(
            "<a><b>dup</b><c>dup</c></a>", "<d>dup</d>"
        )
        deweys = [p.dewey for p in extract_direct_postings(graph, ranks)["dup"]]
        assert deweys == sorted(deweys)
        assert len(deweys) == 3

    def test_positions_recorded(self):
        graph, ranks = graph_and_ranks("<a>x y x</a>")
        posting = extract_direct_postings(graph, ranks)["x"][0]
        assert len(posting.positions) == 2
        assert posting.positions == tuple(sorted(posting.positions))

    def test_tag_names_indexed(self):
        graph, ranks = graph_and_ranks("<author>Jim</author>")
        postings = extract_direct_postings(graph, ranks)
        assert "author" in postings and "jim" in postings

    def test_elemrank_attached(self):
        graph, ranks = graph_and_ranks("<a><b>w</b></a>")
        posting = extract_direct_postings(graph, ranks)["w"][0]
        b = graph.documents[0].root.find_first("b")
        assert posting.elemrank == pytest.approx(ranks[b.dewey], rel=1e-5)


class TestNaiveExpansion:
    def test_ancestors_replicated(self):
        graph, ranks = graph_and_ranks("<a><b><c>deep</c></b></a>")
        direct = extract_direct_postings(graph, ranks)
        naive = expand_to_naive_postings(direct, ranks)
        assert [str(p.dewey) for p in naive["deep"]] == ["0", "0.0", "0.0.0"]

    def test_positions_merged_upward(self):
        graph, ranks = graph_and_ranks("<a><b>kw</b><c>kw</c></a>")
        naive = expand_to_naive_postings(
            extract_direct_postings(graph, ranks), ranks
        )
        root_entry = [p for p in naive["kw"] if p.dewey == DeweyId((0,))][0]
        assert len(root_entry.positions) == 2

    def test_naive_strictly_larger(self):
        graph, ranks = graph_and_ranks(
            "<a><b><c>x</c></b></a>", "<d><e>x</e></d>"
        )
        direct = extract_direct_postings(graph, ranks)
        naive = expand_to_naive_postings(direct, ranks)
        assert len(naive["x"]) > len(direct["x"])


class TestRankOrder:
    def test_descending_with_dewey_tiebreak(self):
        postings = [
            Posting(DeweyId.parse("0.2"), 0.5, ()),
            Posting(DeweyId.parse("0.1"), 0.5, ()),
            Posting(DeweyId.parse("0.0"), 0.9, ()),
        ]
        ordered = rank_order(postings)
        assert [str(p.dewey) for p in ordered] == ["0.0", "0.1", "0.2"]
        assert ordered[0].elemrank == 0.9
