"""API-quality gates: docstring coverage and import hygiene.

A release-grade library documents its public surface.  These tests walk the
package and fail when a public module, class or function lacks a docstring,
and when ``__all__`` declarations drift from what a module actually exports.
"""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro",
    "repro.bench",
    "repro.datasets",
    "repro.index",
    "repro.query",
    "repro.ranking",
    "repro.storage",
    "repro.text",
    "repro.xmlmodel",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.name.startswith("_"):
                continue
            yield importlib.import_module(f"{package_name}.{info.name}")


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(member) is not module:
            continue  # re-exports are documented at their origin
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__
            for module in iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, member in public_members(module):
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, (
            f"public items without docstrings: {undocumented}"
        )

    def test_public_methods_documented(self):
        undocumented = []
        for module in iter_modules():
            for _, member in public_members(module):
                if not inspect.isclass(member):
                    continue
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not (method.__doc__ or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{member.__name__}.{method_name}"
                        )
        assert not undocumented, (
            f"public methods without docstrings: {undocumented}"
        )


class TestAllDeclarations:
    def test_package_all_resolves(self):
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            declared = getattr(package, "__all__", None)
            if declared is None:
                continue
            missing = [name for name in declared if not hasattr(package, name)]
            assert not missing, f"{package_name}.__all__ dangles: {missing}"

    def test_version_exported(self):
        assert repro.__version__
        assert isinstance(repro.__version__, str)
