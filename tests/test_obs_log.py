"""The structured event log: ring semantics, trace binding, canonical
transcripts, and end-to-end trace correlation through the service."""

from __future__ import annotations

import json
import threading

import pytest

from repro.engine import XRankEngine
from repro.obs import Tracer
from repro.obs.log import (
    EventLog,
    bind_trace,
    current_trace_id,
    default_event_log,
)
from repro.service.core import XRankService


class TestBindTrace:
    def test_no_binding_means_none(self):
        assert current_trace_id() is None

    def test_bind_and_restore(self):
        with bind_trace("t1"):
            assert current_trace_id() == "t1"
        assert current_trace_id() is None

    def test_bindings_nest(self):
        with bind_trace("outer"):
            with bind_trace("inner"):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "outer"

    def test_binding_none_masks_the_outer_binding(self):
        with bind_trace("outer"):
            with bind_trace(None):
                assert current_trace_id() is None
            assert current_trace_id() == "outer"

    def test_binding_is_thread_local(self):
        seen = []

        def other_thread():
            seen.append(current_trace_id())

        with bind_trace("t1"):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join(timeout=10)
        assert seen == [None]


class TestEventLog:
    def test_emit_stamps_seq_kind_and_ambient_trace(self):
        log = EventLog()
        with bind_trace("t7"):
            record = log.emit("breaker_transition", state="open", index_kind="hdil")
        assert record["seq"] == 1
        assert record["kind"] == "breaker_transition"
        assert record["trace_id"] == "t7"
        assert record["state"] == "open"

    def test_fields_are_stored_in_sorted_order(self):
        log = EventLog()
        log.emit("e", zebra=1, alpha=2, mid=3)
        (record,) = log.events()
        assert list(record) == ["seq", "kind", "trace_id", "alpha", "mid", "zebra"]

    def test_reserved_field_names_raise(self):
        log = EventLog()
        for field in ("seq", "kind", "trace_id"):
            with pytest.raises(ValueError, match="envelope"):
                log.emit("e", **{field: "x"})
        assert log.stats()["emitted"] == 0

    def test_ring_evicts_oldest_and_counts_dropped(self):
        log = EventLog(capacity=3)
        for n in range(5):
            log.emit("tick", n=n)
        records = log.events()
        assert [r["n"] for r in records] == [2, 3, 4]
        assert [r["seq"] for r in records] == [3, 4, 5]
        stats = log.stats()
        assert stats == {"capacity": 3, "events": 3, "emitted": 5, "dropped": 2}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_filtering_by_kind_and_trace(self):
        log = EventLog()
        with bind_trace("tA"):
            log.emit("x")
            log.emit("y")
        with bind_trace("tB"):
            log.emit("x")
        assert len(log.events(kind="x")) == 2
        assert len(log.events(trace_id="tA")) == 2
        assert len(log.events(kind="x", trace_id="tA")) == 1

    def test_to_jsonl_is_canonical(self):
        log = EventLog()
        log.emit("x", b=1, a=2)
        line = log.to_jsonl()
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )
        assert '"trace_id":null' in line

    def test_clear_keeps_seq_monotone(self):
        log = EventLog()
        log.emit("x")
        log.clear()
        record = log.emit("y")
        assert record["seq"] == 2  # seq never restarts: ordering is global

    def test_default_log_is_a_shared_singleton(self):
        assert default_event_log() is default_event_log()


class TestServiceCorrelation:
    """Acceptance: events emitted while serving a sampled query carry
    that query's trace id."""

    def build_service(self, **kwargs) -> XRankService:
        engine = XRankEngine()
        engine.add_xml(
            "<doc><title>alpha beta</title><p>alpha gamma</p></doc>",
            uri="doc0",
        )
        engine.build(kinds=["hdil", "dil"])
        return XRankService(engine, tracer=Tracer(sample="always"), **kwargs)

    def test_degraded_answer_event_joins_its_span_tree(self):
        service = self.build_service()
        response = service.search("alpha beta", m=5, deadline_ms=0.0)
        assert response.degraded
        (event,) = service.events.events(kind="degraded_answer")
        assert event["trace_id"] is not None
        # The trace id joins back to a retained span tree.
        (span,) = [
            s for s in service.tracer.buffer.traces()
            if s.trace_id == event["trace_id"]
        ]
        assert span.name == "service.search"

    def test_unsampled_queries_emit_events_with_null_trace(self):
        engine = XRankEngine()
        engine.add_xml("<doc><p>alpha beta</p></doc>", uri="doc0")
        engine.build(kinds=["hdil", "dil"])
        service = XRankService(engine)  # default tracer: sample="never"
        service.search("alpha beta", m=5, deadline_ms=0.0)
        (event,) = service.events.events(kind="degraded_answer")
        assert event["trace_id"] is None

    def test_distinct_queries_get_distinct_trace_ids(self):
        service = self.build_service()
        service.search("alpha beta", m=5, deadline_ms=0.0)
        service.search("alpha gamma", m=5, deadline_ms=0.0)
        events = service.events.events(kind="degraded_answer")
        ids = [e["trace_id"] for e in events]
        assert len(ids) == 2 and None not in ids
        assert ids[0] != ids[1]

    def test_stats_surface_event_log_counters(self):
        service = self.build_service()
        service.search("alpha", m=5)
        stats = service.stats()
        assert stats["events"]["capacity"] > 0
        assert "emitted" in stats["events"]
