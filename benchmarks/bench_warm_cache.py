"""Warm-cache results (companion technical report [18]) and keyword
selectivity (the fourth Section 5.4 factor)."""

import pytest

from repro.bench.experiments import run_selectivity, run_warm_cache


def test_warm_cache(benchmark, suite, capsys):
    data, text = benchmark.pedantic(
        lambda: run_warm_cache(suite), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + text)
    for approach, row in data.items():
        assert row["warm_ms"] < row["cold_ms"], (
            f"{approach} must be cheaper with a warm buffer pool"
        )
    # Probe-heavy RDIL gains at least as much from the warm pool as the
    # scan-only DIL does (its hot pages — tree roots — are reusable).
    assert data["rdil"]["speedup"] >= data["dil"]["speedup"] * 0.5


def test_selectivity(benchmark, suite, capsys):
    table = benchmark.pedantic(
        lambda: run_selectivity(suite), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + table.format())
    # High-frequency keywords mean longer lists; DIL's full-scan cost must
    # not be lower for the high band than for the medium band.
    high, medium = table.points[0].values, table.points[1].values
    assert high["dil"] >= medium["dil"]


@pytest.mark.parametrize("approach", ("dil", "rdil", "hdil"))
def test_warm_query_latency(benchmark, suite, approach):
    """Wall-clock of a warm repeat query (pool not dropped between runs)."""
    from repro.datasets.workloads import high_correlation_queries

    query = high_correlation_queries(suite.planted, 2).queries[0]
    evaluator = suite.dblp.evaluators[approach]
    evaluator.evaluate(list(query), m=10)  # warm the pool

    results = benchmark(lambda: evaluator.evaluate(list(query), m=10))
    assert results
