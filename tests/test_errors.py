"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.XMLParseError,
            errors.DeweyError,
            errors.StorageError,
            errors.PageError,
            errors.BTreeError,
            errors.IndexError_,
            errors.IndexNotBuiltError,
            errors.DocumentNotFoundError,
            errors.QueryError,
            errors.ConvergenceError,
        ],
    )
    def test_all_derive_from_xrank_error(self, exc):
        assert issubclass(exc, errors.XRankError)

    def test_page_error_is_storage_error(self):
        assert issubclass(errors.PageError, errors.StorageError)
        assert issubclass(errors.BTreeError, errors.StorageError)

    def test_index_sub_hierarchy(self):
        assert issubclass(errors.IndexNotBuiltError, errors.IndexError_)
        assert issubclass(errors.DocumentNotFoundError, errors.IndexError_)

    def test_index_error_does_not_shadow_builtin(self):
        assert errors.IndexError_ is not IndexError
        assert not issubclass(errors.IndexError_, IndexError)


class TestXMLParseErrorLocation:
    def test_line_in_message(self):
        error = errors.XMLParseError("bad tag", line=42)
        assert "line 42" in str(error)
        assert error.line == 42

    def test_offset_in_message(self):
        error = errors.XMLParseError("bad tag", offset=1234)
        assert "offset 1234" in str(error)

    def test_line_preferred_over_offset(self):
        error = errors.XMLParseError("bad", offset=5, line=2)
        assert "line 2" in str(error)
        assert "offset" not in str(error)

    def test_no_location(self):
        error = errors.XMLParseError("just bad")
        assert str(error) == "just bad"

    def test_catchable_at_boundary(self):
        """One except clause covers the whole library (the documented
        contract of the hierarchy)."""
        from repro.xmlmodel.parser import parse_xml

        with pytest.raises(errors.XRankError):
            parse_xml("<a><b></a>", doc_id=0)
