"""AST helpers shared by the concrete lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNCTION_NODES + (ast.Lambda,)


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every function/method definition in the module, nested included."""
    for node in ast.walk(tree):
        if isinstance(node, _FUNCTION_NODES):
            yield node


def walk_within(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def is_generator(func: ast.AST) -> bool:
    """Whether the function is a generator (own yields, not nested ones)."""
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in walk_within(func)
    )


def param_names(func: ast.FunctionDef) -> Set[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
