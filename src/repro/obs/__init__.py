"""repro.obs — end-to-end query tracing, profiling and event logging.

Every layer of the serving stack (HTTP front end, cluster coordinator,
shard workers, evaluators, simulated disk) reports into one per-query
span tree, so "why was *this* query slow?" has a structural answer
instead of an aggregate-counter shrug.  See :mod:`repro.obs.trace` for
the span model, :mod:`repro.obs.render` for the tree/canonical-JSON
views, and :mod:`repro.obs.invariants` for the validity battery the
tests and ``repro trace --check`` run over captured traces.

Three sibling subsystems complete the picture:

* :mod:`repro.obs.profile` — per-query deterministic cost counters
  (postings scanned, Dewey comparisons, heap/B+-tree work, simulated
  I/O) aggregated by evaluator, query shape and result bucket;
* :mod:`repro.obs.slo` — multi-window burn-rate monitoring of
  availability and latency SLOs over query-counted windows;
* :mod:`repro.obs.log` — a bounded structured event log whose records
  carry the trace id of the query that caused them.
"""

from .trace import (
    NOOP_SPAN,
    Span,
    TraceBuffer,
    TraceContext,
    Tracer,
    TRACE_ID_HEADER,
    PARENT_SPAN_HEADER,
)
from .render import render_profile, render_trace, to_canonical_json, to_json
from .invariants import validate_trace
from .log import EventLog, bind_trace, current_trace_id, default_event_log
from .profile import (
    ProfileRegistry,
    QueryProfile,
    activate,
    active_profile,
    canonical_profile_json,
    merge_snapshots,
)
from .slo import SLOMonitor

__all__ = [
    "EventLog",
    "NOOP_SPAN",
    "PARENT_SPAN_HEADER",
    "ProfileRegistry",
    "QueryProfile",
    "SLOMonitor",
    "Span",
    "TraceBuffer",
    "TraceContext",
    "Tracer",
    "TRACE_ID_HEADER",
    "activate",
    "active_profile",
    "bind_trace",
    "canonical_profile_json",
    "current_trace_id",
    "default_event_log",
    "merge_snapshots",
    "render_profile",
    "render_trace",
    "to_canonical_json",
    "to_json",
    "validate_trace",
]
