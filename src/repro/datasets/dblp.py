"""A DBLP-like synthetic corpus (paper Section 5.1 substitution).

The paper evaluates on the real 143 MB DBLP dump; what its experiments
actually exercise are DBLP's *structural* properties, which this generator
reproduces at a configurable scale:

* shallow nesting — depth about 4 (article → title/author/abstract →
  text), "DBLP data is relatively shallow with a depth of about 4";
* many small documents — each publication is its own XML document;
* many **inter-document** references — bibliographic citations become
  XLink references whose target distribution is preferentially attached,
  giving the skewed in-degree a citation graph really has (and hence a
  meaningful ElemRank spread);
* a reused author pool, so author names have realistic selectivity.

With ``plant_anecdotes=True`` the generator also plants the Section 5.2
ranking-quality entities: a heavily cited author ("gray") and a handful of
moderately cited papers titled about "gray codes", so the anecdotal queries
('gray', 'author gray') can be replayed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..xmlmodel.graph import CollectionGraph
from ..xmlmodel.nodes import Document
from ..xmlmodel.parser import parse_xml
from .textgen import PlantedKeywords, TextGenerator

_VENUES = (
    "sigmod", "vldb", "icde", "sigir", "kdd", "edbt", "cikm", "pods",
)


@dataclass
class Corpus:
    """A generated corpus plus the graph it was loaded into."""

    name: str
    graph: CollectionGraph
    documents: List[Document] = field(default_factory=list)
    planted: Optional[PlantedKeywords] = None
    #: Raw XML text per document, aligned with ``documents`` — lets the
    #: parallel-build pipeline (and its benchmark) re-run the full
    #: parse + tokenize path instead of starting from parsed trees.
    sources: List[str] = field(default_factory=list)

    @property
    def num_documents(self) -> int:
        return len(self.documents)

    @property
    def num_elements(self) -> int:
        self.graph.finalize()
        return len(self.graph.elements)


def _citations(
    rng: random.Random, paper_index: int, max_refs: int, popularity: List[int]
) -> List[int]:
    """Preferentially attached citation targets among earlier papers."""
    if paper_index == 0:
        return []
    count = rng.randint(0, max_refs)
    targets: List[int] = []
    total = sum(popularity[:paper_index])
    for _ in range(count):
        if rng.random() < 0.3 or total == 0:
            target = rng.randrange(paper_index)
        else:
            # Roulette-wheel over current in-degree (rich get richer).
            point = rng.uniform(0, total)
            acc = 0.0
            target = paper_index - 1
            for i in range(paper_index):
                acc += popularity[i]
                if acc >= point:
                    target = i
                    break
        if target not in targets:
            targets.append(target)
            popularity[target] += 1
            total += 1
    return targets


def generate_dblp(
    num_papers: int = 300,
    seed: int = 11,
    planted: Optional[PlantedKeywords] = None,
    plant_anecdotes: bool = False,
    max_refs: int = 6,
    start_doc_id: int = 0,
) -> Corpus:
    """Generate a DBLP-like corpus of ``num_papers`` single-paper documents."""
    gen = TextGenerator(seed=seed, planted=planted)
    rng = random.Random(seed * 31 + 7)
    popularity = [1] * num_papers

    anecdote_cited = set()
    gray_code_papers = set()
    if plant_anecdotes:
        # A famous, heavily cited author and some Gray-code papers.
        anecdote_cited = set(range(0, min(3, num_papers)))
        gray_code_papers = set(
            range(min(5, num_papers), min(8, num_papers))
        )

    sources: List[str] = []
    for i in range(num_papers):
        gen.new_scope()  # one striping scope per paper (document)
        title = gen.title()
        if i in gray_code_papers:
            title = f"efficient generation of gray codes {gen.title(2, 4)}"
        authors = [gen.name() for _ in range(gen.randint(1, 3))]
        if i in anecdote_cited:
            authors[0] = "jim gray"
        venue = gen.choice(_VENUES)
        year = 1990 + (i % 14)
        refs = _citations(rng, i, max_refs, popularity)
        if plant_anecdotes and i not in anecdote_cited:
            # Funnel extra citations onto the famous papers.
            for famous in anecdote_cited:
                if rng.random() < 0.25 and famous not in refs:
                    refs.append(famous)
        author_xml = "".join(f"<author>{a}</author>" for a in authors)
        cite_xml = "".join(
            f'<cite xlink="paper{t}">{gen.title(2, 4)}</cite>' for t in refs
        )
        abstract = gen.text_block(20, 60)
        body = "".join(
            f"<section name=\"{gen.title(1, 3)}\">{gen.text_block(15, 50)}</section>"
            for _ in range(gen.randint(1, 3))
        )
        sources.append(
            f'<article key="{venue}/{year}/{i}">'
            f"<title>{title}</title>"
            f"{author_xml}"
            f"<year>{year}</year>"
            f"<venue>{venue}</venue>"
            f"<abstract>{abstract}</abstract>"
            f"<body>{body}</body>"
            f"<references>{cite_xml}</references>"
            f"</article>"
        )

    graph = CollectionGraph()
    documents: List[Document] = []
    for i, source in enumerate(sources):
        document = parse_xml(source, doc_id=start_doc_id + i, uri=f"paper{i}")
        documents.append(document)
        graph.add_document(document)
    graph.finalize()
    return Corpus("dblp", graph, documents, planted, sources)


def save_corpus(corpus: Corpus, directory) -> List[str]:
    """Write a generated corpus as one ``.xml`` file per document.

    File names derive from each document's URI (``paper3`` →
    ``paper3.xml``), and inter-document XLink targets inside the serialized
    text are rewritten to the file names, so indexing the directory with
    the CLI (which uses relative file paths as URIs) re-resolves every
    citation edge exactly as the in-memory graph did.  Returns the written
    file names.
    """
    import re
    from pathlib import Path

    from ..xmlmodel.serialize import document_to_xml

    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    name_of = {}
    for document in corpus.documents:
        name = document.uri or f"doc{document.doc_id}"
        if not name.endswith(".xml"):
            name = f"{name}.xml"
        name_of[document.uri] = name

    link_pattern = re.compile(r'((?:xlink|href)=")([^"#]+)((?:#[^"]*)?")')

    def rewrite(match: re.Match) -> str:
        uri = match.group(2)
        return match.group(1) + name_of.get(uri, uri) + match.group(3)

    written: List[str] = []
    for document in corpus.documents:
        text = link_pattern.sub(rewrite, document_to_xml(document))
        name = name_of[document.uri]
        (target / name).write_text(text, encoding="utf-8")
        written.append(name)
    return written
