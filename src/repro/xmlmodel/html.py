"""Tolerant HTML front-end (paper Sections 1, 2.2).

XRANK "naturally generalizes a hyperlink based HTML search engine": an HTML
document is treated as a *single XML element* with the presentation tags
removed, only the root is an answer node, and ``<a href>`` links become
hyperlink edges.  With two levels (document contains keywords) the system
degenerates to exactly a PageRank-style HTML engine.

This module parses tag soup with the lenient tokenizer and flattens it:

* all character data outside ``<script>``/``<style>`` becomes value nodes
  directly under one root element, preserving global word positions so
  proximity still works within a document;
* every ``href`` (and ``src``-less ``<a>`` is ignored) is lifted into an
  ``xlink`` pseudo-element that :mod:`repro.xmlmodel.graph` resolves into a
  hyperlink edge — identical plumbing to XML XLinks;
* unclosed tags, mismatched nesting, and void elements are all forgiven.
"""

from __future__ import annotations

from typing import List

from ..text.tokenize import PositionCounter, words
from .dewey import DeweyId
from .nodes import Document, Element, ValueNode
from .tokens import TokenType, Tokenizer

#: Elements whose character data must never be indexed.
_SKIP_CONTENT = frozenset({"script", "style"})


class HTMLParser:
    """Parses one HTML document string into a flat :class:`Document`."""

    def parse(self, source: str, doc_id: int, uri: str = "") -> Document:
        """Parse one HTML string into a flat single-element document."""
        positions = PositionCounter()
        root = Element("html", DeweyId.root(doc_id))
        next_child = 0
        skip_depth = 0
        links: List[str] = []

        for token in Tokenizer(source, lenient=True).tokens():
            if token.type in (TokenType.COMMENT, TokenType.PI, TokenType.DOCTYPE):
                continue
            if token.type in (TokenType.START_TAG, TokenType.EMPTY_TAG):
                tag = token.value.lower()
                if tag in _SKIP_CONTENT and token.type == TokenType.START_TAG:
                    skip_depth += 1
                for name, value in token.attributes:
                    if name.lower() == "href" and value:
                        links.append(value)
                continue
            if token.type == TokenType.END_TAG:
                if token.value.lower() in _SKIP_CONTENT and skip_depth > 0:
                    skip_depth -= 1
                continue
            if token.type in (TokenType.TEXT, TokenType.CDATA):
                if skip_depth > 0:
                    continue
                text = token.value.strip()
                if not text:
                    continue
                dewey = root.dewey.child(next_child)
                next_child += 1
                root.append(ValueNode(dewey, text, positions.assign(words(text))))

        # Lift hyperlinks into xlink pseudo-elements so the graph layer can
        # resolve them exactly like XML XLinks.
        for target in links:
            dewey = root.dewey.child(next_child)
            next_child += 1
            link = Element("xlink", dewey, from_attribute=True)
            link.append(ValueNode(dewey.child(0), target, ()))
            root.append(link)

        return Document(
            doc_id, root, uri=uri, is_html=True, word_count=positions.position
        )


def parse_html(source: str, doc_id: int = 0, uri: str = "") -> Document:
    """Convenience wrapper: parse one HTML string into a flat document."""
    return HTMLParser().parse(source, doc_id, uri)
