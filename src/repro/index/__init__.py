"""The XRANK index family: Naive-ID, Naive-Rank, DIL, RDIL and HDIL
(paper Sections 4.1-4.4), plus the shared build pipeline."""

from .base import KeywordIndex, SpaceReport
from .builder import IndexBuilder
from .dil import DILIndex
from .hdil import HDILIndex, decode_list_page
from .naive import (
    NaiveIdIndex,
    NaivePosting,
    NaiveRankIndex,
    expand_naive_postings,
)
from .postings import (
    Posting,
    PostingMap,
    expand_to_naive_postings,
    extract_direct_postings,
    rank_order,
)
from .rdil import RDILIndex

__all__ = [
    "DILIndex",
    "HDILIndex",
    "IndexBuilder",
    "KeywordIndex",
    "NaiveIdIndex",
    "NaivePosting",
    "NaiveRankIndex",
    "Posting",
    "PostingMap",
    "RDILIndex",
    "SpaceReport",
    "decode_list_page",
    "expand_naive_postings",
    "expand_to_naive_postings",
    "extract_direct_postings",
    "rank_order",
]
