"""The cluster's acceptance bar: sharded answers == single-node answers.

Bit-for-bit: same Dewey IDs, same float ranks, same order, same
snippets, at every shard count, through the real HTTP scatter-gather
path.
"""

from __future__ import annotations

import pytest

from repro.cluster.local import LocalCluster
from repro.cluster.verify import (
    default_cluster_corpus,
    single_node_oracle,
    verify_cluster_identity,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def corpus():
    return default_cluster_corpus(num_papers=18, seed=23)


@pytest.fixture(scope="module")
def oracle(corpus):
    specs, _queries = corpus
    return single_node_oracle(specs)


class TestIdentityBattery:
    def test_battery_shards_1_2_4(self):
        problems = verify_cluster_identity(
            shard_counts=(1, 2, 4), num_papers=18, m=8
        )
        assert problems == []

    def test_battery_with_replicas(self):
        problems = verify_cluster_identity(
            shard_counts=(2,), replicas=2, num_papers=14, m=6
        )
        assert problems == []


class TestIdentityDetails:
    def test_ranks_identical_to_float_bits(self, corpus, oracle):
        specs, queries = corpus
        with LocalCluster(specs, num_shards=3) as cluster:
            for query in queries[:3]:
                expected = oracle.search(query, m=10, kind="hdil").to_dict()
                actual = cluster.search(query, m=10, kind="hdil").to_dict()
                assert [h["rank"] for h in actual["results"]] == [
                    h["rank"] for h in expected["results"]
                ]
                assert actual["results"] == expected["results"]

    def test_or_mode_and_offset_identical(self, corpus, oracle):
        specs, queries = corpus
        with LocalCluster(specs, num_shards=3) as cluster:
            query = queries[0]
            for options in (
                dict(m=8, mode="or"),
                dict(m=5, offset=4),
                dict(m=5, offset=4, mode="or"),
            ):
                expected = oracle.search(query, **options).to_dict()
                actual = cluster.search(query, **options).to_dict()
                assert actual["results"] == expected["results"], options

    def test_fault_free_cluster_never_degrades(self, corpus):
        specs, queries = corpus
        with LocalCluster(specs, num_shards=2) as cluster:
            for query in queries:
                response = cluster.search(query, m=5)
                assert response.degraded is False
                assert response.missing_shards == []

    def test_independent_engines_replicas_identical(self, corpus, oracle):
        # Replica bring-up via snapshot round-trip must not change answers.
        specs, queries = corpus
        with LocalCluster(
            specs, num_shards=2, replicas=2, independent_engines=True
        ) as cluster:
            query = queries[0]
            expected = oracle.search(query, m=8).to_dict()["results"]
            assert (
                cluster.search(query, m=8).to_dict()["results"] == expected
            )
