"""tf-idf element scoring — the paper's alternative ranking hook.

Section 4 opens by noting the index structures and query algorithms "are
applicable to other ways of ranking XML elements, such as those using text
tf-idf measures [29][33]", and the conclusion lists tf-idf as an extension.
This module provides that alternative scorer: instead of one global
ElemRank per element, each posting carries a per-(element, keyword) tf-idf
weight.

The weight is the classic log-scaled formulation over *elements as
documents*:

    tfidf(e, k) = (1 + ln tf(e, k)) * ln(1 + N_e / df(k))

where ``tf(e, k)`` counts the keyword's occurrences directly contained in
element ``e``, ``df(k)`` counts the elements directly containing ``k``, and
``N_e`` is the total element count.  Weights are normalized by the corpus
maximum into (0, 1] so that, exactly as with ElemRank, decay and proximity
(both <= 1) can only shrink a score — which keeps the RDIL Threshold
Algorithm's overestimate property intact with no changes to the query
processors.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from ..xmlmodel.graph import CollectionGraph

#: (element Dewey components, keyword) -> weight
TfIdfWeights = Dict[Tuple[Tuple[int, ...], str], float]


def compute_tfidf_weights(graph: CollectionGraph) -> TfIdfWeights:
    """Per-(element, keyword) normalized tf-idf weights for a collection."""
    if not graph.finalized:
        graph.finalize()

    term_frequencies: Dict[Tuple[Tuple[int, ...], str], int] = {}
    document_frequencies: Dict[str, int] = {}
    for element in graph.elements:
        seen_here = set()
        for word, _position in element.direct_words():
            key = (element.dewey.components, word)
            term_frequencies[key] = term_frequencies.get(key, 0) + 1
            if word not in seen_here:
                seen_here.add(word)
                document_frequencies[word] = document_frequencies.get(word, 0) + 1

    num_elements = max(1, len(graph.elements))
    weights: TfIdfWeights = {}
    maximum = 0.0
    for (components, word), tf in term_frequencies.items():
        df = document_frequencies[word]
        weight = (1.0 + math.log(tf)) * math.log(1.0 + num_elements / df)
        weights[(components, word)] = weight
        if weight > maximum:
            maximum = weight
    if maximum > 0:
        for key in weights:
            weights[key] /= maximum
    return weights
