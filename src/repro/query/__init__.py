"""Query processing: the Section 2.2 conjunctive result semantics, the DIL
single-pass merge (Figure 5), the RDIL Threshold-Algorithm loop (Figure 7),
the HDIL adaptive hybrid (Section 4.4.2), the naive baselines, and
answer-node post-processing."""

from .answer_nodes import AnswerNodeFilter, ancestor_context
from .dil_eval import DILEvaluator
from .disjunctive import DisjunctiveEvaluator, disjunctive_merge
from .hdil_eval import HDILEvaluator, HDILTrace
from .hits_rerank import build_base_set, hits_rerank
from .merge import conjunctive_merge
from .naive_eval import NaiveIdEvaluator, NaiveRankEvaluator
from .rdil_eval import ProbeLoopState, RankedProbeLoop, RDILEvaluator
from .results import QueryResult, ResultHeap, validate_query
from .streams import PostingStream, smallest_head_index
from .structured import PathFilter, parse_path_pattern

__all__ = [
    "AnswerNodeFilter",
    "DILEvaluator",
    "DisjunctiveEvaluator",
    "disjunctive_merge",
    "validate_query",
    "HDILEvaluator",
    "HDILTrace",
    "build_base_set",
    "hits_rerank",
    "NaiveIdEvaluator",
    "NaiveRankEvaluator",
    "PathFilter",
    "PostingStream",
    "ProbeLoopState",
    "QueryResult",
    "RDILEvaluator",
    "RankedProbeLoop",
    "ResultHeap",
    "ancestor_context",
    "parse_path_pattern",
    "conjunctive_merge",
    "smallest_head_index",
]
