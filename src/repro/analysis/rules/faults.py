"""Fault-discipline rule: fault sites must raise typed errors.

The chaos harness's invariant — every faulted query matches the oracle,
is flagged degraded, or fails with a typed :class:`~repro.errors.
ReproError` subclass — only holds if the layers that *raise* under fault
injection raise something a hardened caller can catch by type.  A
``raise RuntimeError(...)`` in the storage read path would sail past
``except FaultError`` in the circuit breaker and surface to clients as
an untyped 500, silently reclassifying an injected fault as a bug.

``fault-typed-errors`` therefore bans raising builtin exception types in
the fault-bearing packages (storage, service, build, faults, chaos).
Re-raising a caught builtin (``raise exc``) is out of scope — the rule
targets exceptions *originated* by this codebase.  Deliberate
exceptions (e.g. argument validation in dataclass ``__post_init__``)
carry a ``# repro: ignore[fault-typed-errors]`` suppression with a
justification.
"""

from __future__ import annotations

import ast
from typing import List

from ..linter import LintRule, Violation

#: Builtin exception types a fault-bearing layer must not originate.
_BANNED_TYPES = {
    "Exception",
    "BaseException",
    "RuntimeError",
    "OSError",
    "IOError",
    "ValueError",
    "KeyError",
    "TypeError",
    "ArithmeticError",
    "SystemError",
}


class FaultTypedErrorsRule(LintRule):
    rule_id = "fault-typed-errors"
    description = (
        "fault site raises a builtin exception instead of a typed "
        "ReproError subclass"
    )
    scopes = (
        "storage/",
        "service/",
        "build/",
        "cluster/",
        "durability/",
        "faults",
        "chaos",
    )

    def check(self, tree: ast.Module, source: str, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = _raised_type(node.exc)
            if name in _BANNED_TYPES:
                violations.append(
                    self.violation(
                        path,
                        node,
                        f"raises builtin {name}; fault-bearing layers must "
                        "raise a typed ReproError subclass (see "
                        "repro.errors) so hardened callers can catch it",
                    )
                )
        return violations


def _raised_type(exc: ast.expr) -> str:
    """The name of the exception type being raised, if statically known."""
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return ""
