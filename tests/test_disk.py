"""Unit tests for the simulated disk, buffer pool and I/O classification."""

import pytest

from repro.config import StorageParams
from repro.errors import PageError
from repro.storage.disk import BufferPool, SimulatedDisk


class TestBufferPool:
    def test_lru_eviction(self):
        pool = BufferPool(2)
        assert not pool.touch(1)
        assert not pool.touch(2)
        assert pool.touch(1)          # 1 is now most recent
        assert not pool.touch(3)      # evicts 2
        assert 2 not in pool
        assert 1 in pool and 3 in pool

    def test_capacity_validation(self):
        with pytest.raises(PageError):
            BufferPool(0)

    def test_evict_and_clear(self):
        pool = BufferPool(4)
        pool.touch(1)
        pool.evict(1)
        assert 1 not in pool
        pool.touch(2)
        pool.clear()
        assert len(pool) == 0


class TestAllocation:
    def test_allocate_and_read(self):
        disk = SimulatedDisk()
        pid = disk.allocate(b"hello")
        assert disk.read(pid) == b"hello"
        assert disk.num_pages == 1

    def test_write_overwrites(self):
        disk = SimulatedDisk()
        pid = disk.allocate(b"old")
        disk.write(pid, b"new")
        assert disk.read(pid) == b"new"

    def test_page_overflow_rejected(self):
        disk = SimulatedDisk(StorageParams(page_size=64))
        with pytest.raises(PageError):
            disk.allocate(b"x" * 65)
        pid = disk.allocate(b"ok")
        with pytest.raises(PageError):
            disk.write(pid, b"x" * 65)

    def test_bad_page_id(self):
        disk = SimulatedDisk()
        with pytest.raises(PageError):
            disk.read(0)
        with pytest.raises(PageError):
            disk.write(5, b"")

    def test_space_accounting(self):
        disk = SimulatedDisk(StorageParams(page_size=128))
        disk.allocate(b"x" * 100)
        disk.allocate(b"y" * 28)
        assert disk.bytes_used() == 128
        assert disk.bytes_allocated() == 256


class TestIOClassification:
    def make_disk(self, pages=32, pool=4):
        disk = SimulatedDisk(
            StorageParams(page_size=128, buffer_pool_pages=pool)
        )
        for i in range(pages):
            disk.allocate(bytes([i]) * 8)
        disk.reset_stats()
        disk.drop_cache()
        return disk

    def test_sequential_scan(self):
        disk = self.make_disk()
        for pid in range(10):
            disk.read(pid)
        stats = disk.stats
        assert stats.page_reads == 10
        assert stats.random_reads == 1   # only the first read seeks
        assert stats.sequential_reads == 9

    def test_interleaved_streams_stay_sequential(self):
        """A DIL-style merge alternating between two lists reads each list
        sequentially; per-stream tracking must classify it that way."""
        disk = self.make_disk()
        for offset in range(8):
            disk.read(offset)          # stream A: pages 0..7
            disk.read(16 + offset)     # stream B: pages 16..23
        stats = disk.stats
        assert stats.random_reads == 2  # one seek per stream
        assert stats.sequential_reads == 14

    def test_random_probes_classified_random(self):
        disk = self.make_disk()
        for pid in (20, 3, 17, 9, 28):
            disk.read(pid)
        assert disk.stats.random_reads == 5
        assert disk.stats.sequential_reads == 0

    def test_cache_hits_are_free(self):
        disk = self.make_disk(pool=8)
        disk.read(1)
        disk.read(1)
        assert disk.stats.page_reads == 1
        assert disk.stats.cache_hits == 1

    def test_drop_cache_forces_rereads(self):
        disk = self.make_disk(pool=8)
        disk.read(1)
        disk.drop_cache()
        disk.read(1)
        assert disk.stats.page_reads == 2

    def test_cost_model(self):
        params = StorageParams(seek_cost_ms=10.0, transfer_cost_ms=1.0)
        disk = SimulatedDisk(params)
        for i in range(4):
            disk.allocate(b"x")
        disk.reset_stats()
        disk.drop_cache()
        for pid in range(4):   # 1 random + 3 sequential
            disk.read(pid)
        assert disk.stats.cost_ms(params) == pytest.approx(4 * 1.0 + 1 * 10.0)

    def test_stats_snapshot_and_delta(self):
        disk = self.make_disk()
        disk.read(0)
        before = disk.stats.snapshot()
        disk.read(10)
        delta = disk.stats.delta_since(before)
        assert delta.page_reads == 1
        assert delta.random_reads == 1

    def test_stats_addition(self):
        disk = self.make_disk()
        disk.read(0)
        total = disk.stats + disk.stats
        assert total.page_reads == 2 * disk.stats.page_reads


class TestFreePageManagement:
    def make_disk(self, pages=10):
        disk = SimulatedDisk(StorageParams(page_size=64))
        for i in range(pages):
            disk.allocate(bytes([65 + i]))
        return disk

    def test_free_and_reuse(self):
        disk = self.make_disk()
        disk.free(3)
        assert disk.num_free_pages == 1
        reused = disk.allocate(b"new")
        assert reused == 3
        assert disk.read(3) == b"new"
        assert disk.num_free_pages == 0

    def test_double_free_rejected(self):
        disk = self.make_disk()
        disk.free(2)
        with pytest.raises(PageError):
            disk.free(2)

    def test_free_evicts_from_pool(self):
        disk = self.make_disk()
        disk.read(4)
        disk.free(4)
        disk.allocate(b"x")  # page 4 again
        disk.reset_stats()
        disk.read(4)
        assert disk.stats.page_reads == 1  # not a stale cache hit

    def test_allocate_run_reuses_consecutive_gap(self):
        disk = self.make_disk(pages=12)
        for page_id in (4, 5, 6, 7):
            disk.free(page_id)
        ids = disk.allocate_run([b"a", b"b", b"c"])
        assert ids == [4, 5, 6]
        assert disk.num_free_pages == 1

    def test_allocate_run_skips_fragmented_free_list(self):
        disk = self.make_disk(pages=12)
        for page_id in (2, 4, 6):  # no consecutive run of 2
            disk.free(page_id)
        ids = disk.allocate_run([b"a", b"b"])
        assert ids == [12, 13]  # file grew instead

    def test_allocate_run_empty(self):
        disk = self.make_disk()
        assert disk.allocate_run([]) == []


class TestInPlaceMerge:
    def test_incremental_merge_reuses_pages(self):
        from repro.index.builder import IndexBuilder
        from repro.index.incremental import IncrementalDILIndex
        from repro.xmlmodel.graph import CollectionGraph
        from repro.xmlmodel.parser import parse_xml

        graph = CollectionGraph()
        for i in range(8):
            graph.add_document(
                parse_xml(f"<d><p>words shared text {i}</p></d>", doc_id=i)
            )
        graph.finalize()
        builder = IndexBuilder(graph)
        index = IncrementalDILIndex()
        index.build(builder.direct_postings)
        pages_before = index.main.disk.num_pages

        new_doc = parse_xml("<d><p>late words</p></d>", doc_id=50)
        index.add_documents([new_doc], reference=builder.elemranks)
        index.merge()
        # The rebuild reuses freed pages: growth stays below a full copy.
        assert index.main.disk.num_pages < 2 * pages_before
