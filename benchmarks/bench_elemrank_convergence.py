"""Section 3.2: ElemRank computation cost and convergence.

The paper reports convergence (threshold 2e-5, d1=.35, d2=.25, d3=.25)
within 10 minutes on the full 143 MB DBLP and 5 minutes on the 113 MB XMark
on 2003 hardware, and that varying d1/d2/d3 barely changes convergence
time.  At our corpus scale the absolute numbers are milliseconds; the
assertions capture the claims that transfer: convergence happens, iteration
counts are moderate, and the d-sweep changes them only mildly.
"""

import pytest

from repro.bench.experiments import run_convergence
from repro.config import ElemRankParams
from repro.ranking.elemrank import ElemRankVariant, compute_elemrank

D_SETTINGS = [
    (0.35, 0.25, 0.25),  # the paper's setting
    (0.55, 0.15, 0.15),
    (0.15, 0.35, 0.35),
]


@pytest.mark.parametrize("corpus_name", ["dblp", "xmark"])
def test_elemrank_paper_params(benchmark, suite, corpus_name):
    graph = suite.corpora[corpus_name].corpus.graph

    def run():
        return compute_elemrank(graph, ElemRankParams())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.converged
    benchmark.extra_info["iterations"] = result.iterations
    benchmark.extra_info["elements"] = len(result.scores)


@pytest.mark.parametrize("variant", list(ElemRankVariant))
def test_elemrank_variants(benchmark, suite, variant):
    graph = suite.dblp.corpus.graph

    def run():
        return compute_elemrank(graph, variant=variant)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.converged
    benchmark.extra_info["iterations"] = result.iterations


def test_convergence_d_sweep(benchmark, suite, capsys):
    rows, text = benchmark.pedantic(
        lambda: run_convergence(suite, d_settings=D_SETTINGS),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n" + text)
    assert all(row.converged for row in rows)
    # "varying d1, d2, d3 ... does not have a significant effect on
    # algorithm convergence time"
    for corpus in ("dblp", "xmark"):
        iteration_counts = [r.iterations for r in rows if r.corpus == corpus]
        assert max(iteration_counts) <= 3 * min(iteration_counts)
