"""``repro stress``: seeded concurrency storms under the race detector.

The static ``guarded-by`` lint (:mod:`repro.analysis.rules.guards`)
proves what the source says; this harness checks what real interleavings
do.  Each scenario instruments live objects — service caches, metrics,
the circuit breaker, the cluster coordinator — with the per-field access
hooks from :mod:`repro.analysis.races`, wraps their guard locks in
traced proxies, and hammers them from several threads.  Any field access
whose lockset goes empty without a happens-before edge to the conflicting
access is a finding, reported with both access sites.

Determinism: every thread runs a *pre-planned* operation sequence drawn
from a :class:`random.Random` seeded by ``(seed, scenario, thread)``, so
the work done is a pure function of the seed.  The canonical report
(:meth:`StressReport.to_json`) deliberately excludes everything the OS
scheduler can perturb — access totals, failover counts, latencies — so
two clean runs at the same seed are **bit-for-bit identical**, which is
what the CI ``race-smoke`` job diffs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence

from .analysis.locktrace import LockTracer
from .analysis.races import RaceDetector, deinstrument, instrument

#: Queries the storms draw from — all hit the stress corpus below.
_QUERIES = (
    "xql language",
    "ranked retrieval",
    "element trees",
    "inverted indexes",
    "pattern matching",
    "keyword search",
)

#: Small corpus with known co-occurrences; shared by both storms so the
#: cluster scenario shards something the service scenario also serves.
_CORPUS = [
    (
        "<paper><title>XQL and Proximal Nodes</title><body>"
        "<section>the XQL query language extends pattern matching</section>"
        "<section>ranked retrieval over XML element trees</section>"
        "</body></paper>",
        "paper0.xml",
    ),
    (
        "<survey><title>A Survey of XML Query Languages</title>"
        "<chapter>the XQL language and its pattern operators</chapter>"
        "<chapter>ranked keyword search needs inverted indexes</chapter>"
        "</survey>",
        "survey.xml",
    ),
    (
        "<thesis><title>Indexing Semistructured Data</title>"
        "<chapter>inverted lists keyed by element identifiers</chapter>"
        "<chapter>query evaluation over ranked inverted lists</chapter>"
        "</thesis>",
        "thesis.xml",
    ),
    (
        "<notes><note>the query language workshop paper on XQL</note>"
        "<note>proximity ranking and element retrieval</note></notes>",
        "notes.xml",
    ),
    (
        "<tutorial><part>documents decompose into element trees</part>"
        "<part>keyword queries return ranked elements</part>"
        "<part>the XQL language integrates structure and keyword search"
        "</part></tutorial>",
        "tutorial.xml",
    ),
    (
        "<glossary><entry>a node of an XML document tree</entry>"
        "<entry>ordering query results by relevance</entry>"
        "<entry>a formal notation such as a query language</entry>"
        "</glossary>",
        "glossary.xml",
    ),
]


@dataclass
class ScenarioResult:
    """One storm's outcome, reduced to its deterministic facts."""

    name: str
    threads: int
    operations: int                 # planned, not observed
    watched_fields: List[str] = field(default_factory=list)
    races: List[Dict[str, object]] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    lock_cycles: List[List[str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.races or self.errors or self.lock_cycles)

    def to_dict(self) -> Dict[str, object]:
        """Planned facts and findings only — nothing scheduler-dependent."""
        return {
            "name": self.name,
            "threads": self.threads,
            "operations": self.operations,
            "watched_fields": list(self.watched_fields),
            "races": list(self.races),
            "errors": list(self.errors),
            "lock_cycles": [list(c) for c in self.lock_cycles],
            "clean": self.clean,
        }


@dataclass
class StressReport:
    """Every scenario's result for one ``repro stress`` invocation."""

    seed: int
    scenarios: List[ScenarioResult] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(s.clean for s in self.scenarios)

    def to_dict(self) -> Dict[str, object]:
        """The canonical report payload (see :meth:`to_json`)."""
        return {
            "seed": self.seed,
            "clean": self.clean,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON: bit-for-bit stable across clean same-seed runs."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def describe(self) -> str:
        """Human-readable per-scenario summary with every finding."""
        lines = [f"stress seed={self.seed}: " + ("clean" if self.clean else "RACES")]
        for scenario in self.scenarios:
            status = "clean" if scenario.clean else "FAILED"
            lines.append(
                f"  {scenario.name}: {status} "
                f"({scenario.threads} threads, {scenario.operations} ops, "
                f"{len(scenario.watched_fields)} watched fields)"
            )
            for race in scenario.races:
                first, second = race["first"], race["second"]
                lines.append(
                    f"    race on {race['object']}.{race['attr']}: "
                    f"{first['op']} at {first['site']} vs "
                    f"{second['op']} at {second['site']}"
                )
            for error in scenario.errors:
                lines.append(f"    error: {error}")
            for cycle in scenario.lock_cycles:
                lines.append("    lock cycle: " + " -> ".join(cycle))
        return "\n".join(lines)


def _finish(
    name: str,
    threads: int,
    operations: int,
    watched: Sequence[str],
    detector: RaceDetector,
    tracer: LockTracer,
    errors: List[str],
) -> ScenarioResult:
    """Fold a finished storm's detector/tracer state into a result."""
    race_report = detector.report()
    lock_report = tracer.report()
    return ScenarioResult(
        name=name,
        threads=threads,
        operations=operations,
        watched_fields=sorted(watched),
        races=[r.to_dict() for r in race_report.races],
        errors=sorted(errors),
        lock_cycles=[list(c) for c in lock_report.cycles],
    )


def _run_threads(detector: RaceDetector, bodies, errors: List[str]) -> None:
    """Start one detector-wired thread per body; join them all."""

    def guarded(body):
        def runner() -> None:
            try:
                body()
            except Exception as exc:  # surfaced in the report, not lost
                errors.append(f"{type(exc).__name__}: {exc}")

        return runner

    threads = [detector.thread(target=guarded(body)) for body in bodies]
    for thread in threads:
        thread.start()
    for thread in threads:
        detector.join(thread)


# -- scenario: component storm ------------------------------------------------------


def _storm_components(seed: int, ops: int, threads: int) -> ScenarioResult:
    """Hammer the lock-protected leaf components directly.

    The cache, breaker, metrics and I/O counters are the classes whose
    ``guarded by:`` annotations the static lint enforces; this is the
    highest-access-density check that the annotations are also *true*.
    """
    from .service.breaker import CircuitBreaker
    from .service.cache import GenerationalLRU
    from .service.metrics import ServiceMetrics
    from .storage.iostats import IOStats

    detector = RaceDetector()
    tracer = LockTracer(race_detector=detector)
    errors: List[str] = []

    cache = GenerationalLRU(16, name="stress")
    breaker = CircuitBreaker(threshold=3, cooldown=8)
    metrics = ServiceMetrics(window=64)
    iostats = IOStats()

    watched: List[str] = []
    for obj, label in (
        (cache, "cache"),
        (breaker, "breaker"),
        (metrics, "metrics"),
        (iostats, "iostats"),
    ):
        watched.extend(f"{label}.{f}" for f in instrument(obj, detector, label, tracer))

    def body(index: int):
        rng = Random(f"{seed}:components:{index}")

        def run() -> None:
            for step in range(ops):
                choice = rng.random()
                key = f"k{rng.randrange(8)}"
                kind = ("dil", "rdil", "hdil")[rng.randrange(3)]
                if choice < 0.35:
                    cache.get(key)
                    cache.put(key, step)
                elif choice < 0.5:
                    cache.bump()
                elif choice < 0.7:
                    if breaker.allow(kind):
                        if rng.random() < 0.4:
                            breaker.record_failure(kind)
                        else:
                            breaker.record_success(kind)
                elif choice < 0.9:
                    metrics.record_search(
                        latency_ms=rng.random(),
                        cached=rng.random() < 0.5,
                        degraded=False,
                    )
                    iostats.record_read(sequential=rng.random() < 0.5)
                else:
                    cache.stats()
                    metrics.snapshot()
                    iostats.as_dict()

        return run

    _run_threads(detector, [body(i) for i in range(threads)], errors)
    # Post-storm reads from the main thread go through the same locked
    # accessors the storm used — they are part of the check, not exempt.
    cache.stats()
    breaker.state()
    metrics.snapshot()
    iostats.snapshot()
    result = _finish(
        "components", threads, ops * threads, watched, detector, tracer, errors
    )
    for obj in (cache, breaker, metrics, iostats):
        deinstrument(obj)
    return result


# -- scenario: service storm --------------------------------------------------------


def _storm_service(seed: int, ops: int, threads: int) -> ScenarioResult:
    """Concurrent searches and adds against a live :class:`XRankService`."""
    from .engine import XRankEngine
    from .service.core import XRankService

    from .obs import Tracer, validate_trace

    detector = RaceDetector()
    tracer = LockTracer(race_detector=detector)
    errors: List[str] = []

    engine = XRankEngine()
    for source, uri in _CORPUS:
        engine.add_xml(source, uri=uri)
    engine.build(kinds=("dil", "hdil"))
    service = XRankService(
        engine, result_cache_size=32, list_cache_size=32, max_concurrent=8,
        # Trace every stormed query: the span machinery runs under the
        # same detector scrutiny, and every captured tree is held to the
        # structural invariants below.
        tracer=Tracer(sample="always", buffer_size=512),
    )
    service.lock = tracer.wrap(service.lock, "service.lock")

    watched: List[str] = []
    for obj, label in (
        (service.result_cache, "service.results"),
        (service.list_cache, "service.lists"),
        (service.metrics, "service.metrics"),
        (service.breaker, "service.breaker"),
    ):
        watched.extend(f"{label}.{f}" for f in instrument(obj, detector, label, tracer))

    def reader(index: int):
        rng = Random(f"{seed}:service-read:{index}")

        def run() -> None:
            for _ in range(ops):
                service.search(_QUERIES[rng.randrange(len(_QUERIES))], m=4)
                if rng.random() < 0.3:
                    service.stats()

        return run

    def writer():
        rng = Random(f"{seed}:service-write")

        def run() -> None:
            for step in range(max(1, ops // 3)):
                service.add_xml(
                    f"<doc><title>late {step}</title><body>the xql language "
                    f"arrives ranked {rng.randrange(100)}</body></doc>",
                    uri=f"late{step}.xml",
                )

        return run

    bodies = [reader(i) for i in range(threads - 1)] + [writer()]
    _run_threads(detector, bodies, errors)
    service.stats()
    service.healthz()
    for root in service.tracer.buffer.traces():
        for problem in validate_trace(root):
            errors.append(f"trace invariant: {problem}")
    result = _finish(
        "service", threads, ops * (threads - 1) + max(1, ops // 3),
        watched, detector, tracer, errors,
    )
    for obj in (
        service.result_cache,
        service.list_cache,
        service.metrics,
        service.breaker,
    ):
        deinstrument(obj)
    return result


# -- scenario: cluster storm --------------------------------------------------------


def _storm_cluster(seed: int, ops: int, threads: int) -> ScenarioResult:
    """Scatter-gather queries through a live sharded cluster with one
    replica down, so the coordinator's failover path runs instrumented."""
    from .cluster.local import LocalCluster

    detector = RaceDetector()
    tracer = LockTracer(race_detector=detector)
    errors: List[str] = []

    cluster = LocalCluster.from_sources(
        [(source, uri) for source, uri in _CORPUS],
        num_shards=2,
        replicas=2,
        kinds=("dil", "hdil"),
    )
    cluster.start()
    try:
        coordinator = cluster.coordinator
        watched = [
            f"coordinator.{f}"
            for f in instrument(coordinator, detector, "coordinator", tracer)
        ]
        watched.extend(
            f"coordinator.breaker.{f}"
            for f in instrument(
                coordinator.breaker, detector, "coordinator.breaker", tracer
            )
        )
        # One replica dies before the storm: every query against shard 0
        # exercises breaker trips + failover under full instrumentation.
        cluster.kill(0, 0)

        def body(index: int):
            rng = Random(f"{seed}:cluster:{index}")

            def run() -> None:
                for _ in range(ops):
                    cluster.search(
                        _QUERIES[rng.randrange(len(_QUERIES))], m=4
                    )
                    if rng.random() < 0.25:
                        coordinator.stats()
                        coordinator.healthz()

            return run

        _run_threads(detector, [body(i) for i in range(threads)], errors)
        coordinator.stats()
        result = _finish(
            "cluster", threads, ops * threads, watched, detector, tracer, errors
        )
        deinstrument(coordinator)
        deinstrument(coordinator.breaker)
        return result
    finally:
        cluster.stop()


# -- driver -------------------------------------------------------------------------

#: Scenario name -> (runner, default ops per thread, threads).
_SCENARIOS = {
    "components": (_storm_components, 120, 4),
    "service": (_storm_service, 6, 4),
    "cluster": (_storm_cluster, 4, 3),
}


def run_stress(
    seed: int = 0,
    scenarios: Optional[Sequence[str]] = None,
    ops_scale: float = 1.0,
) -> StressReport:
    """Run the storms; a non-``clean`` report means a detected race.

    Args:
        seed: drives every thread's operation plan.
        scenarios: subset of ``components`` / ``service`` / ``cluster``
            (default: all three, in that order).
        ops_scale: multiplies each scenario's per-thread operation count
            (the strict-gate smoke uses < 1 to stay fast).
    """
    names = list(scenarios) if scenarios else list(_SCENARIOS)
    unknown = [n for n in names if n not in _SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown stress scenario(s) {unknown}; "
            f"pick from {sorted(_SCENARIOS)}"
        )
    report = StressReport(seed=seed)
    for name in names:
        runner, ops, threads = _SCENARIOS[name]
        scaled = max(1, int(ops * ops_scale))
        report.scenarios.append(runner(seed, scaled, threads))
    return report
