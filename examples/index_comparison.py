#!/usr/bin/env python3
"""Compare the five index structures on one corpus (mini Table 1 + Fig 10/11).

Builds Naive-ID, Naive-Rank, DIL, RDIL and HDIL over the same DBLP-like
corpus, prints their space footprints, then runs a correlated and an
uncorrelated query against each and reports the simulated cold-cache I/O
cost — a laptop-scale rehearsal of the paper's evaluation.

Run:  python examples/index_comparison.py
"""

from repro.bench.harness import APPROACHES, BENCH_STORAGE, IndexedCorpus
from repro.datasets import PlantedKeywords, generate_dblp


def human(num_bytes) -> str:
    if num_bytes is None:
        return "N/A"
    if num_bytes >= 1 << 20:
        return f"{num_bytes / (1 << 20):.1f}MB"
    return f"{num_bytes / (1 << 10):.1f}KB"


def main() -> None:
    plan = PlantedKeywords.default()
    plan.correlated_rate = 0.5
    plan.independent_rate = 0.7
    print("generating corpus and building all five indexes...")
    indexed = IndexedCorpus(
        generate_dblp(num_papers=900, seed=5, planted=plan),
        storage=BENCH_STORAGE,
    )

    print(f"\n{'approach':<12}{'inverted lists':>16}{'aux index':>12}")
    for approach in APPROACHES:
        report = indexed.indexes[approach].space_report()
        print(
            f"{approach:<12}{human(report.inverted_list_bytes):>16}"
            f"{human(report.index_bytes):>12}"
        )

    correlated = plan.correlated_groups[0][:2]
    uncorrelated = plan.independent_keywords[:2]
    print(f"\n{'approach':<12}{'correlated kw':>16}{'uncorrelated kw':>18}   (simulated ms, cold cache)")
    for approach in APPROACHES:
        high = indexed.measure(approach, correlated, m=10)
        low = indexed.measure(approach, uncorrelated, m=10)
        print(f"{approach:<12}{high.cost_ms:>16.1f}{low.cost_ms:>18.1f}")

    print(
        "\nExpected shapes (paper Figures 10-11): RDIL/HDIL win the "
        "correlated query;\nDIL wins the uncorrelated one; the naive "
        "variants trail their counterparts."
    )


if __name__ == "__main__":
    main()
