"""Unit and property tests for the disk-resident B+-tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import StorageParams
from repro.errors import BTreeError
from repro.storage.btree import BTree, SharedPageWriter
from repro.storage.disk import SimulatedDisk
from repro.xmlmodel.dewey import DeweyId


def make_disk(page_size=256, pool=16):
    return SimulatedDisk(StorageParams(page_size=page_size, buffer_pool_pages=pool))


def random_keys(rng, count, fanout=12, depth=4):
    keys = set()
    while len(keys) < count:
        length = rng.randint(1, depth)
        keys.add(tuple(rng.randrange(fanout) for _ in range(length)))
    return sorted(DeweyId(k) for k in keys)


def build_tree(keys, disk=None):
    disk = disk or make_disk()
    entries = [(k, str(k).encode()) for k in keys]
    return BTree.bulk_load(disk, entries), entries


class TestBulkLoad:
    def test_empty_tree(self):
        tree, _ = build_tree([])
        assert tree.num_entries == 0
        assert tree.ceiling(DeweyId((1,))) is None
        assert tree.predecessor(DeweyId((1,))) is None
        assert tree.longest_common_prefix(DeweyId((1, 2))) == 0

    def test_single_entry(self):
        key = DeweyId.parse("3.1.4")
        tree, _ = build_tree([key])
        assert tree.height == 1
        assert tree.ceiling(DeweyId((0,)))[0] == key
        assert tree.predecessor(DeweyId((9,)))[0] == key

    def test_multi_level(self):
        rng = random.Random(0)
        keys = random_keys(rng, 800)
        tree, _ = build_tree(keys)
        assert tree.height >= 2
        assert tree.num_entries == 800

    def test_unsorted_rejected(self):
        disk = make_disk()
        entries = [(DeweyId((2,)), b"x"), (DeweyId((1,)), b"y")]
        with pytest.raises(BTreeError):
            BTree.bulk_load(disk, entries)

    def test_duplicates_rejected(self):
        disk = make_disk()
        entries = [(DeweyId((1,)), b"x"), (DeweyId((1,)), b"y")]
        with pytest.raises(BTreeError):
            BTree.bulk_load(disk, entries)

    def test_oversized_entry_rejected(self):
        disk = make_disk(page_size=64)
        with pytest.raises(BTreeError):
            BTree.bulk_load(disk, [(DeweyId((1,)), b"x" * 100)])


class TestQueries:
    @pytest.fixture(scope="class")
    def loaded(self):
        rng = random.Random(7)
        keys = random_keys(rng, 1500)
        tree, entries = build_tree(keys)
        return tree, keys

    def test_ceiling_matches_bruteforce(self, loaded):
        tree, keys = loaded
        rng = random.Random(1)
        for _ in range(200):
            probe = DeweyId(tuple(rng.randrange(14) for _ in range(rng.randint(1, 4))))
            expected = min((k for k in keys if k >= probe), default=None)
            got = tree.ceiling(probe)
            assert (got[0] if got else None) == expected

    def test_strictly_greater(self, loaded):
        tree, keys = loaded
        for key in keys[:50]:
            expected = min((k for k in keys if k > key), default=None)
            got = tree.strictly_greater(key)
            assert (got[0] if got else None) == expected

    def test_predecessor_matches_bruteforce(self, loaded):
        tree, keys = loaded
        rng = random.Random(2)
        for _ in range(200):
            probe = DeweyId(tuple(rng.randrange(14) for _ in range(rng.randint(1, 4))))
            expected = max((k for k in keys if k < probe), default=None)
            got = tree.predecessor(probe)
            assert (got[0] if got else None) == expected

    def test_longest_common_prefix_matches_bruteforce(self, loaded):
        tree, keys = loaded
        rng = random.Random(3)
        for _ in range(200):
            probe = DeweyId(tuple(rng.randrange(14) for _ in range(rng.randint(1, 5))))
            expected = max(probe.common_prefix_length(k) for k in keys)
            assert tree.longest_common_prefix(probe) == expected

    def test_range_scan(self, loaded):
        tree, keys = loaded
        low, high = keys[100], keys[200]
        got = [k for k, _ in tree.range_scan(low, high)]
        assert got == [k for k in keys if low <= k < high]

    def test_range_scan_open_ended(self, loaded):
        tree, keys = loaded
        low = keys[len(keys) - 5]
        got = [k for k, _ in tree.range_scan(low)]
        assert got == keys[-5:]

    def test_scan_subtree(self, loaded):
        tree, keys = loaded
        prefix = keys[50].prefix(1)
        got = [k for k, _ in tree.scan_subtree(prefix)]
        assert got == [k for k in keys if prefix.is_prefix_of(k)]

    def test_payloads_preserved(self, loaded):
        tree, keys = loaded
        key = keys[123]
        got = tree.ceiling(key)
        assert got == (key, str(key).encode())

    def test_probes_charge_random_io(self, loaded):
        tree, _ = loaded
        tree.disk.reset_stats()
        tree.disk.drop_cache()
        tree.ceiling(DeweyId((5, 5)))
        assert tree.disk.stats.random_reads >= 1


@settings(max_examples=30, deadline=None)
@given(st.sets(
    st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(0, 8)),
    min_size=1, max_size=120,
))
def test_property_btree_matches_sorted_list(key_tuples):
    keys = sorted(DeweyId(k) for k in key_tuples)
    tree, _ = build_tree(keys, make_disk(page_size=128))
    probe = keys[len(keys) // 2]
    ceiling = tree.ceiling(probe)
    assert ceiling is not None and ceiling[0] == probe
    lcp = tree.longest_common_prefix(probe)
    assert lcp == len(probe)
    assert [k for k, _ in tree.range_scan(keys[0])] == keys


class TestSharedPageWriter:
    def test_small_blobs_share_a_page(self):
        disk = make_disk(page_size=256)
        writer = SharedPageWriter(disk)
        first = writer.place(b"x" * 100)
        second = writer.place(b"y" * 100)
        third = writer.place(b"z" * 100)  # does not fit: new page
        assert first == second
        assert third != first

    def test_oversized_blob_rejected(self):
        disk = make_disk(page_size=128)
        writer = SharedPageWriter(disk)
        with pytest.raises(BTreeError):
            writer.place(b"x" * 200)
