"""End-to-end chaos-harness tests (repro.chaos).

A tiny seeded fault storm over the full build → index → serve path.  The
subsystem's acceptance invariant is asserted directly: under injected
faults every answer is oracle-identical, flagged degraded, or a typed
error — never silently wrong — and the whole report is bit-for-bit
reproducible for a fixed seed.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import OUTCOMES, ChaosReport, run_chaos

#: One storm shared across the assertions below (building twice is the
#: expensive part; reproducibility gets its own second run).
_SCALE = dict(num_queries=10, num_papers=20, workers=2)


@pytest.fixture(scope="module")
def storm():
    return run_chaos(seed=1337, fault_rate=0.05, **_SCALE)


class TestChaosInvariant:
    def test_no_silent_wrong_answers(self, storm):
        assert storm.outcomes["mismatch"] == 0
        assert storm.outcomes["untyped_error"] == 0
        assert storm.violations == []
        assert storm.ok

    def test_every_query_classified(self, storm):
        assert set(storm.outcomes) == set(OUTCOMES)
        assert sum(storm.outcomes.values()) == storm.queries == 10

    def test_build_survived_injected_crash_and_corruption(self, storm):
        # The build plan fires one worker crash and one run-file
        # corruption; both must have been absorbed by per-shard retries.
        assert storm.build_faults["build.worker.crash"]["fires"] == 1
        assert storm.build_faults["build.runfile.corrupt"]["fires"] == 1
        assert storm.build_retries >= 2
        assert storm.documents == 20

    def test_storm_actually_fired_read_faults(self, storm):
        fired = sum(c["fires"] for c in storm.query_faults.values())
        assert fired > 0, "5% storm over 10 queries should fire something"

    def test_report_carries_io_accounting(self, storm):
        assert storm.io["page_reads"] > 0
        assert "read_errors" in storm.io
        assert "corrupt_pages" in storm.io


class TestChaosReproducibility:
    def test_same_seed_bit_identical_report(self, storm):
        again = run_chaos(seed=1337, fault_rate=0.05, **_SCALE)
        assert again.to_json() == storm.to_json()

    def test_different_seed_diverges(self, storm):
        other = run_chaos(seed=7, fault_rate=0.05, **_SCALE)
        assert other.ok
        assert other.to_json() != storm.to_json()

    def test_report_json_round_trips(self, storm):
        decoded = json.loads(storm.to_json())
        assert decoded["seed"] == 1337
        assert decoded["ok"] is True
        assert decoded["fault_rate"] == 0.05


class TestFaultFreeStorm:
    def test_zero_rate_matches_oracle_exactly(self):
        calm = run_chaos(seed=1337, fault_rate=0.0, **_SCALE)
        assert calm.ok
        assert calm.outcomes["match"] == calm.queries
        assert calm.outcomes["degraded"] == 0
        assert calm.outcomes["typed_error"] == 0


class TestChaosReportShape:
    def test_default_report_is_ok_and_serializable(self):
        report = ChaosReport(seed=1)
        decoded = json.loads(report.to_json())
        assert decoded["queries"] == 0
        assert decoded["violations"] == []
