"""RDIL query processing (paper Section 4.3.2, Figure 7).

Round-robin over the query keywords' rank-ordered inverted lists; for each
entry read, a chain of B+-tree probes computes the *longest common prefix*
of its Dewey ID that contains every query keyword — the deepest candidate
ancestor along that branch.  The candidate is then *qualified* with B+-tree
subtree range scans plus the same Dewey-stack merge DIL uses, which ignores
the posLists and ranks of sub-elements that already contain all keywords
(Figure 7 line 20) and so enforces the Section 2.2 result semantics.

Termination follows the Threshold Algorithm [Fagin et al., PODS 2001]: the
threshold is the sum of the ElemRanks at the current scan position of every
list.  Decay and proximity are bounded by 1, so the threshold *overestimates*
the rank of any unseen result; once the heap holds m results at or above the
threshold, the top-m is provably final.

The loop is factored as :class:`RankedProbeLoop` so HDIL can drive the same
machinery over its truncated rank-ordered heads with a progress monitor
attached (Section 4.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..config import RankingParams
from ..errors import QueryError
from ..index.postings import Posting
from ..index.rdil import RDILIndex
from ..obs.profile import active_profile
from ..storage.btree import BTree
from ..xmlmodel.dewey import DeweyId
from .merge import conjunctive_merge
from .results import QueryResult, ResultHeap, validate_query
from .streams import PostingStream

#: Turns a B+-tree (key, payload) pair into a Posting.  RDIL trees store the
#: payload without the key; HDIL's external leaves store full records.
TreeEntryDecoder = Callable[[DeweyId, bytes], Posting]


@dataclass
class ProbeLoopState:
    """Progress snapshot handed to the HDIL monitor after every step."""

    entries_read: int = 0
    probes: int = 0
    threshold: float = float("inf")
    results_above_threshold: int = 0
    heap: Optional[ResultHeap] = None


class RankedProbeLoop:
    """The Figure 7 loop over arbitrary ranked streams + Dewey B+-trees."""

    def __init__(
        self,
        streams: List[PostingStream],
        btrees: List[BTree],
        entry_decoder: TreeEntryDecoder,
        params: RankingParams,
        deleted_docs: Set[int],
        truncated_streams: bool = False,
        weights: Optional[List[float]] = None,
    ):
        if len(streams) != len(btrees):
            raise QueryError("one B+-tree per keyword stream is required")
        if weights is not None and len(weights) != len(streams):
            raise QueryError("one weight per keyword stream is required")
        self.streams = streams
        self.btrees = btrees
        self.entry_decoder = entry_decoder
        self.params = params
        self.deleted_docs = deleted_docs
        self.n = len(streams)
        self.weights = list(weights) if weights is not None else [1.0] * self.n
        # When a stream is a truncated rank-ordered *head* (HDIL), entries
        # beyond its end still exist in the full list; their ElemRank is
        # bounded by the last head entry, so the threshold term floors at
        # that value instead of dropping to zero on exhaustion.
        self.truncated_streams = truncated_streams
        # ElemRank at the current scan position of each list (TA threshold).
        self.current_ranks = [
            (stream.peek().elemrank if not stream.eof else 0.0)
            for stream in streams
        ]
        self.state = ProbeLoopState()
        self._processed: Set[Tuple[int, ...]] = set()
        # Captured once: the loop is constructed inside the profiled
        # query, so per-entry/per-probe accounting is one None check.
        self._profile = active_profile()

    def run(
        self,
        m: int,
        monitor: Optional[Callable[[ProbeLoopState], bool]] = None,
        exhaustion_is_complete: bool = True,
        deadline=None,
    ) -> Tuple[List[QueryResult], bool]:
        """Run to TA-completion, stream exhaustion, or monitor abort.

        Returns ``(results, completed)`` — ``completed`` is False when the
        monitor aborted or the (truncated) streams ran dry before the TA
        stop condition held, meaning the caller must fall back to DIL.

        ``deadline`` is an optional ``poll() -> bool`` object checked once
        per loop step.  Expiry reports ``completed=True`` even though the
        top-m is only partial: the caller must *not* fall back to a full
        DIL scan (that would blow the budget further) but return what was
        found, flagged degraded via the deadline's ``expired`` state.
        """
        heap = ResultHeap(m)
        self.state.heap = heap
        robin = 0
        while True:
            if deadline is not None and deadline.poll():
                return heap.results(), True
            if self._stop_condition(heap, m):
                return heap.results(), True
            source = self._next_live_stream(robin)
            if source is None:
                # Every stream is exhausted.
                if exhaustion_is_complete:
                    return heap.results(), True
                return heap.results(), False
            robin = source + 1
            posting = self.streams[source].next()
            self.state.entries_read += 1
            if self._profile is not None:
                self._profile.rdil_entries_read += 1
            if not self.streams[source].eof:
                self.current_ranks[source] = self.streams[source].peek().elemrank
            elif self.truncated_streams:
                self.current_ranks[source] = posting.elemrank
            else:
                self.current_ranks[source] = 0.0
            self._probe(posting, heap, deadline)
            self._update_state(heap)
            if monitor is not None and not monitor(self.state):
                return heap.results(), False

    # -- loop pieces ----------------------------------------------------------------

    def _next_live_stream(self, start: int) -> Optional[int]:
        for offset in range(self.n):
            index = (start + offset) % self.n
            if not self.streams[index].eof:
                return index
        return None

    def _stop_condition(self, heap: ResultHeap, m: int) -> bool:
        threshold = self._threshold()
        self.state.threshold = threshold
        if not self.truncated_streams and all(s.eof for s in self.streams):
            return True  # full lists exhausted: everything has been seen
        return heap.full and heap.kth_rank() >= threshold

    def _threshold(self) -> float:
        return sum(w * r for w, r in zip(self.weights, self.current_ranks))

    def _update_state(self, heap: ResultHeap) -> None:
        threshold = self._threshold()
        self.state.threshold = threshold
        self.state.results_above_threshold = sum(
            1 for result in heap.results() if result.rank >= threshold
        )

    def _probe(self, posting: Posting, heap: ResultHeap, deadline=None) -> None:
        """Compute the lcp candidate for one entry and qualify it."""
        lcp = posting.dewey
        for j in range(self.n):
            self.state.probes += 1
            if self._profile is not None:
                self._profile.rdil_probes += 1
            shared = self.btrees[j].longest_common_prefix(lcp)
            if shared == 0:
                return
            if shared < len(lcp):
                lcp = lcp.prefix(shared)
        if lcp.components in self._processed:
            return
        self._processed.add(lcp.components)
        result = self._qualify(lcp, deadline)
        if result is not None:
            heap.add(result)

    def _qualify(self, lcp: DeweyId, deadline=None) -> Optional[QueryResult]:
        """Check whether ``lcp`` is a genuine Section 2.2 result.

        Range-scans every keyword's subtree under ``lcp`` and replays the
        Dewey-stack merge, which excludes occurrences under sub-elements
        that already contain all keywords.  Returns the result for ``lcp``
        itself, or None when the candidate fails (e.g. all of one keyword's
        occurrences sit inside a more specific result).

        Qualification is unbounded in the candidate's subtree size (a
        root-level lcp can cover a whole document), so the deadline is
        forwarded into the merge — on expiry the candidate is abandoned,
        which only loses results the caller already reports as partial.
        """
        subtree_streams: List[PostingStream] = []
        for j in range(self.n):
            postings = [
                self.entry_decoder(key, payload)
                for key, payload in self.btrees[j].scan_subtree(lcp)
            ]
            postings = [
                p for p in postings if p.dewey.doc_id not in self.deleted_docs
            ]
            if not postings:
                return None
            subtree_streams.append(PostingStream.from_postings(postings))
        for result in conjunctive_merge(
            subtree_streams, self.params, self.weights, deadline=deadline
        ):
            if result.dewey == lcp:
                return result
        return None


class RDILEvaluator:
    """Evaluates conjunctive keyword queries against a :class:`RDILIndex`."""

    def __init__(self, index: RDILIndex, params: Optional[RankingParams] = None):
        self.index = index
        self.params = params or RankingParams()

    def evaluate(
        self,
        keywords: Sequence[str],
        m: int = 10,
        weights: Optional[Sequence[float]] = None,
        deadline=None,
        span=None,
    ) -> List[QueryResult]:
        """Top-m conjunctive results via TA over ranked lists.

        ``span`` is accepted for interface parity with the other
        evaluators; RDIL's I/O shows up on the caller's evaluate span.
        """
        validate_query(keywords, m, weights)
        self.index._require_built()

        if any(not self.index.has_keyword(k) for k in keywords):
            return []
        if len(keywords) == 1:
            scale = weights[0] if weights else 1.0
            return self._evaluate_single(keywords[0], m, scale, deadline)

        streams = [
            PostingStream.from_cursor(
                self.index.ranked_cursor(keyword), self.index.deleted_docs
            )
            for keyword in keywords
        ]
        btrees = [self.index.btree(keyword) for keyword in keywords]
        loop = RankedProbeLoop(
            streams,
            btrees,
            entry_decoder=Posting.decode_payload,
            params=self.params,
            deleted_docs=self.index.deleted_docs,
            weights=list(weights) if weights else None,
        )
        results, _completed = loop.run(
            m, exhaustion_is_complete=True, deadline=deadline
        )
        return results

    def _evaluate_single(
        self, keyword: str, m: int, scale: float = 1.0, deadline=None
    ) -> List[QueryResult]:
        """Top-m of a one-keyword query: the first m live ranked entries."""
        stream = PostingStream.from_cursor(
            self.index.ranked_cursor(keyword), self.index.deleted_docs
        )
        results: List[QueryResult] = []
        while not stream.eof and len(results) < m:
            if deadline is not None and deadline.poll():
                break
            posting = stream.next()
            results.append(
                QueryResult(
                    rank=posting.elemrank * scale,
                    dewey=posting.dewey,
                    keyword_ranks=(posting.elemrank,),
                )
            )
        return results
