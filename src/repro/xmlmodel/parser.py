"""Recursive XML parser producing Dewey-numbered :class:`Document` trees.

The parser walks the token stream from :mod:`repro.xmlmodel.tokens` and
builds the node model of :mod:`repro.xmlmodel.nodes`, performing three jobs
the paper's index builder depends on:

1. **Dewey numbering** — every child of an element (attribute
   pseudo-elements first, then sub-elements and value nodes in document
   order) receives the next sibling position, and its Dewey ID is the
   parent's ID extended by that position (paper Figure 3).

2. **Attribute lifting** — each attribute becomes a child element whose tag
   is the attribute name and whose single value node holds the attribute
   value (Section 2.1: "we treat attributes as though they are
   sub-elements").

3. **Global word positions** — all text (tag names, attribute names and
   values, character data) is tokenized, and each word occurrence is given a
   document-wide position, the basis for the smallest-window proximity
   measure.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import XMLParseError
from ..text.tokenize import PositionCounter, words
from .dewey import DeweyId
from .nodes import Document, Element, ValueNode
from .tokens import Token, TokenType, Tokenizer

#: Attribute names whose *values* are reference targets, not searchable text.
#: They are still lifted into pseudo-elements (the graph layer reads them)
#: but their values are not tokenized into the index.
HYPERLINK_ATTRIBUTES = frozenset(
    {"ref", "idref", "idrefs", "xlink", "href", "xlink:href"}
)


class XMLParser:
    """Parses one XML document string into a :class:`Document`.

    Args:
        index_tag_names: when True (default) element tag names and attribute
            names contribute word occurrences, per the paper's data model in
            which names are values too.
        keep_whitespace_values: when False (default) pure-whitespace text is
            dropped instead of becoming empty value nodes.
    """

    def __init__(
        self,
        index_tag_names: bool = True,
        keep_whitespace_values: bool = False,
    ):
        self.index_tag_names = index_tag_names
        self.keep_whitespace_values = keep_whitespace_values

    def parse(self, source: str, doc_id: int, uri: str = "") -> Document:
        """Parse ``source`` and return a Dewey-numbered document."""
        tokens = list(Tokenizer(source).tokens())
        return self._build(tokens, doc_id, uri)

    # -- tree construction ------------------------------------------------------

    def _build(self, tokens: List[Token], doc_id: int, uri: str) -> Document:
        positions = PositionCounter()
        root: Optional[Element] = None
        stack: List[Element] = []
        # Per-open-element counter of the next sibling position.
        child_counters: List[int] = []

        def next_child_dewey() -> DeweyId:
            dewey = stack[-1].dewey.child(child_counters[-1])
            child_counters[-1] += 1
            return dewey

        def open_element(token: Token) -> Element:
            if stack:
                dewey = next_child_dewey()
            else:
                dewey = DeweyId.root(doc_id)
            tag_words = (
                positions.assign(words(token.value)) if self.index_tag_names else []
            )
            element = Element(token.value, dewey, tag_words=tag_words)
            if stack:
                stack[-1].append(element)
            stack.append(element)
            child_counters.append(0)
            # Attributes occupy the first sibling positions.
            for name, value in token.attributes:
                attr_dewey = next_child_dewey()
                name_words = (
                    positions.assign(words(name)) if self.index_tag_names else []
                )
                attr_element = Element(
                    name, attr_dewey, tag_words=name_words, from_attribute=True
                )
                element.append(attr_element)
                if name.lower() in HYPERLINK_ATTRIBUTES:
                    value_words: List = []
                else:
                    value_words = positions.assign(words(value))
                attr_element.append(
                    ValueNode(attr_dewey.child(0), value, value_words)
                )
            return element

        def add_text(token: Token) -> None:
            if not stack:
                if token.value.strip():
                    raise XMLParseError(
                        "character data outside the root element", line=token.line
                    )
                return
            if not token.value.strip() and not self.keep_whitespace_values:
                return
            dewey = next_child_dewey()
            value_words = positions.assign(words(token.value))
            stack[-1].append(ValueNode(dewey, token.value.strip(), value_words))

        for token in tokens:
            if token.type in (TokenType.COMMENT, TokenType.PI, TokenType.DOCTYPE):
                continue
            if token.type in (TokenType.TEXT, TokenType.CDATA):
                add_text(token)
                continue
            if token.type in (TokenType.START_TAG, TokenType.EMPTY_TAG):
                if root is not None and not stack:
                    raise XMLParseError(
                        "multiple root elements", line=token.line
                    )
                element = open_element(token)
                if root is None:
                    root = element
                if token.type == TokenType.EMPTY_TAG:
                    stack.pop()
                    child_counters.pop()
                continue
            if token.type == TokenType.END_TAG:
                if not stack:
                    raise XMLParseError(
                        f"unexpected end tag </{token.value}>", line=token.line
                    )
                open_tag = stack[-1].tag
                if open_tag != token.value:
                    raise XMLParseError(
                        f"mismatched end tag </{token.value}>, "
                        f"expected </{open_tag}>",
                        line=token.line,
                    )
                stack.pop()
                child_counters.pop()

        if root is None:
            raise XMLParseError("document has no root element")
        if stack:
            raise XMLParseError(f"unclosed element <{stack[-1].tag}>")
        return Document(
            doc_id, root, uri=uri, is_html=False, word_count=positions.position
        )


def parse_xml(
    source: str,
    doc_id: int = 0,
    uri: str = "",
    index_tag_names: bool = True,
) -> Document:
    """Convenience wrapper: parse one XML string into a :class:`Document`."""
    parser = XMLParser(index_tag_names=index_tag_names)
    return parser.parse(source, doc_id, uri)
