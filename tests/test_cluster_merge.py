"""Unit tests for the scatter-gather merge and the global-stats exchange."""

from __future__ import annotations

import pytest

from repro.build.shard import DocumentSpec
from repro.cluster.merge import dewey_sort_key, hit_order_key, merge_hits
from repro.cluster.stats import (
    GlobalStats,
    build_full_graph,
    compute_global_stats,
)
from repro.cluster.worker import build_shard_engine, specs_from_sources
from repro.engine import XRankEngine
from repro.errors import StatsExchangeError


def hit(rank, dewey):
    return {"rank": rank, "dewey": dewey}


class TestCanonicalOrder:
    def test_higher_rank_first(self):
        hits = [hit(0.1, "0.1"), hit(0.9, "1.1"), hit(0.5, "2.1")]
        merged = merge_hits([hits], m=3)
        assert [h["dewey"] for h in merged] == ["1.1", "2.1", "0.1"]

    def test_rank_ties_break_by_dewey_ascending(self):
        hits = [hit(0.5, "2.1"), hit(0.5, "0.3.1"), hit(0.5, "0.10")]
        merged = merge_hits([hits], m=3)
        assert [h["dewey"] for h in merged] == ["0.3.1", "0.10", "2.1"]

    def test_dewey_key_is_numeric_not_lexicographic(self):
        assert dewey_sort_key("0.10") > dewey_sort_key("0.9")
        assert dewey_sort_key("2") > dewey_sort_key("1.99.99")

    def test_order_key_total_on_distinct_deweys(self):
        a, b = hit(0.5, "1.2"), hit(0.5, "1.2.1")
        assert hit_order_key(a) != hit_order_key(b)


class TestMerge:
    def test_merge_interleaves_across_shards(self):
        shard_a = [hit(0.9, "0.1"), hit(0.3, "2.1")]
        shard_b = [hit(0.7, "1.1"), hit(0.1, "3.1")]
        merged = merge_hits([shard_a, shard_b], m=4)
        assert [h["dewey"] for h in merged] == ["0.1", "1.1", "2.1", "3.1"]

    def test_m_truncates_globally(self):
        shard_a = [hit(0.9, "0.1"), hit(0.8, "0.2")]
        shard_b = [hit(0.85, "1.1")]
        merged = merge_hits([shard_a, shard_b], m=2)
        assert [h["dewey"] for h in merged] == ["0.1", "1.1"]

    def test_offset_applies_after_global_sort(self):
        shard_a = [hit(0.9, "0.1"), hit(0.5, "0.2")]
        shard_b = [hit(0.7, "1.1")]
        merged = merge_hits([shard_a, shard_b], m=2, offset=1)
        assert [h["dewey"] for h in merged] == ["1.1", "0.2"]

    def test_duplicate_deweys_keep_first_occurrence(self):
        merged = merge_hits([[hit(0.9, "0.1")], [hit(0.9, "0.1")]], m=5)
        assert len(merged) == 1

    def test_empty_shards_are_fine(self):
        assert merge_hits([[], [hit(0.5, "0.1")], []], m=3) == [
            hit(0.5, "0.1")
        ]
        assert merge_hits([], m=3) == []


CORPUS = [
    "<doc><p>alpha beta shared</p></doc>",
    "<doc><p>gamma shared words</p></doc>",
    "<doc><p>alpha delta tail</p></doc>",
    "<doc><p>epsilon closing shared</p></doc>",
]


class TestGlobalStats:
    def test_stats_cover_every_element(self):
        specs = specs_from_sources(CORPUS)
        graph = build_full_graph(specs)
        stats = compute_global_stats(graph)
        assert stats.num_documents == len(CORPUS)
        assert stats.num_elements == len(stats.elemranks)
        stats.require_coverage(graph)  # must not raise

    def test_stats_match_single_node_elemranks(self):
        specs = specs_from_sources(CORPUS)
        stats = compute_global_stats(build_full_graph(specs))
        engine = XRankEngine()
        for spec in specs:
            engine.add_xml(spec.source, uri=spec.uri)
        engine.build(kinds=("dil",))
        for dewey, score in engine.builder.elemranks.items():
            assert stats.elemranks[str(dewey)] == score

    def test_document_frequencies(self):
        specs = specs_from_sources(CORPUS)
        stats = compute_global_stats(build_full_graph(specs))
        assert stats.document_frequencies["shared"] == 3
        assert stats.document_frequencies["alpha"] == 2
        assert stats.document_frequencies["epsilon"] == 1

    def test_json_roundtrip_is_exact(self, tmp_path):
        specs = specs_from_sources(CORPUS)
        stats = compute_global_stats(build_full_graph(specs))
        path = tmp_path / "stats.json"
        stats.save(path)
        restored = GlobalStats.load(path)
        assert restored.elemranks == stats.elemranks  # float repr: exact
        assert restored.to_dict() == stats.to_dict()

    def test_partial_stats_fail_loudly(self):
        specs = specs_from_sources(CORPUS)
        stats = compute_global_stats(build_full_graph(specs[:2]))
        with pytest.raises(StatsExchangeError):
            build_shard_engine(specs[2:], stats, kinds=("dil",))

    def test_shard_engine_postings_carry_global_scores(self):
        specs = specs_from_sources(CORPUS)
        stats = compute_global_stats(build_full_graph(specs))
        shard = build_shard_engine(specs[2:], stats, kinds=("dil",))
        single = XRankEngine()
        for spec in specs:
            single.add_xml(spec.source, uri=spec.uri)
        single.build(kinds=("dil",))
        # The shard's ElemRanks for its documents equal the single-node
        # values — not what a shard-local power iteration would produce.
        for dewey, score in shard.builder.elemranks.items():
            assert single.builder.elemranks[dewey] == score
