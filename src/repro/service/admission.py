"""Admission control: bounded request queue and per-query deadlines.

Graceful degradation under overload needs two mechanisms working
together.  The :class:`AdmissionController` bounds *how many* requests
are in flight — a fixed number execute concurrently, a bounded queue
waits, and everything beyond that is rejected immediately with a 503
rather than piling up unbounded latency.  The :class:`Deadline` bounds
*how long* one request may run: it is threaded down into the DIL merge,
the RDIL threshold-algorithm loop and the HDIL hybrid, each of which
polls it cooperatively and returns the partial top-k found so far when
time runs out.  The service marks such responses ``degraded=True`` —
a fast, slightly worse answer instead of a blocked worker.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Optional

from ..errors import ServiceError, ServiceOverloadedError


class Deadline:
    """A cooperative, latching deadline.

    Evaluator loops call :meth:`poll` once per unit of work; the first
    call at or past the expiry time latches :attr:`expired` to True and
    every later call is a cheap attribute read of the latch.  A deadline
    constructed with ``None`` never expires (the no-limit default).
    """

    __slots__ = ("expires_at", "expired", "_clock")

    def __init__(self, timeout_s: Optional[float] = None, clock=time.monotonic):
        self._clock = clock
        self.expires_at = None if timeout_s is None else clock() + timeout_s
        self.expired = False

    @classmethod
    def after_ms(cls, timeout_ms: Optional[float]) -> "Deadline":
        """Deadline ``timeout_ms`` milliseconds from now (None = never)."""
        if timeout_ms is None:
            return cls(None)
        return cls(timeout_ms / 1000.0)

    def poll(self) -> bool:
        """Check (and latch) expiry; True once the deadline has passed."""
        if self.expired:
            return True
        if self.expires_at is not None and self._clock() >= self.expires_at:
            self.expired = True
        return self.expired

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds left, clamped at 0; None for a limitless deadline."""
        if self.expires_at is None:
            return None
        return max(0.0, (self.expires_at - self._clock()) * 1000.0)


class AdmissionController:
    """Bounded concurrency gate with a bounded wait queue.

    ``max_concurrent`` requests hold execution slots at once; up to
    ``max_queue`` more block waiting for a slot.  A request arriving when
    the queue is full — or still waiting when ``queue_timeout_s`` runs
    out — is rejected with :class:`ServiceOverloadedError`, which the
    HTTP layer maps to 503.
    """

    def __init__(
        self,
        max_concurrent: int = 8,
        max_queue: int = 32,
        queue_timeout_s: Optional[float] = 10.0,
    ):
        if max_concurrent < 1:
            raise ServiceError("max_concurrent must be at least 1")
        if max_queue < 0:
            raise ServiceError("max_queue cannot be negative")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout_s = queue_timeout_s
        self._cond = threading.Condition()
        self.rejected = 0  # guarded by: self._cond
        self._active = 0  # guarded by: self._cond
        self._queued = 0  # guarded by: self._cond

    def acquire(self) -> None:
        """Take an execution slot, waiting in the bounded queue if needed.

        Raises:
            ServiceOverloadedError: queue full, or slot wait timed out.
        """
        with self._cond:
            if self._active < self.max_concurrent:
                self._active += 1
                return
            if self._queued >= self.max_queue:
                self.rejected += 1
                raise ServiceOverloadedError(
                    f"admission queue full ({self._queued} waiting, "
                    f"{self._active} active)"
                )
            self._queued += 1
            try:
                granted = self._cond.wait_for(
                    lambda: self._active < self.max_concurrent,
                    timeout=self.queue_timeout_s,
                )
            finally:
                self._queued -= 1
            if not granted:
                self.rejected += 1
                raise ServiceOverloadedError(
                    f"timed out after {self.queue_timeout_s}s waiting for "
                    "an execution slot"
                )
            self._active += 1

    def release(self) -> None:
        """Return an execution slot and wake one queued request."""
        with self._cond:
            self._active -= 1
            self._cond.notify()

    @contextmanager
    def slot(self):
        """``with admission.slot(): ...`` — acquire/release bracket."""
        self.acquire()
        try:
            yield self
        finally:
            self.release()

    def depth(self) -> dict:
        """Queue-depth snapshot for metrics: active / queued / rejected."""
        with self._cond:
            return {
                "active": self._active,
                "queued": self._queued,
                "rejected": self.rejected,
            }
