"""Fault-injection overhead and resilience benchmark.

Drives the hardened serving stack — checksummed storage, in-place read
retries, circuit breaker, degraded fallbacks — over the same seeded DBLP
workload at increasing storage fault rates (0%, 1%, 5%) and measures
what hardening costs and what it buys:

* **cost** — at a 0% fault rate, the fault machinery must be nearly
  free.  The gate compares *simulated I/O cost* (a pure function of the
  I/O counters, so deterministic) between a hardened engine and a
  checksums-off baseline: overhead must stay under 3% and the retry
  counter must be exactly zero.
* **benefit** — at 1% and 5% rates, the success rate (answers returned,
  whether full-fidelity or flagged degraded) is recorded alongside the
  typed-error rate; every failure must be a typed error, never an
  untyped exception.

Wall-clock p95 latency is recorded per rate for context but is *not*
gated — only deterministic quantities gate CI.  Results go to
``BENCH_faults.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import pytest

from repro.config import StorageParams, XRankConfig
from repro.datasets.dblp import generate_dblp
from repro.datasets.workloads import random_queries
from repro.engine import XRankEngine
from repro.errors import ReproError
from repro.faults import READ_SITES, SITE_READ_SLOW, FaultPlan
from repro.service.core import XRankService

SEED = 1337
NUM_PAPERS = 80
NUM_QUERIES = 60
TINY_PAPERS = 24
TINY_QUERIES = 12
FAULT_RATES = (0.0, 0.01, 0.05)
KIND = "hdil"
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: Maximum simulated-I/O overhead of the fault machinery at a 0% rate.
MAX_ZERO_RATE_OVERHEAD = 0.03


def _build_engine(num_papers: int, hardened: bool) -> XRankEngine:
    """A fresh engine per rate — bit flips persist, so no sharing."""
    corpus = generate_dblp(num_papers=num_papers, seed=SEED % 101)
    config = XRankConfig(storage=StorageParams(checksums=hardened))
    engine = XRankEngine(config=config)
    engine.build(kinds=[KIND, "dil"], corpus=list(corpus.sources))
    return engine


def _drive(
    engine: XRankEngine,
    num_queries: int,
    fault_rate: float,
) -> Dict[str, object]:
    """Replay the seeded workload at one fault rate; return one row."""
    plan = FaultPlan.uniform(
        SEED, fault_rate, sites=READ_SITES + (SITE_READ_SLOW,)
    )
    engine.set_fault_plan(plan)
    service = XRankService(
        engine,
        kinds=[KIND, "dil"],
        default_kind=KIND,
        result_cache_size=0,
        list_cache_size=0,
    )
    workload = random_queries(
        engine.graph,
        num_keywords=2,
        num_queries=num_queries,
        seed=SEED ^ 0x5EED,
    )
    answered = degraded = typed_errors = 0
    for keywords in workload:
        try:
            response = service.search(" ".join(keywords), m=10, kind=KIND)
        except ReproError:
            typed_errors += 1
            continue
        answered += 1
        if response.degraded:
            degraded += 1

    total = len(workload)
    io = service.io_totals()
    latency = service.metrics.latency_percentiles()
    return {
        "fault_rate": fault_rate,
        "queries": total,
        "answered": answered,
        "degraded": degraded,
        "typed_errors": typed_errors,
        "success_rate": round(answered / total, 4) if total else None,
        "sim_cost_ms": round(io.cost_ms(engine.config.storage), 4),
        "io": io.as_dict(),
        "fault_fires": {
            site: counts["fires"] for site, counts in plan.counters().items()
        },
        "breaker_trips": service.breaker.trips,
        # Informational only — wall clock is not deterministic.
        "p95_ms": round(latency["p95_ms"], 4),
    }


def run_benchmark(
    num_papers: int = NUM_PAPERS, num_queries: int = NUM_QUERIES
) -> Dict[str, object]:
    """All fault rates plus the checksums-off baseline; return the report."""
    baseline = _drive(
        _build_engine(num_papers, hardened=False), num_queries, 0.0
    )
    rates = [
        _drive(_build_engine(num_papers, hardened=True), num_queries, rate)
        for rate in FAULT_RATES
    ]
    zero = rates[0]
    base_cost = baseline["sim_cost_ms"]
    overhead = (
        (zero["sim_cost_ms"] - base_cost) / base_cost if base_cost else 0.0
    )
    return {
        "benchmark": "faults",
        "seed": SEED,
        "corpus": {"kind": "dblp", "papers": num_papers, "index": KIND},
        "queries_per_rate": num_queries,
        "baseline_unhardened": baseline,
        "rates": rates,
        "zero_rate_overhead": round(overhead, 6),
        "gates": {
            "max_zero_rate_overhead": MAX_ZERO_RATE_OVERHEAD,
            "overhead_ok": overhead < MAX_ZERO_RATE_OVERHEAD,
            "no_retries_at_zero_rate": zero["io"]["retries"] == 0,
        },
    }


def check_report(report: Dict[str, object]) -> List[str]:
    """Acceptance failures for a report; empty means the benchmark passed."""
    failures: List[str] = []
    if not report["gates"]["overhead_ok"]:
        failures.append(
            f"fault machinery costs {report['zero_rate_overhead']:.2%} "
            f"simulated I/O at 0% faults (max {MAX_ZERO_RATE_OVERHEAD:.0%})"
        )
    if not report["gates"]["no_retries_at_zero_rate"]:
        failures.append("retries charged with no faults injected")
    for row in report["rates"]:
        if row["answered"] + row["typed_errors"] != row["queries"]:
            failures.append(
                f"rate {row['fault_rate']}: "
                f"{row['queries'] - row['answered'] - row['typed_errors']} "
                "queries ended in untyped errors"
            )
    return failures


def _summary_line(report: Dict[str, object]) -> str:
    parts = [
        f"{row['fault_rate']:.0%}: {row['success_rate']:.0%} ok "
        f"(p95 {row['p95_ms']:.2f}ms)"
        for row in report["rates"]
    ]
    return (
        f"faults: overhead {report['zero_rate_overhead']:.2%} at 0% | "
        + " | ".join(parts)
    )


def test_fault_overhead_and_resilience(capsys):
    report = run_benchmark(num_papers=TINY_PAPERS, num_queries=TINY_QUERIES)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print(f"\n{_summary_line(report)} -> {OUTPUT.name}")

    failures = check_report(report)
    assert not failures, (failures, report)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point for CI's bench-smoke lane."""
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help=f"smoke-test scale ({TINY_PAPERS} papers, "
        f"{TINY_QUERIES} queries/rate)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT, help="report destination"
    )
    args = parser.parse_args(argv)

    papers = TINY_PAPERS if args.tiny else NUM_PAPERS
    queries = TINY_QUERIES if args.tiny else NUM_QUERIES
    report = run_benchmark(num_papers=papers, num_queries=queries)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(_summary_line(report))
    print(f"wrote {args.out}")
    failures = check_report(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
