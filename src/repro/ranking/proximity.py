"""Keyword proximity: the smallest-window measure (paper Section 2.3.2.2).

The overall rank multiplies the summed keyword ranks by a proximity factor
``p(v, k1..kn)`` in [0, 1]: 1 when the keywords "occur right next to each
other" and approaching 0 as they spread apart.  The paper's default is
"inversely proportional to the size of the smallest text window in v1 that
contains relevant occurrences of all the query keywords", which we realize
as::

    p = n / w

where ``n`` is the number of query keywords and ``w`` the length (in words,
inclusive) of the smallest window containing at least one occurrence of each
keyword.  Adjacent keywords give ``w = n`` hence ``p = 1``; a single keyword
always gives 1; an element missing some keyword gives 0.

The smallest-window computation is the classic k-sorted-lists sweep: walk a
min-heap of per-keyword position cursors, tracking the current max; each pop
proposes a window [min, max].  Runs in O(total positions x log n).
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence


def smallest_window(position_lists: Sequence[Sequence[int]]) -> Optional[int]:
    """Length of the smallest window covering one position from each list.

    Args:
        position_lists: one sorted list of word positions per keyword.

    Returns:
        The inclusive window length in words, or ``None`` when some list is
        empty (no covering window exists).
    """
    if not position_lists:
        return None
    if any(not positions for positions in position_lists):
        return None
    if len(position_lists) == 1:
        return 1

    # Heap of (position, list_index, cursor); invariant: one entry per list.
    heap = [(positions[0], i, 0) for i, positions in enumerate(position_lists)]
    heapq.heapify(heap)
    current_max = max(position for position, _, _ in heap)
    best = current_max - heap[0][0] + 1
    while True:
        position, list_index, cursor = heapq.heappop(heap)
        window = current_max - position + 1
        if window < best:
            best = window
        next_cursor = cursor + 1
        positions = position_lists[list_index]
        if next_cursor >= len(positions):
            return best
        next_position = positions[next_cursor]
        if next_position > current_max:
            current_max = next_position
        heapq.heappush(heap, (next_position, list_index, next_cursor))


def proximity(position_lists: Sequence[Sequence[int]]) -> float:
    """The proximity factor ``p`` in [0, 1] for one result element."""
    n = len(position_lists)
    if n == 0:
        return 0.0
    window = smallest_window(position_lists)
    if window is None:
        return 0.0
    # Distinct keywords can share a position only if a word occurrence
    # matched several query keywords, which conjunctive distinct-keyword
    # queries exclude; guard anyway so p never exceeds 1.
    return min(1.0, n / window)
