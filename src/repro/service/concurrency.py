"""A writer-preference reader-writer lock for the serving layer.

``XRankEngine`` is plain single-threaded Python: two concurrent
``search()`` calls share cursor state on one simulated disk, and a
``search()`` racing an ``add_document()`` can observe half-built indexes.
The service therefore brackets every query in a *read* lock and every
corpus/index mutation in a *write* lock: any number of readers proceed
concurrently, writers are exclusive.

Writer preference — readers arriving while a writer waits queue behind
it — keeps update latency bounded under heavy query traffic (a steady
stream of readers can otherwise starve writers forever).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict

from ..errors import LockUsageError


class GuardedLock:
    """A named mutex for ``guarded by:``-annotated shared state.

    Behaviourally a ``threading.Lock``, plus a ``name`` the analysis
    tooling can report on: the lock-order tracer and the dynamic race
    detector wrap these proxies by name, so a deadlock cycle or a racing
    access says ``result_cache._lock`` instead of ``<unnamed lock #7>``.
    The ``raw-lock`` lint rule bans anonymous ``threading.Lock()`` in
    ``service/`` and ``cluster/`` in favour of this class.
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str = ""):
        self.name = name
        # The one sanctioned construction site for the primitive the
        # rest of service/ and cluster/ is banned from touching raw.
        self._lock = threading.Lock()  # repro: ignore[raw-lock] — GuardedLock is the wrapper

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._lock.acquire(blocking, timeout)

    def release(self) -> None:
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "GuardedLock":
        self._lock.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self._lock.release()

    def __repr__(self) -> str:
        return f"GuardedLock({self.name!r})"


class ReadWriteLock:
    """Many concurrent readers / one exclusive writer, writer preference.

    **Not reentrant.**  Writer preference makes same-thread re-acquisition
    a deadlock, not a convenience: a thread nesting ``acquire_read()``
    inside its own read section blocks forever as soon as a writer queues
    between the two acquisitions (the inner read waits for the writer,
    the writer waits for the outer read to drain), and a read->write
    upgrade waits for the thread's *own* read lock.  Both patterns raise
    :class:`~repro.errors.LockUsageError` immediately instead of hanging;
    structure code so each thread holds at most one side of the lock at a
    time (e.g. private ``_locked`` helpers called from one locked public
    entry point).
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0  # guarded by: self._cond
        # thread ident -> read-lock hold count, to detect re-entrancy.
        self._reader_idents: Dict[int, int] = {}  # guarded by: self._cond
        self._writer_active = False  # guarded by: self._cond
        self._writer_ident: int = -1  # guarded by: self._cond
        self._writers_waiting = 0  # guarded by: self._cond

    # -- read side -------------------------------------------------------------

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then enter.

        Raises:
            LockUsageError: this thread already holds the read or write
                side (re-entrancy would deadlock under writer preference).
        """
        ident = threading.get_ident()
        with self._cond:
            if self._reader_idents.get(ident):
                raise LockUsageError(
                    "nested acquire_read() on the same thread: deadlocks "
                    "whenever a writer queues between the two acquisitions"
                )
            if self._writer_active and self._writer_ident == ident:
                raise LockUsageError(
                    "acquire_read() while holding the write lock on the "
                    "same thread: the reader waits for its own writer"
                )
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self._reader_idents[ident] = self._reader_idents.get(ident, 0) + 1

    def release_read(self) -> None:
        """Drop this thread's read hold.

        Raises:
            LockUsageError: the calling thread does not hold the read
                lock — releasing someone else's hold would silently let a
                writer in on top of the real reader.
        """
        ident = threading.get_ident()
        with self._cond:
            if not self._reader_idents.get(ident):
                raise LockUsageError(
                    "release_read() by a thread that does not hold the "
                    "read lock"
                )
            self._readers -= 1
            count = self._reader_idents.get(ident, 0) - 1
            if count <= 0:
                self._reader_idents.pop(ident, None)
            else:
                self._reader_idents[ident] = count
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self):
        """``with lock.read(): ...`` — shared access."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    # -- write side ------------------------------------------------------------

    def acquire_write(self) -> None:
        """Block until all readers drain and no other writer holds the lock.

        Raises:
            LockUsageError: this thread already holds the read lock
                (upgrade deadlock) or the write lock (not reentrant).
        """
        ident = threading.get_ident()
        with self._cond:
            if self._reader_idents.get(ident):
                raise LockUsageError(
                    "read->write upgrade on the same thread: the writer "
                    "waits for this thread's own read lock to drain"
                )
            if self._writer_active and self._writer_ident == ident:
                raise LockUsageError(
                    "nested acquire_write() on the same thread: the lock "
                    "is not reentrant"
                )
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self._writer_ident = ident

    def release_write(self) -> None:
        """Drop the write hold.

        Raises:
            LockUsageError: the calling thread is not the active writer.
        """
        with self._cond:
            if not self._writer_active or self._writer_ident != threading.get_ident():
                raise LockUsageError(
                    "release_write() by a thread that does not hold the "
                    "write lock"
                )
            self._writer_active = False
            self._writer_ident = -1
            self._cond.notify_all()

    @contextmanager
    def write(self):
        """``with lock.write(): ...`` — exclusive access."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # -- introspection -----------------------------------------------------------

    def state(self) -> dict:
        """Snapshot for /stats: active readers, writer, waiting writers."""
        with self._cond:
            return {
                "active_readers": self._readers,
                "writer_active": self._writer_active,
                "writers_waiting": self._writers_waiting,
            }
