"""Varying the number of requested results m (Section 5.4 text / [18]).

The paper: "the performance of DIL remains about the same because it always
scans the entire inverted lists.  The performance of RDIL, however,
decreases with an increasing query result size because RDIL has to scan
more of the inverted lists."
"""

import pytest

from repro.bench.experiments import run_vary_m
from repro.datasets.workloads import high_correlation_queries

M_VALUES = (1, 5, 10, 25, 50)


@pytest.mark.parametrize("m", M_VALUES)
@pytest.mark.parametrize("approach", ("dil", "rdil", "hdil"))
def test_query_vary_m(benchmark, suite, approach, m):
    query = high_correlation_queries(suite.planted, 2).queries[0]
    indexed = suite.dblp

    def run():
        return indexed.measure(approach, query, m=m)

    measurement = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["simulated_cost_ms"] = measurement.cost_ms


def test_vary_m_shape(benchmark, suite, capsys):
    table = benchmark.pedantic(
        lambda: run_vary_m(suite, m_values=M_VALUES), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + table.format())

    dil_costs = [p.values["dil"] for p in table.points]
    rdil_costs = [p.values["rdil"] for p in table.points]
    # DIL flat in m.
    assert max(dil_costs) <= 1.05 * min(dil_costs)
    # RDIL grows with m (weakly monotone, clearly higher at the top end).
    assert rdil_costs[-1] > 1.5 * rdil_costs[0]
    assert all(b >= a * 0.99 for a, b in zip(rdil_costs, rdil_costs[1:]))
