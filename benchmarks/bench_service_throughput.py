"""Multi-threaded load test against the in-process serving layer.

Drives :class:`repro.service.core.XRankService` (no HTTP — the point is
serving-layer overhead, not socket throughput) with a pool of client
threads replaying a fixed query workload over a generated DBLP corpus:

* **cold** phase — caches disabled, every query evaluated from the index;
* **warm** phase — result + posting-list caches enabled and primed, the
  same workload replayed;
* **deadline** phase — a zero-millisecond budget on a two-keyword query,
  which must come back ``degraded=True`` instead of raising.

Results (QPS, p50/p95/p99 latency, cache hit rate) are written to
``BENCH_service.json`` at the repository root.

Acceptance (asserted below): warm-cache QPS strictly exceeds cold-cache
QPS on the same workload, and the deadline-limited run degrades rather
than erroring.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro.datasets.dblp import generate_dblp
from repro.datasets.textgen import PlantedKeywords
from repro.engine import XRankEngine
from repro.service.core import XRankService

NUM_PAPERS = 150
NUM_THREADS = 4
REQUESTS_PER_THREAD = 40
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _build_engine() -> XRankEngine:
    planted = PlantedKeywords.default()
    planted.correlated_rate = 0.5
    planted.independent_rate = 0.7
    corpus = generate_dblp(num_papers=NUM_PAPERS, seed=11, planted=planted)
    engine = XRankEngine()
    for document in corpus.documents:
        engine.add_document(document)
    engine.build(kinds=["hdil"])
    return engine


def _workload(planted: PlantedKeywords) -> List[str]:
    """A small mixed workload: correlated pairs plus common singletons."""
    queries = [
        " ".join(group[:2]) for group in planted.correlated_groups[:3]
    ]
    queries += [group[0] for group in planted.correlated_groups[:2]]
    queries.append(planted.independent_keywords[0])
    return queries


def _drive(service: XRankService, queries: List[str]) -> Dict[str, float]:
    """Replay the workload from NUM_THREADS client threads; return stats."""
    errors: List[BaseException] = []
    barrier = threading.Barrier(NUM_THREADS)

    def client(worker: int) -> None:
        try:
            barrier.wait(timeout=30)
            for i in range(REQUESTS_PER_THREAD):
                query = queries[(worker + i) % len(queries)]
                response = service.search(query, m=10)
                assert isinstance(response.hits, list)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(w,)) for w in range(NUM_THREADS)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    elapsed = time.perf_counter() - started
    assert not errors, errors

    total = NUM_THREADS * REQUESTS_PER_THREAD
    latency = service.metrics.latency_percentiles()
    return {
        "requests": total,
        "elapsed_s": round(elapsed, 4),
        "qps": round(total / elapsed, 2),
        "p50_ms": round(latency["p50_ms"], 4),
        "p95_ms": round(latency["p95_ms"], 4),
        "p99_ms": round(latency["p99_ms"], 4),
        "result_cache_hit_rate": round(service.result_cache.hit_rate, 4),
        "list_cache_hit_rate": round(service.list_cache.hit_rate, 4),
    }


@pytest.fixture(scope="module")
def service_engine() -> XRankEngine:
    return _build_engine()


def test_service_throughput(service_engine, capsys):
    planted = PlantedKeywords.default()
    queries = _workload(planted)

    # Cold: no caching at all — every request hits the evaluator.
    cold_service = XRankService(
        service_engine, result_cache_size=0, list_cache_size=0
    )
    cold = _drive(cold_service, queries)

    # Warm: caches on, primed with one pass of the workload.
    warm_service = XRankService(
        service_engine, result_cache_size=256, list_cache_size=256
    )
    for query in queries:
        warm_service.search(query, m=10)
    warm_service.metrics = type(warm_service.metrics)()  # drop priming stats
    warm = _drive(warm_service, queries)

    # Deadline: a zero budget must degrade, never error.
    degraded_response = cold_service.search(
        queries[0], m=10, deadline_ms=0.0
    )
    deadline = {
        "query": queries[0],
        "deadline_ms": 0.0,
        "degraded": degraded_response.degraded,
        "hits": len(degraded_response.hits),
        "errored": False,
    }

    report = {
        "benchmark": "service_throughput",
        "corpus": {"kind": "dblp", "papers": NUM_PAPERS, "index": "hdil"},
        "load": {
            "threads": NUM_THREADS,
            "requests_per_thread": REQUESTS_PER_THREAD,
            "distinct_queries": len(queries),
        },
        "cold": cold,
        "warm": warm,
        "speedup": round(warm["qps"] / cold["qps"], 2) if cold["qps"] else None,
        "deadline": deadline,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print(
            f"\nservice throughput: cold {cold['qps']} qps "
            f"(p95 {cold['p95_ms']:.2f}ms) -> warm {warm['qps']} qps "
            f"(p95 {warm['p95_ms']:.4f}ms, hit rate "
            f"{warm['result_cache_hit_rate']:.0%}) -> {OUTPUT.name}"
        )

    assert warm["qps"] > cold["qps"], report
    assert warm["result_cache_hit_rate"] > 0.5
    assert deadline["degraded"] is True
