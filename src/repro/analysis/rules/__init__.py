"""The rule registry for ``repro check``.

``ALL_RULES`` is the catalogue; :func:`default_rules` applies the
``[tool.repro.check]`` enable/disable configuration.  To add a rule,
implement it in a module here and append an instance to ``ALL_RULES`` —
the CLI, the CI gate, and the fixture-driven tests all consume the
registry, so one registration covers all three.
"""

from __future__ import annotations

from typing import List, Optional

from ..linter import LintConfig, LintRule
from .cluster import ClusterDeadlineRPCRule
from .deadline import DeadlineDisciplineRule
from .durable import DurableWriteRule
from .faults import FaultTypedErrorsRule
from .general import BareExceptRule, MutableDefaultRule, WallClockRule
from .generation import CacheGenerationRule
from .guards import GuardedByRule
from .locks import LockDisciplineRule, RawLockRule
from .log import StructuredLogRule
from .obs import ClusterTraceRPCRule

ALL_RULES: List[LintRule] = [
    DeadlineDisciplineRule(),
    LockDisciplineRule(),
    GuardedByRule(),
    RawLockRule(),
    CacheGenerationRule(),
    BareExceptRule(),
    MutableDefaultRule(),
    WallClockRule(),
    FaultTypedErrorsRule(),
    ClusterDeadlineRPCRule(),
    ClusterTraceRPCRule(),
    DurableWriteRule(),
    StructuredLogRule(),
]

__all__ = [
    "ALL_RULES",
    "BareExceptRule",
    "CacheGenerationRule",
    "ClusterDeadlineRPCRule",
    "ClusterTraceRPCRule",
    "DeadlineDisciplineRule",
    "DurableWriteRule",
    "FaultTypedErrorsRule",
    "GuardedByRule",
    "LockDisciplineRule",
    "MutableDefaultRule",
    "RawLockRule",
    "StructuredLogRule",
    "WallClockRule",
    "default_rules",
]


def default_rules(config: Optional[LintConfig] = None) -> List[LintRule]:
    """The registry filtered by a :class:`LintConfig` (None = everything)."""
    if config is None:
        return list(ALL_RULES)
    return [rule for rule in ALL_RULES if config.selects(rule.rule_id)]
