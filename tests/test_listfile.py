"""Unit tests for inverted-list files and cursors."""

import pytest

from repro.config import StorageParams
from repro.errors import StorageError
from repro.storage.disk import SimulatedDisk
from repro.storage.listfile import ListCursor, ListFile


def make_disk(page_size=256, pool=8):
    return SimulatedDisk(StorageParams(page_size=page_size, buffer_pool_pages=pool))


class TestWriteScan:
    def test_roundtrip(self):
        disk = make_disk()
        records = [f"record-{i:04d}".encode() for i in range(100)]
        list_file = ListFile.write(disk, records)
        assert list(list_file.scan()) == records
        assert list_file.num_records == 100

    def test_empty_list(self):
        disk = make_disk()
        list_file = ListFile.write(disk, [])
        assert list(list_file.scan()) == []
        assert list_file.num_pages == 0

    def test_pages_consecutive(self):
        disk = make_disk()
        list_file = ListFile.write(disk, [b"x" * 50 for _ in range(20)])
        ids = list_file.page_ids
        assert ids == list(range(ids[0], ids[0] + len(ids)))

    def test_page_boundaries(self):
        disk = make_disk(page_size=128)
        records = [b"r" * 40 for _ in range(10)]
        list_file = ListFile.write(disk, records)
        assert list_file.page_boundaries[0] == 0
        assert len(list_file.page_boundaries) == list_file.num_pages
        # Boundaries must be strictly increasing and cover all records.
        bounds = list_file.page_boundaries
        assert bounds == sorted(set(bounds))
        assert bounds[-1] < 10

    def test_scan_is_sequential_io(self):
        disk = make_disk(page_size=128, pool=2)
        list_file = ListFile.write(disk, [b"r" * 40 for _ in range(30)])
        disk.reset_stats()
        disk.drop_cache()
        list(list_file.scan())
        assert disk.stats.random_reads == 1
        assert disk.stats.sequential_reads == list_file.num_pages - 1

    def test_oversized_record_rejected(self):
        disk = make_disk(page_size=64)
        with pytest.raises(StorageError):
            ListFile.write(disk, [b"x" * 100])

    def test_scan_page(self):
        disk = make_disk(page_size=128)
        records = [bytes([65 + i]) * 30 for i in range(12)]
        list_file = ListFile.write(disk, records)
        recovered = []
        for page_id in list_file.page_ids:
            recovered.extend(list_file.scan_page(page_id))
        assert recovered == records

    def test_byte_size_accounts_pages(self):
        disk = make_disk()
        list_file = ListFile.write(disk, [b"abc"] * 10)
        assert list_file.byte_size > 10 * 3  # framing overhead included


class TestCursor:
    def test_peek_next_eof(self):
        disk = make_disk()
        list_file = ListFile.write(disk, [b"a", b"b", b"c"])
        cursor = ListCursor(list_file)
        assert cursor.peek() == b"a"
        assert cursor.peek() == b"a"  # peek does not consume
        assert cursor.next() == b"a"
        assert cursor.next() == b"b"
        assert not cursor.eof
        assert cursor.next() == b"c"
        assert cursor.eof
        with pytest.raises(StorageError):
            cursor.peek()

    def test_empty_cursor(self):
        disk = make_disk()
        cursor = ListCursor(ListFile.write(disk, []))
        assert cursor.eof
