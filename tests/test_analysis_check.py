"""End-to-end tests for the ``repro check`` driver and CLI wiring."""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.analysis.check import build_check_engine, locktrace_selftest, run_check
from repro.analysis.linter import LintConfig
from repro.cli import main

CLEAN_SOURCE = '''\
def lookup(table, key):
    """A perfectly boring function."""
    return table.get(key)
'''

DIRTY_SOURCE = '''\
def risky(items=[]):
    try:
        return items[0]
    except:
        return None
'''


@pytest.fixture()
def clean_dir(tmp_path: Path) -> Path:
    (tmp_path / "clean.py").write_text(CLEAN_SOURCE)
    return tmp_path


@pytest.fixture()
def dirty_dir(tmp_path: Path) -> Path:
    (tmp_path / "dirty.py").write_text(DIRTY_SOURCE)
    return tmp_path


def test_run_check_clean_tree_exits_zero(clean_dir):
    out = io.StringIO()
    code = run_check(paths=[str(clean_dir)], config=LintConfig(), out=out)
    assert code == 0
    assert "check: ok" in out.getvalue()


def test_run_check_reports_violations_and_exits_one(dirty_dir):
    out = io.StringIO()
    code = run_check(paths=[str(dirty_dir)], config=LintConfig(), out=out)
    assert code == 1
    text = out.getvalue()
    assert "[bare-except]" in text
    assert "[mutable-default]" in text
    assert "check: FAILED" in text


def test_run_check_honors_config_disable(dirty_dir):
    out = io.StringIO()
    config = LintConfig(disable=frozenset({"bare-except", "mutable-default"}))
    code = run_check(paths=[str(dirty_dir)], config=config, out=out)
    assert code == 0
    assert "check: ok" in out.getvalue()


def test_run_check_list_rules(clean_dir):
    out = io.StringIO()
    config = LintConfig(disable=frozenset({"wall-clock"}))
    code = run_check(
        paths=[str(clean_dir)], config=config, list_rules=True, out=out
    )
    assert code == 0
    text = out.getvalue()
    for rule_id in (
        "deadline-discipline",
        "lock-discipline",
        "cache-generation",
        "bare-except",
        "mutable-default",
        "wall-clock",
    ):
        assert rule_id in text
    assert "wall-clock (disabled)" in text
    assert "check:" not in text  # listing does not run the gates


def test_cli_check_subcommand_clean(clean_dir, capsys):
    assert main(["check", str(clean_dir)]) == 0
    assert "check: ok" in capsys.readouterr().out


def test_cli_check_subcommand_dirty(dirty_dir, capsys):
    assert main(["check", str(dirty_dir)]) == 1
    assert "check: FAILED" in capsys.readouterr().out


def test_cli_check_missing_path_is_an_error(tmp_path, capsys):
    assert main(["check", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    assert "cache-generation" in capsys.readouterr().out


def test_locktrace_selftest_passes():
    assert locktrace_selftest() == []


def test_check_engine_builds_all_kinds():
    engine = build_check_engine()
    for kind in ("dil", "rdil", "hdil"):
        assert engine.index(kind) is not None
    results = engine.search("xql language", m=5)
    assert results


def test_repo_tree_passes_own_gate():
    """The shipped tree must satisfy its own lint gate (CI invariant)."""
    package_root = Path(__file__).resolve().parent.parent / "src" / "repro"
    out = io.StringIO()
    assert run_check(paths=[str(package_root)], out=out) == 0, out.getvalue()


# -- machine-readable output, annotations, suppression audit ------------------------

USED_SUPPRESSION_SOURCE = '''\
def risky(items=[]):  # repro: ignore[mutable-default]
    return list(items)
'''

UNUSED_SUPPRESSION_SOURCE = '''\
def fine(x):
    return x  # repro: ignore[bare-except]
'''


def test_run_check_writes_json_report(dirty_dir, tmp_path):
    import json

    report_path = tmp_path / "report.json"
    out = io.StringIO()
    code = run_check(
        paths=[str(dirty_dir)],
        config=LintConfig(),
        out=out,
        json_path=str(report_path),
    )
    assert code == 1
    payload = json.loads(report_path.read_text())
    assert payload["ok"] is False
    assert payload["strict"] is False
    rules = {v["rule"] for v in payload["lint"]["violations"]}
    assert {"bare-except", "mutable-default"} <= rules
    assert payload["failures"] == len(payload["lint"]["violations"])


def test_run_check_json_dash_writes_to_out(clean_dir):
    import json

    out = io.StringIO()
    code = run_check(
        paths=[str(clean_dir)], config=LintConfig(), out=out, json_path="-"
    )
    assert code == 0
    text = out.getvalue()
    payload = json.loads(text[text.index("{") : text.rindex("}") + 1])
    assert payload["ok"] is True


def test_run_check_github_annotations(dirty_dir):
    out = io.StringIO()
    run_check(
        paths=[str(dirty_dir)], config=LintConfig(), out=out, github=True
    )
    text = out.getvalue()
    assert "::error file=" in text
    assert "title=repro-check [bare-except]" in text


def test_show_suppressed_prints_silenced_findings(tmp_path):
    (tmp_path / "quiet.py").write_text(USED_SUPPRESSION_SOURCE)
    out = io.StringIO()
    code = run_check(
        paths=[str(tmp_path)],
        config=LintConfig(),
        out=out,
        show_suppressed=True,
    )
    assert code == 0  # a *used* suppression is not a failure
    text = out.getvalue()
    assert "suppressed:" in text
    assert "[mutable-default]" in text


def test_unused_suppression_fails_the_gate(tmp_path):
    (tmp_path / "stale.py").write_text(UNUSED_SUPPRESSION_SOURCE)
    out = io.StringIO()
    code = run_check(paths=[str(tmp_path)], config=LintConfig(), out=out)
    assert code == 1
    text = out.getvalue()
    assert "[unused-suppression]" in text
    assert "bare-except" in text


def test_race_selftest_catches_the_planted_race():
    from repro.analysis.check import race_selftest

    assert race_selftest() == []


def test_cli_check_json_flag(clean_dir, tmp_path, capsys):
    import json

    report_path = tmp_path / "check.json"
    assert main(["check", str(clean_dir), "--json", str(report_path)]) == 0
    capsys.readouterr()
    assert json.loads(report_path.read_text())["ok"] is True


def test_cli_stress_subcommand_writes_canonical_json(tmp_path, capsys):
    import json

    report_path = tmp_path / "stress.json"
    code = main(
        [
            "stress",
            "--seed",
            "7",
            "--scenario",
            "components",
            "--ops-scale",
            "0.25",
            "--json",
            str(report_path),
        ]
    )
    assert code == 0
    payload = json.loads(report_path.read_text())
    assert payload["seed"] == 7
    assert payload["clean"] is True
    assert [s["name"] for s in payload["scenarios"]] == ["components"]
    assert "components" in capsys.readouterr().out
