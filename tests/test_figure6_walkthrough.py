"""White-box replay of the paper's Figure 5/6 walkthrough.

Section 4.2.2 traces the DIL algorithm on the query 'XQL Ricardo' with the
inverted lists of Figure 4: the 'XQL' list holds Dewey IDs 5.0.3.0.0 and
6.0.3.8.3, the 'Ricardo' list holds 5.0.3.0.1.  The walkthrough's key
moments, asserted here against our merge:

* after reading 5.0.3.0.0 and 5.0.3.0.1, popping the non-matching entry
  copies its scaled rank/posList to the parent 5.0.3.0 (Figure 6(b));
* when 6.0.3.8.3 arrives with an empty common prefix, the stack drains and
  **5.0.3.0** — the paper's most-specific result — is emitted with both
  keywords' contributions (Figure 6(c));
* its ancestors (5.0.3, 5.0, 5) are *not* emitted (spurious-result
  suppression), and document 6's lone 'XQL' never produces a result.
"""

import pytest

from repro.config import RankingParams
from repro.index.postings import Posting
from repro.query.merge import conjunctive_merge
from repro.query.streams import PostingStream
from repro.xmlmodel.dewey import DeweyId


def dewey(text):
    return DeweyId.parse(text)


@pytest.fixture()
def figure4_lists():
    """The Figure 4 inverted lists, with illustrative ranks/positions."""
    xql_list = [
        Posting(dewey("5.0.3.0.0"), 0.40, (100,)),
        Posting(dewey("6.0.3.8.3"), 0.30, (900,)),
    ]
    ricardo_list = [
        Posting(dewey("5.0.3.0.1"), 0.20, (105,)),
    ]
    return xql_list, ricardo_list


def run_merge(xql_list, ricardo_list, params=None):
    params = params or RankingParams(decay=0.5, use_proximity=False)
    streams = [
        PostingStream.from_postings(xql_list),
        PostingStream.from_postings(ricardo_list),
    ]
    return list(conjunctive_merge(streams, params)), params


class TestWalkthrough:
    def test_single_result_is_the_paper_element(self, figure4_lists):
        results, _ = run_merge(*figure4_lists)
        assert [str(r.dewey) for r in results] == ["5.0.3.0"]

    def test_ancestors_suppressed(self, figure4_lists):
        results, _ = run_merge(*figure4_lists)
        emitted = {str(r.dewey) for r in results}
        for spurious in ("5.0.3", "5.0", "5"):
            assert spurious not in emitted

    def test_document_six_produces_nothing(self, figure4_lists):
        results, _ = run_merge(*figure4_lists)
        assert all(r.dewey.doc_id == 5 for r in results)

    def test_scaled_rank_propagation(self, figure4_lists):
        """Figure 6(b): the popped child's rank reaches the parent scaled
        by one decay step; the result's keyword ranks are exactly
        ElemRank(v_t) * decay for both title (XQL) and author (Ricardo)."""
        results, params = run_merge(*figure4_lists)
        result = results[0]
        assert result.keyword_ranks[0] == pytest.approx(0.40 * params.decay)
        assert result.keyword_ranks[1] == pytest.approx(0.20 * params.decay)
        assert result.rank == pytest.approx((0.40 + 0.20) * params.decay)

    def test_position_lists_merged_for_proximity(self, figure4_lists):
        """With proximity on, the merged posLists (100, 105) give the
        six-word window of the paper's two occurrences."""
        xql_list, ricardo_list = figure4_lists
        results, _ = run_merge(
            xql_list, ricardo_list, RankingParams(decay=0.5, use_proximity=True)
        )
        result = results[0]
        # window = 105 - 100 + 1 = 6, two keywords -> p = 2/6.
        expected = (0.40 + 0.20) * 0.5 * (2 / 6)
        assert result.rank == pytest.approx(expected)

    def test_containsall_blocks_upward_flow(self):
        """Figure 6(c)'s note: once 5.0.3.0 is a result, its rank and
        posLists are NOT copied to 5.0.3 — an independent occurrence pair
        elsewhere under 5.0.3 must not combine with the absorbed ones."""
        xql_list = [
            Posting(dewey("5.0.3.0.0"), 0.40, (100,)),
            Posting(dewey("5.0.3.5"), 0.10, (400,)),  # independent XQL
        ]
        ricardo_list = [
            Posting(dewey("5.0.3.0.1"), 0.20, (105,)),
        ]
        results, _ = run_merge(xql_list, ricardo_list)
        # Only 5.0.3.0 qualifies: 5.0.3's Ricardo witness sits inside the
        # result subtree, so the independent XQL at 5.0.3.5 is not enough.
        assert [str(r.dewey) for r in results] == ["5.0.3.0"]

    def test_independent_pair_does_extend_upward(self):
        """Counterpoint: an independent Ricardo occurrence under 5.0.3
        makes 5.0.3 a second result (the <paper> scenario of Section 2.2)."""
        xql_list = [
            Posting(dewey("5.0.3.0.0"), 0.40, (100,)),
            Posting(dewey("5.0.3.5"), 0.10, (400,)),
        ]
        ricardo_list = [
            Posting(dewey("5.0.3.0.1"), 0.20, (105,)),
            Posting(dewey("5.0.3.6"), 0.15, (450,)),
        ]
        results, _ = run_merge(xql_list, ricardo_list)
        assert {str(r.dewey) for r in results} == {"5.0.3.0", "5.0.3"}
