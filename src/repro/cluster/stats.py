"""Global ranking statistics: the cluster's correctness backbone.

XRANK's ranking (Section 2.3.2) is built on ElemRank, a link analysis
over the *whole* collection graph — containment edges plus hyperlinks
that freely cross document (and therefore shard) boundaries.  A shard
worker that computed ElemRank over only its local slice would produce
scores on a different scale from every other shard, and the
coordinator's global top-k merge would silently rank incomparable
numbers.  The same applies to the corpus-level statistics the tf-idf
scorer and the workload tooling use (document frequencies, corpus
sizes).

:func:`compute_global_stats` therefore runs once, at cluster build time,
over the full corpus: it parses every document, finalizes one collection
graph, runs the exact same ``compute_elemrank`` call the single-node
engine uses, and packages the results as a :class:`GlobalStats` value
that is shipped to every shard worker.  Workers inject the ElemRanks
into their index build (``XRankEngine.build(elemrank_overrides=...)``),
so a posting's stored score is bit-identical to what the single-node
engine would have stored — which is what makes the scatter-gather merge
exact rather than approximate.

Everything in :class:`GlobalStats` is JSON-serializable (Dewey IDs as
dotted strings), so the exchange works identically whether workers live
in the coordinator's process or behind a file handed to a separate
worker process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import XRankConfig
from ..errors import StatsExchangeError
from ..ranking.elemrank import ElemRankVariant, LinkGraph, compute_elemrank
from ..xmlmodel.dewey import DeweyId
from ..xmlmodel.graph import CollectionGraph


@dataclass
class GlobalStats:
    """Collection-global statistics distributed to every shard worker."""

    #: Total documents and elements in the full corpus.
    num_documents: int = 0
    num_elements: int = 0
    #: ElemRank of every element, keyed by dotted Dewey ID.  Computed on
    #: the full collection graph; the values a single-node build would
    #: attach to its postings.
    elemranks: Dict[str, float] = field(default_factory=dict)
    #: keyword -> number of documents containing it (collection-wide).
    document_frequencies: Dict[str, int] = field(default_factory=dict)
    #: Convergence diagnostics of the global power iteration.
    elemrank_iterations: int = 0
    elemrank_converged: bool = True

    def elemrank_mapping(self) -> Dict[DeweyId, float]:
        """The override mapping ``XRankEngine.build`` consumes."""
        return {
            DeweyId.parse(dotted): score
            for dotted, score in self.elemranks.items()
        }

    def require_coverage(self, graph: CollectionGraph) -> None:
        """Fail loudly when these stats do not cover a shard's graph."""
        missing = [
            element.dewey
            for element in graph.elements
            if str(element.dewey) not in self.elemranks
        ]
        if missing:
            raise StatsExchangeError(
                f"global stats cover {len(self.elemranks)} elements but "
                f"the shard has {len(missing)} uncovered one(s), e.g. "
                f"{missing[0]} — was the exchange run over the full corpus?"
            )

    # -- serialization (worker processes receive a JSON file) ------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_documents": self.num_documents,
            "num_elements": self.num_elements,
            "elemranks": self.elemranks,
            "document_frequencies": self.document_frequencies,
            "elemrank_iterations": self.elemrank_iterations,
            "elemrank_converged": self.elemrank_converged,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GlobalStats":
        return cls(
            num_documents=int(data.get("num_documents", 0)),
            num_elements=int(data.get("num_elements", 0)),
            elemranks=dict(data.get("elemranks", {})),
            document_frequencies=dict(data.get("document_frequencies", {})),
            elemrank_iterations=int(data.get("elemrank_iterations", 0)),
            elemrank_converged=bool(data.get("elemrank_converged", True)),
        )

    def save(self, path) -> None:
        """Write the exchange payload as JSON (floats via repr: exact)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path) -> "GlobalStats":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def compute_global_stats(
    graph: CollectionGraph,
    config: Optional[XRankConfig] = None,
    variant: ElemRankVariant = ElemRankVariant.E4_FINAL,
) -> GlobalStats:
    """Run the exchange step over a finalized full-corpus graph.

    Uses the identical ``compute_elemrank`` entry point the single-node
    :class:`~repro.index.builder.IndexBuilder` calls, so the score of
    every element — down to the float bits — matches what a single-node
    build would compute.
    """
    config = config or XRankConfig()
    if not graph.finalized:
        graph.finalize()
    result = compute_elemrank(
        LinkGraph.from_collection(graph), config.elemrank, variant
    )
    mapping = result.as_mapping(graph)

    frequencies: Dict[str, set] = {}
    for document in graph.iter_documents():
        for element in document.iter_elements():
            for word, _position in element.direct_words():
                frequencies.setdefault(word, set()).add(document.doc_id)

    return GlobalStats(
        num_documents=graph.num_documents,
        num_elements=len(graph.elements),
        elemranks={str(dewey): score for dewey, score in mapping.items()},
        document_frequencies={
            word: len(docs) for word, docs in sorted(frequencies.items())
        },
        elemrank_iterations=result.iterations,
        elemrank_converged=result.converged,
    )


def build_full_graph(specs: List) -> CollectionGraph:
    """Parse every :class:`~repro.build.shard.DocumentSpec` into one graph.

    The coordinator-side half of the exchange: the same parse calls a
    shard worker will make, applied to the whole corpus, so Dewey IDs and
    the link structure agree exactly with the union of the shards.
    """
    from .worker import parse_spec

    graph = CollectionGraph()
    for spec in sorted(specs, key=lambda s: s.doc_id):
        graph.add_document(parse_spec(spec))
    graph.finalize()
    return graph
