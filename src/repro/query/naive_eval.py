"""Query processing for the naive baselines (paper Sections 4.1, 5.1).

Both baselines treat every element as an independent document, so they
reproduce the naive approach's documented flaws: ancestors of a genuine
result also match (spurious results), and ranking ignores result
specificity — an element's rank is simply the sum of its stored per-keyword
ElemRanks times keyword proximity.

* **Naive-ID** — equality merge-join over id-ordered lists; the scan can
  stop as soon as any list is exhausted (conjunctive semantics).
* **Naive-Rank** — the Threshold Algorithm over rank-ordered lists with a
  random hash probe per other keyword; "Naive-Rank does not need to
  determine longest common prefixes ... but only needs to determine if the
  same ID occurs in multiple lists.  Thus, a hash-index is sufficient."
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..config import RankingParams
from ..errors import QueryError
from ..index.naive import NaiveIdIndex, NaivePosting, NaiveRankIndex
from ..ranking.proximity import proximity
from ..storage.listfile import ListCursor
from .results import QueryResult, ResultHeap, validate_query


class _NaiveStream:
    """Peekable decoded stream over a naive list with tombstone filtering."""

    def __init__(
        self,
        cursor: Optional[ListCursor],
        deleted_docs: Set[int],
        doc_of_elem,
    ):
        self._cursor = cursor
        self._deleted = deleted_docs
        self._doc_of_elem = doc_of_elem
        self._head: Optional[NaivePosting] = None
        self._advance()

    def _advance(self) -> None:
        # Deadline-free by design: this only skips tombstoned postings to
        # reach the next live head; the evaluator loops driving next()
        # poll the deadline once per consumed posting.
        self._head = None
        if self._cursor is None:
            return
        while not self._cursor.eof:  # repro: ignore[deadline-discipline]
            posting = NaivePosting.decode(self._cursor.next())
            if self._doc_of_elem.get(posting.elem_id) in self._deleted:
                continue
            self._head = posting
            return

    @property
    def eof(self) -> bool:
        return self._head is None

    def peek(self) -> NaivePosting:
        if self._head is None:
            raise QueryError("peek past end of naive stream")
        return self._head

    def next(self) -> NaivePosting:
        posting = self.peek()
        self._advance()
        return posting


def _naive_rank(
    postings: Sequence[NaivePosting],
    params: RankingParams,
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Specificity-blind overall rank: sum of ranks x keyword proximity."""
    if weights is None:
        total = sum(p.elemrank for p in postings)
    else:
        total = sum(w * p.elemrank for w, p in zip(weights, postings))
    if not params.use_proximity:
        return total
    return total * proximity([list(p.positions) for p in postings])


class NaiveIdEvaluator:
    """Equality merge-join over the id-ordered naive lists."""

    def __init__(self, index: NaiveIdIndex, params: Optional[RankingParams] = None):
        self.index = index
        self.params = params or RankingParams()

    def evaluate(
        self,
        keywords: Sequence[str],
        m: int = 10,
        weights: Optional[Sequence[float]] = None,
        deadline=None,
        span=None,
    ) -> List[QueryResult]:
        """Top-m naive results by id-ordered merge-join."""
        validate_query(keywords, m, weights)
        self.index._require_built()
        streams = [
            _NaiveStream(
                self.index.cursor(keyword),
                self.index.deleted_docs,
                self.index.doc_of_elem,
            )
            for keyword in keywords
        ]
        heap = ResultHeap(m)
        while not any(stream.eof for stream in streams):
            if deadline is not None and deadline.poll():
                break
            ids = [stream.peek().elem_id for stream in streams]
            smallest = min(ids)
            if all(elem_id == smallest for elem_id in ids):
                postings = [stream.next() for stream in streams]
                heap.add(
                    QueryResult(
                        rank=_naive_rank(postings, self.params, weights),
                        elem_id=smallest,
                        keyword_ranks=tuple(p.elemrank for p in postings),
                    )
                )
            else:
                # Advances each stream at most once per (polling) outer
                # iteration — bounded by the keyword count, not list size.
                for stream, elem_id in zip(streams, ids):  # repro: ignore[deadline-discipline]
                    if elem_id == smallest:
                        stream.next()
        return heap.results()


class NaiveRankEvaluator:
    """Threshold Algorithm over rank-ordered naive lists with hash probes."""

    def __init__(self, index: NaiveRankIndex, params: Optional[RankingParams] = None):
        self.index = index
        self.params = params or RankingParams()

    def evaluate(
        self,
        keywords: Sequence[str],
        m: int = 10,
        weights: Optional[Sequence[float]] = None,
        deadline=None,
        span=None,
    ) -> List[QueryResult]:
        """Top-m naive results via the Threshold Algorithm."""
        validate_query(keywords, m, weights)
        scale = list(weights) if weights else [1.0] * len(keywords)
        self.index._require_built()
        streams = [
            _NaiveStream(
                self.index.cursor(keyword),
                self.index.deleted_docs,
                self.index.doc_of_elem,
            )
            for keyword in keywords
        ]
        n = len(keywords)
        current_ranks = [
            (stream.peek().elemrank if not stream.eof else 0.0)
            for stream in streams
        ]
        heap = ResultHeap(m)
        seen: Set[int] = set()
        robin = 0
        while True:
            if deadline is not None and deadline.poll():
                break
            threshold = sum(w * r for w, r in zip(scale, current_ranks))
            if heap.full and heap.kth_rank() >= threshold:
                break
            source = None
            for offset in range(n):
                candidate = (robin + offset) % n
                if not streams[candidate].eof:
                    source = candidate
                    break
            if source is None:
                break
            robin = source + 1
            posting = streams[source].next()
            current_ranks[source] = (
                streams[source].peek().elemrank
                if not streams[source].eof
                else 0.0
            )
            if posting.elem_id in seen:
                continue
            seen.add(posting.elem_id)
            matches = self._probe_all(keywords, source, posting)
            if matches is not None:
                heap.add(
                    QueryResult(
                        rank=_naive_rank(matches, self.params, weights),
                        elem_id=posting.elem_id,
                        keyword_ranks=tuple(p.elemrank for p in matches),
                    )
                )
        return heap.results()

    def _probe_all(
        self, keywords: Sequence[str], source: int, posting: NaivePosting
    ) -> Optional[List[NaivePosting]]:
        """Random equality probes for the other keywords (TA's fan-out)."""
        matches: List[Optional[NaivePosting]] = [None] * len(keywords)
        matches[source] = posting
        for j, keyword in enumerate(keywords):
            if j == source:
                continue
            match = self.index.probe(keyword, posting.elem_id)
            if match is None:
                return None
            matches[j] = match
        return [p for p in matches if p is not None]
