"""Tests for the command-line interface (index / search / stats / demo)."""

import pickle

import pytest

from repro.cli import main
from repro.engine import XRankEngine


@pytest.fixture()
def corpus_dir(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "workshop.xml").write_text(
        "<workshop><title>XQL workshop</title>"
        "<paper><body><sub>the xql language</sub></body></paper></workshop>"
    )
    (docs / "page.html").write_text(
        '<html><body>xql tutorial <a href="workshop.xml">link</a></body></html>'
    )
    (docs / "notes.txt").write_text("ignored: not xml or html")
    (docs / "broken.xml").write_text("<a><b></a>")
    return docs


class TestIndexCommand:
    def test_index_builds_engine_file(self, corpus_dir, tmp_path, capsys):
        out = tmp_path / "engine.xrank"
        code = main(["index", str(corpus_dir), "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "indexed 2 documents" in captured.out
        assert "skipping" in captured.err  # broken.xml reported, not fatal
        engine = XRankEngine.load(out)
        assert isinstance(engine, XRankEngine)

    def test_cross_file_links_resolve(self, corpus_dir, tmp_path):
        out = tmp_path / "engine.xrank"
        main(["index", str(corpus_dir), "--out", str(out)])
        engine = XRankEngine.load(out)
        assert engine.stats()["hyperlink_edges"] == 1

    def test_missing_path_errors(self, tmp_path):
        code = main(["index", str(tmp_path / "nope"), "--out", "x"])
        assert code == 2

    def test_no_matching_files(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(["index", str(empty), "--out", str(tmp_path / "o")])
        assert code == 1

    def test_scorer_option(self, corpus_dir, tmp_path):
        out = tmp_path / "engine.xrank"
        code = main(
            ["index", str(corpus_dir), "--out", str(out), "--scorer", "tfidf"]
        )
        assert code == 0


class TestSearchCommand:
    @pytest.fixture()
    def engine_file(self, corpus_dir, tmp_path):
        out = tmp_path / "engine.xrank"
        main(["index", str(corpus_dir), "--out", str(out),
              "--kinds", "hdil", "dil"])
        return out

    def test_search_prints_hits(self, engine_file, capsys):
        code = main(["search", str(engine_file), "xql language"])
        assert code == 0
        captured = capsys.readouterr()
        assert "<sub>" in captured.out
        assert "[0." in captured.out

    def test_search_no_results(self, engine_file, capsys):
        code = main(["search", str(engine_file), "zebra unicorn"])
        assert code == 0
        assert "no results" in capsys.readouterr().out

    def test_or_mode(self, engine_file, capsys):
        code = main(
            ["search", str(engine_file), "xql zebra", "--mode", "or",
             "--kind", "dil"]
        )
        assert code == 0
        assert "no results" not in capsys.readouterr().out

    def test_context_flag(self, engine_file, capsys):
        main(["search", str(engine_file), "xql language", "--context"])
        assert "^ <" in capsys.readouterr().out

    def test_not_an_engine_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.pkl"
        with open(bogus, "wb") as handle:
            pickle.dump({"not": "an engine"}, handle)
        code = main(["search", str(bogus), "x"])
        assert code == 2


class TestOtherCommands:
    def test_stats(self, corpus_dir, tmp_path, capsys):
        out = tmp_path / "engine.xrank"
        main(["index", str(corpus_dir), "--out", str(out)])
        code = main(["stats", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "documents: 2" in captured

    def test_demo(self, capsys):
        code = main(["demo"])
        assert code == 0
        assert "xql language" in capsys.readouterr().out


class TestGeneratedCorpusIntegration:
    """End-to-end: generated corpus -> files on disk -> CLI -> search."""

    def test_saved_dblp_corpus_indexes_with_citations(self, tmp_path, capsys):
        from repro.datasets import generate_dblp, save_corpus

        corpus = generate_dblp(num_papers=40, seed=13, plant_anecdotes=True)
        corpus_dir = tmp_path / "dblp"
        written = save_corpus(corpus, corpus_dir)
        assert len(written) == 40
        assert all((corpus_dir / name).exists() for name in written)

        out = tmp_path / "engine.xrank"
        code = main(["index", str(corpus_dir), "--out", str(out)])
        assert code == 0
        engine = XRankEngine.load(out)
        # Inter-document citations must survive the disk round trip.
        assert engine.stats()["hyperlink_edges"] == len(
            corpus.graph.hyperlink_edges
        )

        code = main(["search", str(out), "jim gray"])
        assert code == 0
        assert "author" in capsys.readouterr().out


class TestExplainCommand:
    def test_explain_prints_decomposition(self, corpus_dir, tmp_path, capsys):
        out = tmp_path / "engine.xrank"
        main(["index", str(corpus_dir), "--out", str(out), "--kinds", "dil"])
        code = main(["explain", str(out), "xql language", "--kind", "dil"])
        assert code == 0
        text = capsys.readouterr().out
        assert "r(xql)" in text
        assert "proximity" in text
        assert "ElemRank(element)" in text


class TestTraceCommand:
    def test_seeded_workload_renders_trees(self, capsys):
        code = main(["trace", "--papers", "8", "--queries", "1"])
        assert code == 0
        text = capsys.readouterr().out
        assert "trace t000001" in text
        assert "service.search" in text

    def test_canonical_json_is_byte_stable(self, capsys):
        runs = []
        for _ in range(2):
            code = main(
                ["trace", "--papers", "8", "--queries", "2", "--json"]
            )
            assert code == 0
            runs.append(capsys.readouterr().out)
        assert runs[0] == runs[1]
        import json as json_module

        parsed = json_module.loads(runs[0])
        assert len(parsed) == 2
        assert all(tree["name"] == "service.search" for tree in parsed)

    def test_check_mode_validates_invariants(self, capsys):
        code = main(["trace", "--papers", "8", "--queries", "1", "--check"])
        assert code == 0
        assert "trace check over 1 trace(s): ok" in capsys.readouterr().out
