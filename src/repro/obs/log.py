"""Structured event log: bounded, deterministic, trace-correlated.

The serving tier used to narrate operational events through ad-hoc
``print`` calls and module loggers — unstructured, unbounded, and
impossible to join back to the query that caused them.  This module
replaces that with one discipline: components emit *events* (a kind
plus sorted key/value fields) into a bounded :class:`EventLog`, and
every event automatically carries the trace id of the query being
served when it fired, so a log line joins to its PR 7 span tree with a
single key lookup.

Determinism rules, same as the canonical trace/profile exports:

* **No timestamps.**  Events carry a monotonically increasing ``seq``
  instead; ordering is causal, not wall-clock, so a seeded workload
  produces a byte-identical ``to_jsonl()`` transcript.
* **Deterministic fields only.**  Call sites must not put latencies,
  ports, or host names in event fields — those belong on spans, where
  the canonical renderer already strips them.

Trace correlation is ambient: the service binds the active query's
trace id around request handling (:func:`bind_trace`), and every
``emit`` on that thread — from the admission controller, the circuit
breaker, the degradation path, wherever — picks it up without any of
those components knowing about tracing.

Layering note: obs sits below service in the import graph, so the log
guards itself with a plain ``threading.Lock`` (see
:class:`repro.obs.trace.TraceBuffer` for the long-form rationale).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional

_BOUND = threading.local()


def current_trace_id() -> Optional[str]:
    """The trace id bound on this thread, or None (unsampled query)."""
    return getattr(_BOUND, "trace_id", None)


@contextmanager
def bind_trace(trace_id: Optional[str]):
    """Make ``trace_id`` ambient for every event emitted in the block.

    Bindings nest and restore on exit; binding ``None`` is valid and
    means "this work is not attributed to a sampled query".
    """
    previous = getattr(_BOUND, "trace_id", None)
    _BOUND.trace_id = trace_id
    try:
        yield
    finally:
        _BOUND.trace_id = previous


class EventLog:
    """A bounded ring of structured events.

    ``capacity`` bounds memory like the trace buffer bounds traces: the
    newest events win, and ``dropped`` counts what the ring evicted so
    a reader knows the transcript is a suffix, not the whole history.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # Plain Lock by design: obs must not import service.concurrency.
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0

    def emit(self, kind: str, /, **fields: object) -> Dict[str, object]:
        """Record one event; returns the stored record.

        The record is ``{"seq": n, "kind": kind, "trace_id": ambient,
        **fields}`` with fields stored in sorted key order so the JSONL
        transcript is canonical.  Field values must be deterministic —
        no wall-clock, no ports (see the module docstring).  The record
        envelope's own keys are reserved — a field named ``kind`` would
        silently overwrite the event kind, so it raises instead (call
        sites use ``index_kind`` and the like).
        """
        reserved = {"seq", "kind", "trace_id"} & fields.keys()
        if reserved:
            raise ValueError(
                f"event field(s) {sorted(reserved)} collide with the "
                "record envelope; rename them (e.g. kind -> index_kind)"
            )
        trace_id = current_trace_id()
        with self._lock:
            self._seq += 1
            record: Dict[str, object] = {
                "seq": self._seq,
                "kind": kind,
                "trace_id": trace_id,
            }
            for key in sorted(fields):
                record[key] = fields[key]
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(record)
            return record

    # -- reading ---------------------------------------------------------------------

    def events(
        self, kind: Optional[str] = None, trace_id: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """Retained events, oldest first, optionally filtered."""
        with self._lock:
            records = [dict(record) for record in self._events]
        if kind is not None:
            records = [r for r in records if r["kind"] == kind]
        if trace_id is not None:
            records = [r for r in records if r["trace_id"] == trace_id]
        return records

    def to_jsonl(self) -> str:
        """Canonical JSON-lines transcript (byte-stable for seeded runs)."""
        return "\n".join(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self.events()
        )

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "events": len(self._events),
                "emitted": self._seq,
                "dropped": self._dropped,
            }


#: Shared default log for components without an owning service (the
#: offline build pipeline, library users).  Services own their own
#: :class:`EventLog` instances; this one exists so "emit an event" is
#: never harder than the print() it replaced.
_DEFAULT = EventLog(capacity=256)


def default_event_log() -> EventLog:
    """The process-wide fallback event log."""
    return _DEFAULT
