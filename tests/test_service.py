"""Tests for the serving layer: locks, caches, admission, deadlines,
metrics, the in-process service facade, and searches racing updates."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import XRankEngine, _highlight
from repro.errors import QueryError, ServiceOverloadedError
from repro.service.admission import AdmissionController, Deadline
from repro.service.cache import MISS, GenerationalLRU
from repro.service.concurrency import ReadWriteLock
from repro.service.core import XRankService
from repro.service.metrics import ServiceMetrics, percentile
from repro.storage.iostats import IOStats


# ---------------------------------------------------------------------------
# Reader-writer lock
# ---------------------------------------------------------------------------

class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # all three readers in simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []
        writer_in = threading.Event()

        def writer():
            with lock.write():
                writer_in.set()
                time.sleep(0.05)
                order.append("write")

        def reader():
            writer_in.wait(timeout=5)
            with lock.read():
                order.append("read")

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start()
        r.start()
        w.join(timeout=5)
        r.join(timeout=5)
        assert order == ["write", "read"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_started = threading.Event()
        writer_done = threading.Event()

        def writer():
            writer_started.set()
            with lock.write():
                writer_done.set()

        t = threading.Thread(target=writer)
        t.start()
        writer_started.wait(timeout=5)
        time.sleep(0.02)  # let the writer reach the wait
        assert lock.state()["writers_waiting"] == 1
        lock.release_read()
        t.join(timeout=5)
        assert writer_done.is_set()
        assert lock.state() == {
            "active_readers": 0,
            "writer_active": False,
            "writers_waiting": 0,
        }


# ---------------------------------------------------------------------------
# Generational LRU cache
# ---------------------------------------------------------------------------

class TestGenerationalLRU:
    def test_hit_and_miss_counters(self):
        cache = GenerationalLRU(4)
        assert cache.get("a") is MISS
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = GenerationalLRU(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_generation_invalidation(self):
        cache = GenerationalLRU(4)
        cache.put("a", 1)
        cache.bump()
        assert cache.get("a") is MISS
        assert cache.invalidations == 1
        cache.put("a", 2)
        assert cache.get("a") == 2

    def test_bump_to_engine_generation(self):
        cache = GenerationalLRU(4)
        cache.bump(7)
        cache.put("k", "v")
        assert cache.generation == 7
        assert cache.get("k") == "v"

    def test_capacity_zero_disables(self):
        cache = GenerationalLRU(0)
        cache.put("a", 1)
        assert cache.get("a") is MISS
        assert len(cache) == 0

    def test_get_or_load(self):
        cache = GenerationalLRU(4)
        calls = []

        def loader():
            calls.append(1)
            return "value"

        assert cache.get_or_load("k", loader) == "value"
        assert cache.get_or_load("k", loader) == "value"
        assert len(calls) == 1

    def test_cached_none_is_a_hit(self):
        cache = GenerationalLRU(4)
        cache.put("k", None)
        assert cache.get("k") is None
        assert cache.hits == 1


# ---------------------------------------------------------------------------
# Deadline + admission control
# ---------------------------------------------------------------------------

class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline(None)
        assert deadline.poll() is False
        assert deadline.remaining_ms() is None

    def test_zero_budget_expires_immediately(self):
        deadline = Deadline.after_ms(0.0)
        assert deadline.poll() is True
        assert deadline.expired is True
        assert deadline.remaining_ms() == 0.0

    def test_latches(self):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])
        assert deadline.poll() is False
        now[0] = 2.0
        assert deadline.poll() is True
        now[0] = 0.0  # even if the clock ran backwards, stays expired
        assert deadline.poll() is True


class TestAdmissionController:
    def test_bounds_concurrency(self):
        admission = AdmissionController(max_concurrent=2, max_queue=10)
        admission.acquire()
        admission.acquire()
        assert admission.depth()["active"] == 2
        admission.release()
        admission.release()
        assert admission.depth()["active"] == 0

    def test_queue_overflow_rejects(self):
        admission = AdmissionController(max_concurrent=1, max_queue=0)
        admission.acquire()
        with pytest.raises(ServiceOverloadedError):
            admission.acquire()
        assert admission.depth()["rejected"] == 1
        admission.release()

    def test_queue_timeout_rejects(self):
        admission = AdmissionController(
            max_concurrent=1, max_queue=1, queue_timeout_s=0.05
        )
        admission.acquire()
        with pytest.raises(ServiceOverloadedError):
            admission.acquire()
        admission.release()

    def test_queued_request_proceeds_after_release(self):
        admission = AdmissionController(max_concurrent=1, max_queue=5)
        admission.acquire()
        acquired = threading.Event()

        def waiter():
            with admission.slot():
                acquired.set()

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.02)
        assert not acquired.is_set()
        admission.release()
        t.join(timeout=5)
        assert acquired.is_set()


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_percentile_interpolation(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 100) == 40.0
        assert percentile(values, 50) == 25.0
        assert percentile([], 95) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_snapshot_counters(self):
        metrics = ServiceMetrics()
        metrics.record_search(10.0, cached=False, degraded=False)
        metrics.record_search(30.0, cached=True, degraded=True)
        metrics.record_add(5.0)
        metrics.record_rejection()
        snapshot = metrics.snapshot(queue_depth={"active": 0})
        assert snapshot["searches"] == 2
        assert snapshot["adds"] == 1
        assert snapshot["result_cache_hits"] == 1
        assert snapshot["result_cache_hit_rate"] == 0.5
        assert snapshot["degraded"] == 1
        assert snapshot["rejected"] == 1
        assert snapshot["p50_ms"] == 20.0
        assert snapshot["qps_60s"] > 0
        assert snapshot["queue"] == {"active": 0}


# ---------------------------------------------------------------------------
# Thread-safe IOStats (shared once the server exists)
# ---------------------------------------------------------------------------

class TestIOStatsThreadSafety:
    def test_concurrent_increments_are_exact(self):
        stats = IOStats()
        per_thread = 2000

        def hammer():
            for i in range(per_thread):
                stats.record_read(sequential=i % 2 == 0)
                stats.record_hit()
                stats.record_writes()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = 8 * per_thread
        assert stats.page_reads == total
        assert stats.sequential_reads + stats.random_reads == total
        assert stats.cache_hits == total
        assert stats.page_writes == total

    def test_snapshot_delta_and_add(self):
        stats = IOStats()
        stats.record_read(sequential=True)
        before = stats.snapshot()
        stats.record_read(sequential=False)
        delta = stats.delta_since(before)
        assert delta.page_reads == 1 and delta.random_reads == 1
        combined = before + delta
        assert combined.page_reads == stats.page_reads

    def test_pickle_roundtrip_drops_lock(self):
        import pickle

        stats = IOStats(page_reads=3, cache_hits=2)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.page_reads == 3 and clone.cache_hits == 2
        clone.record_hit()  # lock was recreated
        assert clone.cache_hits == 3


# ---------------------------------------------------------------------------
# Highlight regression (satellite fix)
# ---------------------------------------------------------------------------

class TestHighlightGuard:
    def test_empty_keywords_leave_text_unchanged(self):
        assert _highlight("some snippet text", []) == "some snippet text"

    def test_nonempty_keywords_still_highlight(self):
        assert _highlight("the xql language", ["xql"]) == "the [xql] language"


# ---------------------------------------------------------------------------
# The in-process service facade
# ---------------------------------------------------------------------------

SMALL_DOC = """
<workshop><title>XML and IR</title><proceedings>
<paper><title>XQL and Proximal Nodes</title>
<body><subsection>the XQL query language looks promising</subsection></body>
</paper></proceedings></workshop>
"""


def small_service(**kwargs) -> XRankService:
    engine = XRankEngine()
    engine.add_xml(SMALL_DOC, uri="doc0")
    engine.build(kinds=["hdil", "dil"])
    return XRankService(engine, **kwargs)


class TestXRankService:
    def test_search_returns_hits(self):
        service = small_service()
        response = service.search("xql language", m=5)
        assert response.hits
        assert response.cached is False
        assert response.degraded is False
        assert response.latency_ms >= 0.0
        assert response.kind == "hdil"

    def test_result_cache_hit_on_repeat(self):
        service = small_service()
        first = service.search("xql language", m=5)
        second = service.search("xql language", m=5)
        assert second.cached is True
        assert [h.dewey for h in second.hits] == [h.dewey for h in first.hits]
        assert service.result_cache.hits == 1

    def test_distinct_parameters_miss(self):
        service = small_service()
        service.search("xql language", m=5)
        assert service.search("xql language", m=3).cached is False
        assert service.search("xql language", m=5, kind="dil").cached is False

    def test_expired_deadline_degrades_instead_of_erroring(self):
        service = small_service(result_cache_size=0)
        response = service.search("xql language", m=5, deadline_ms=0.0)
        assert response.degraded is True
        assert isinstance(response.hits, list)
        assert service.metrics.degraded == 1

    def test_degraded_results_are_not_cached(self):
        service = small_service()
        service.search("xql language", m=5, deadline_ms=0.0)
        follow_up = service.search("xql language", m=5)
        assert follow_up.cached is False
        assert follow_up.degraded is False
        assert follow_up.hits

    def test_add_xml_invalidates_and_serves_new_document(self):
        service = small_service()
        stale = service.search("xql language", m=5)
        outcome = service.add_xml(
            "<paper><title>xql goes incremental</title></paper>", uri="doc1"
        )
        assert outcome["documents"] == 2
        fresh = service.search("xql language", m=5)
        assert fresh.cached is False  # generation bump invalidated the entry
        assert fresh.generation > stale.generation
        assert service.search("incremental", m=5).hits

    def test_incremental_path_used_when_available(self):
        engine = XRankEngine()
        engine.add_xml(SMALL_DOC, uri="doc0")
        engine.build(kinds=["dil-incremental"])
        service = XRankService(engine, default_kind="dil-incremental")
        outcome = service.add_xml(
            "<paper><title>delta xql</title></paper>", uri="doc1"
        )
        assert outcome["incremental"] is True
        assert service.search("delta", kind="dil-incremental").hits

    def test_delete_tombstones_document(self):
        service = small_service()
        service.search("xql language", m=5)
        outcome = service.delete(0)
        assert outcome["deleted"] == 0
        response = service.search("xql language", m=5)
        assert response.cached is False
        assert response.hits == []

    def test_unbuilt_engine_is_built_on_construction(self):
        engine = XRankEngine()
        engine.add_xml(SMALL_DOC, uri="doc0")
        service = XRankService(engine, kinds=("hdil",))
        assert service.search("xql", m=3).hits

    def test_bad_query_raises_query_error(self):
        service = small_service()
        with pytest.raises(QueryError):
            service.search("", m=5)
        assert service.metrics.errors == 1

    def test_stats_payload_shape(self):
        service = small_service()
        service.search("xql language", m=5)
        payload = service.stats()
        assert payload["service"]["searches"] == 1
        assert payload["caches"]["results"]["capacity"] == 256
        assert "page_reads" in payload["io"]
        assert payload["engine"]["documents"] == 1
        assert payload["healthz"] if False else True  # shape only
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["documents"] == 1

    def test_posting_list_cache_serves_hot_lists(self):
        service = small_service(result_cache_size=0)
        service.search("xql language", m=5)
        misses_after_first = service.list_cache.misses
        assert misses_after_first > 0
        service.search("xql language", m=5)
        assert service.list_cache.hits > 0
        assert service.list_cache.misses == misses_after_first

    def test_io_totals_aggregate_all_indexes(self):
        service = small_service()
        service.search("xql language", m=5, kind="hdil")
        service.search("xql language", m=5, kind="dil")
        totals = service.io_totals()
        assert totals.page_reads + totals.cache_hits > 0


# ---------------------------------------------------------------------------
# Satellite: searches interleaved with writes must never observe a
# half-built index (the RW lock + cache invalidation under contention).
# ---------------------------------------------------------------------------

class TestConcurrentAccess:
    def test_searches_race_adds_without_errors(self):
        service = small_service()
        errors = []
        stop = threading.Event()

        def searcher(query: str):
            while not stop.is_set():
                try:
                    response = service.search(query, m=5)
                    assert isinstance(response.hits, list)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        def writer():
            try:
                for i in range(4):
                    service.add_xml(
                        f"<paper><title>xql concurrent {i}</title>"
                        f"<body>language stress</body></paper>",
                        uri=f"stress{i}",
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        searchers = [
            threading.Thread(target=searcher, args=(q,))
            for q in ("xql language", "xql", "language")
            for _ in range(2)
        ]
        writers = [threading.Thread(target=writer) for _ in range(2)]
        for t in searchers:
            t.start()
        for t in writers:
            t.start()
        for t in writers:
            t.join(timeout=60)
        stop.set()
        for t in searchers:
            t.join(timeout=60)
        assert not errors, errors
        # All eight added documents are searchable afterwards.
        final = service.search("concurrent", m=20)
        assert len(final.hits) == 8
        assert service.engine.graph.num_documents == 9

    def test_concurrent_reads_share_the_lock(self):
        service = small_service()
        service.search("xql language", m=5)  # warm caches
        results = []

        def reader():
            results.append(service.search("xql language", m=5).hits)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(results) == 8
        deweys = {tuple(h.dewey for h in hits) for hits in results}
        assert len(deweys) == 1  # every reader saw the same ranked answer
