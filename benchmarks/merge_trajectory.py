"""Merge per-benchmark ``BENCH_*.json`` reports into one trajectory point.

The bench-trajectory workflow runs the tiny-scale benchmarks nightly and
on every push to main, then calls this script to fold the individual
reports into a single ``trajectory.json``:

* ``reports`` — every input report in full, keyed by its ``benchmark``
  name (falling back to the file stem), so one artifact holds the whole
  run;
* ``headline`` — a flat, per-benchmark selection of the metrics worth
  plotting run-over-run (cold/warm latency, QPS, trace overhead, build
  identity), resolved with the same dotted-path walker the regression
  gate uses — a missing path is skipped, not fatal, so old and new
  report schemas coexist in one trajectory.

One uploaded artifact per run *is* the trajectory: labels carry the
commit SHA, so downloading the artifact series reconstructs the curve.
``--append`` alternatively accumulates points into a local file, for
plotting a trajectory without the artifact round-trip::

    python benchmarks/merge_trajectory.py --label "$GITHUB_SHA" \\
        --out trajectory.json fresh-BENCH_*.json
    python benchmarks/merge_trajectory.py --label dev --append \\
        --out trajectory.json fresh-BENCH_*.json   # adds a point

The script never stamps wall-clock time: a trajectory point is a pure
function of its inputs and label, so re-merging the same reports yields
byte-identical output.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from check_regression import resolve

#: Dotted paths worth tracking run-over-run, per benchmark name.
#: Unresolvable paths are skipped silently — reports evolve.
HEADLINE_PATHS: Dict[str, Sequence[str]] = {
    "service_throughput": (
        "cold.p50_ms",
        "cold.p95_ms",
        "cold.qps",
        "warm.qps",
        "warm.result_cache_hit_rate",
        "trace.off_overhead_ratio",
        "trace.sampled_overhead_ratio",
        "trace.noop_plumbing_ns_per_query",
        "trace.within_budget",
        "profile.disabled_overhead_ratio",
        "profile.enabled_overhead_ratio",
        "profile.events_per_query",
        "profile.within_budget",
    ),
    "parallel_build": ("identical", "best_speedup"),
    "cluster": ("identical", "failover.failover_exercised"),
    "faults": ("zero_rate_overhead", "gates.overhead_ok"),
}


def merge_point(
    label: str, report_paths: Sequence[Path]
) -> Dict[str, object]:
    """One trajectory point: full reports + the headline selection."""
    reports: Dict[str, object] = {}
    headline: Dict[str, Dict[str, object]] = {}
    for path in report_paths:
        report = json.loads(path.read_text(encoding="utf-8"))
        name = str(report.get("benchmark") or path.stem)
        reports[name] = report
        picked: Dict[str, object] = {}
        for dotted in HEADLINE_PATHS.get(name, ()):
            try:
                picked[dotted] = resolve(report, dotted)
            except (KeyError, IndexError, ValueError):
                continue
        if picked:
            headline[name] = picked
    return {"label": label, "reports": reports, "headline": headline}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "reports", nargs="+", type=Path, help="BENCH_*.json files to merge"
    )
    parser.add_argument(
        "--label", required=True,
        help="point label (commit SHA, run id, ...)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("trajectory.json"),
        help="merged trajectory destination",
    )
    parser.add_argument(
        "--append", action="store_true",
        help="append a point to --out's existing series instead of "
        "writing a single-point file",
    )
    args = parser.parse_args(argv)

    point = merge_point(args.label, args.reports)
    if args.append and args.out.exists():
        trajectory = json.loads(args.out.read_text(encoding="utf-8"))
        points = list(trajectory.get("points", []))
    else:
        points = []
    points.append(point)
    args.out.write_text(
        json.dumps({"points": points}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    merged = ", ".join(sorted(point["reports"]))
    print(
        f"trajectory: {len(points)} point(s) -> {args.out} "
        f"(merged {merged})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
