"""Alternative Dewey ID list encodings (space ablation for Section 4.2.1).

The paper argues Dewey IDs are cheap because "each component of the Dewey ID
is the relative position of an element with respect to its siblings.
Consequently, a small number of bits are usually sufficient".  This module
makes that claim measurable by encoding whole Dewey-ordered ID lists under
three schemes:

* ``fixed32`` — four bytes per component, the naive upper bound (what a
  schema-oblivious integer array would cost);
* ``varint`` — LEB128 per component, the production codec used by the
  posting records;
* ``prefix`` — front-coding: consecutive IDs in a Dewey-ordered list share
  long prefixes (siblings share all but the last component), so each entry
  stores only (shared-prefix length, suffix components).  This is the
  classic sorted-key compression B+-tree leaves use.

All three round-trip losslessly; ``benchmarks/bench_ablation.py`` reports
their sizes on real posting lists.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from ..errors import DeweyError
from ..xmlmodel.dewey import DeweyId, decode_varint, encode_varint

_UINT32 = struct.Struct("<I")


def encode_fixed32(ids: Sequence[DeweyId]) -> bytes:
    """Four bytes per component, length-prefixed per ID."""
    out = bytearray(encode_varint(len(ids)))
    for dewey in ids:
        out += encode_varint(len(dewey))
        for component in dewey:
            if component >= 1 << 32:
                raise DeweyError("component exceeds 32 bits")
            out += _UINT32.pack(component)
    return bytes(out)


def decode_fixed32(data: bytes) -> List[DeweyId]:
    """Inverse of :func:`encode_fixed32`."""
    count, offset = decode_varint(data, 0)
    ids: List[DeweyId] = []
    for _ in range(count):
        length, offset = decode_varint(data, offset)
        components = []
        for _ in range(length):
            components.append(_UINT32.unpack_from(data, offset)[0])
            offset += _UINT32.size
        ids.append(DeweyId(components))
    return ids


def encode_varint_list(ids: Sequence[DeweyId]) -> bytes:
    """The production codec applied to a whole list."""
    out = bytearray(encode_varint(len(ids)))
    for dewey in ids:
        out += dewey.encode()
    return bytes(out)


def decode_varint_list(data: bytes) -> List[DeweyId]:
    """Inverse of :func:`encode_varint_list`."""
    count, offset = decode_varint(data, 0)
    ids: List[DeweyId] = []
    for _ in range(count):
        dewey, offset = DeweyId.decode(data, offset)
        ids.append(dewey)
    return ids


def encode_prefix(ids: Sequence[DeweyId]) -> bytes:
    """Front-coded: (shared prefix length, varint suffix) per entry.

    Requires the input to be in non-descending Dewey order — the order the
    DIL/HDIL lists already maintain — but round-trips any such list.
    """
    out = bytearray(encode_varint(len(ids)))
    previous: Tuple[int, ...] = ()
    for dewey in ids:
        components = dewey.components
        shared = 0
        for a, b in zip(previous, components):
            if a != b:
                break
            shared += 1
        suffix = components[shared:]
        out += encode_varint(shared)
        out += encode_varint(len(suffix))
        for component in suffix:
            out += encode_varint(component)
        previous = components
    return bytes(out)


def decode_prefix(data: bytes) -> List[DeweyId]:
    """Inverse of :func:`encode_prefix`."""
    count, offset = decode_varint(data, 0)
    ids: List[DeweyId] = []
    previous: Tuple[int, ...] = ()
    for _ in range(count):
        shared, offset = decode_varint(data, offset)
        suffix_length, offset = decode_varint(data, offset)
        suffix = []
        for _ in range(suffix_length):
            component, offset = decode_varint(data, offset)
            suffix.append(component)
        components = previous[:shared] + tuple(suffix)
        if not components:
            raise DeweyError("prefix-coded entry decoded to zero components")
        ids.append(DeweyId(components))
        previous = components
    return ids


#: name -> (encoder, decoder), for ablation sweeps.
CODECS = {
    "fixed32": (encode_fixed32, decode_fixed32),
    "varint": (encode_varint_list, decode_varint_list),
    "prefix": (encode_prefix, decode_prefix),
}


def codec_sizes(ids: Sequence[DeweyId]) -> dict:
    """Encoded size in bytes under every codec (round-trip verified)."""
    sizes = {}
    for name, (encode, decode) in CODECS.items():
        blob = encode(ids)
        if decode(blob) != list(ids):
            raise DeweyError(f"codec {name} failed to round-trip")
        sizes[name] = len(blob)
    return sizes
