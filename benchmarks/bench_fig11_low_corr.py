"""Figure 11: query performance under LOW keyword correlation.

The paper's shape: DIL's sequential scans win; RDIL degrades badly because
its random B+-tree probes almost never find a common ancestor; HDIL starts
as RDIL, notices, and switches to DIL, paying a modest overhead.
"""

import pytest

from repro.bench.experiments import run_fig11
from repro.datasets.workloads import low_correlation_queries

KEYWORD_COUNTS = (2, 3, 4)
APPROACHES = ("dil", "rdil", "hdil")


@pytest.mark.parametrize("num_keywords", KEYWORD_COUNTS)
@pytest.mark.parametrize("approach", APPROACHES)
def test_query_low_correlation(benchmark, suite, approach, num_keywords):
    query = low_correlation_queries(suite.planted, num_keywords).queries[0]
    indexed = suite.dblp

    def run():
        return indexed.measure(approach, query, m=10)

    measurement = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["simulated_cost_ms"] = measurement.cost_ms
    benchmark.extra_info["num_results"] = measurement.num_results


def test_fig11_shape(benchmark, suite, capsys):
    table = benchmark.pedantic(
        lambda: run_fig11(suite, keyword_counts=KEYWORD_COUNTS),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n" + table.format())

    for point in table.points:
        values = point.values
        assert values["dil"] < values["rdil"], (
            f"DIL should win under low correlation at n={point.x}"
        )
        # HDIL switches to DIL: cheaper than staying in RDIL, but it pays
        # the aborted RDIL attempt on top of a DIL pass.
        assert values["hdil"] < values["rdil"]
        assert values["hdil"] >= values["dil"] * 0.99


def test_fig11_xmark(benchmark, suite, capsys):
    """Low correlation on XMark: DIL's sequential advantage must hold on
    the deep single-document corpus too."""
    table = benchmark.pedantic(
        lambda: run_fig11(suite, keyword_counts=(2, 3), corpus="xmark"),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n" + table.format())
    for point in table.points:
        assert point.values["dil"] < point.values["rdil"]
        assert point.values["hdil"] < point.values["rdil"]
