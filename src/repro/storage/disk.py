"""A simulated page-oriented disk with an LRU buffer pool.

All of XRANK's persistent structures (inverted-list files, B+-trees, hash
indexes) live on one :class:`SimulatedDisk`.  Pages are immutable ``bytes``
snapshots up to ``page_size`` long.  Reads go through an LRU buffer pool:

* a pool hit costs nothing and increments ``cache_hits``;
* a pool miss increments ``page_reads`` and is classified *sequential* when
  the missed page id extends one of a small number of recently active read
  streams (page id = some stream's last page + 1), otherwise *random*.
  Stream tracking models per-file OS readahead: a DIL merge that alternates
  between two inverted lists still advances each list sequentially, and a
  real disk (or its readahead cache) serves that pattern at sequential
  throughput.  The sequential/random distinction is what makes DIL's full
  scans cheap per page and RDIL's probes expensive per page, reproducing
  the paper's trade-off.

"Cold cache" experiments (the paper's default, Section 5.1) call
:meth:`drop_cache` before each query; warm-cache runs simply do not.
"""

from __future__ import annotations

import bisect
import threading
from collections import OrderedDict
from typing import Dict, Optional

from ..config import StorageParams
from ..errors import CorruptPageError, PageError, ReadFaultError
from .checksum import crc32c
from .iostats import IOStats


class BufferPool:
    """Fixed-capacity LRU cache of page ids."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise PageError("buffer pool capacity must be positive")
        self.capacity = capacity
        self._pages: "OrderedDict[int, None]" = OrderedDict()

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def touch(self, page_id: int) -> bool:
        """Record an access; returns True on a hit."""
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            return True
        self._pages[page_id] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
        return False

    def evict(self, page_id: int) -> None:
        """Drop one page from the pool if present."""
        self._pages.pop(page_id, None)

    def clear(self) -> None:
        """Drop every cached page."""
        self._pages.clear()

    def __len__(self) -> int:
        return len(self._pages)


class SimulatedDisk:
    """Page store + buffer pool + I/O statistics."""

    #: How many concurrent sequential read streams the model tracks.
    MAX_STREAMS = 8

    def __init__(self, params: Optional[StorageParams] = None):
        self.params = params or StorageParams()
        self.pages: list = []
        self.pool = BufferPool(self.params.buffer_pool_pages)
        self.stats = IOStats()
        # Last missed page id of each active stream, most recent last.
        self._streams: "OrderedDict[int, None]" = OrderedDict()
        # Free page ids, kept sorted for consecutive-run search.
        self._free: list = []
        # CRC32C per page, parallel to ``pages`` (checksummed mode only).
        self._checksums: Optional[list] = [] if self.params.checksums else None
        # page id -> owning structure label ("dil:xql"), best effort.
        self._owners: Dict[int, str] = {}
        #: Optional :class:`repro.faults.FaultPlan` consulted on every
        #: buffer-pool miss; None (the default) injects nothing.
        self.fault_plan = None
        # Guards the buffer pool / stream-tracking bookkeeping, which is
        # mutated by every read — concurrent queries share one disk.
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        state.setdefault("_checksums", None)  # pre-checksum pickles
        state.setdefault("_owners", {})
        state.setdefault("fault_plan", None)
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- allocation / writing ------------------------------------------------------

    @property
    def page_size(self) -> int:
        return self.params.page_size

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    def allocate(self, data: bytes = b"", owner: str = "") -> int:
        """Allocate a new page initialized with ``data``; returns its id.

        Freed pages are reused (smallest id first) before the file grows.
        ``owner`` labels the page's owning structure so corruption errors
        can name the inverted list or tree they hit.
        """
        self._check_size(data)
        if self._free:
            page_id = self._free.pop(0)
            self.pages[page_id] = bytes(data)
        else:
            page_id = len(self.pages)
            self.pages.append(bytes(data))
            if self._checksums is not None:
                self._checksums.append(0)
        self._record_write(page_id, data, owner)
        self.stats.record_writes()
        return page_id

    def allocate_run(self, pages: list, owner: str = "") -> list:
        """Allocate consecutive page ids for a list of page buffers.

        Inverted-list files need consecutive ids so scans stay sequential;
        this looks for a long-enough run in the free list before extending
        the file.  Returns the allocated ids, in order.
        """
        for data in pages:
            self._check_size(data)
        count = len(pages)
        if count == 0:
            return []
        run_start = self._find_free_run(count)
        if run_start is None:
            first = len(self.pages)
            self.pages.extend(bytes(p) for p in pages)
            if self._checksums is not None:
                self._checksums.extend(0 for _ in range(count))
            ids = list(range(first, first + count))
        else:
            ids = list(range(run_start, run_start + count))
            for page_id in ids:
                self._free.remove(page_id)
            for page_id, data in zip(ids, pages):
                self.pages[page_id] = bytes(data)
        for page_id, data in zip(ids, pages):
            self._record_write(page_id, data, owner)
        self.stats.record_writes(count)
        return ids

    def _record_write(self, page_id: int, data: bytes, owner: str = "") -> None:
        """Maintain the checksum and owner tables for one written page."""
        if self._checksums is not None:
            self._checksums[page_id] = crc32c(bytes(data))
        if owner:
            self._owners[page_id] = owner

    def owner_of(self, page_id: int) -> str:
        """The owning structure label for a page ("" when unlabeled)."""
        return self._owners.get(page_id, "")

    def _find_free_run(self, count: int):
        """Smallest start of ``count`` consecutive free page ids, or None."""
        run_start = None
        run_length = 0
        previous = None
        for page_id in self._free:
            if previous is not None and page_id == previous + 1:
                run_length += 1
            else:
                run_start = page_id
                run_length = 1
            previous = page_id
            if run_length == count:
                return run_start
        return None

    def free(self, page_id: int) -> None:
        """Release a page for reuse; its contents become invalid."""
        self._check_page_id(page_id)
        if page_id in self._free:
            raise PageError(f"page {page_id} is already free")
        self.pages[page_id] = b""
        if self._checksums is not None:
            self._checksums[page_id] = crc32c(b"")
        self._owners.pop(page_id, None)
        self.pool.evict(page_id)
        bisect.insort(self._free, page_id)

    @property
    def num_free_pages(self) -> int:
        return len(self._free)

    def write(self, page_id: int, data: bytes, owner: str = "") -> None:
        """Overwrite an existing page."""
        self._check_page_id(page_id)
        self._check_size(data)
        self.pages[page_id] = bytes(data)
        self._record_write(page_id, data, owner)
        self.stats.record_writes()
        self.pool.touch(page_id)

    def _check_size(self, data: bytes) -> None:
        if len(data) > self.params.page_size:
            raise PageError(
                f"page data of {len(data)} bytes exceeds page size "
                f"{self.params.page_size}"
            )

    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < len(self.pages):
            raise PageError(f"page id {page_id} out of range")

    # -- reading --------------------------------------------------------------------

    def read(self, page_id: int) -> bytes:
        """Read a page through the buffer pool, charging I/O on a miss.

        A buffer-pool hit returns the cached page unchecked (the pool
        models trusted RAM).  A miss models the actual disk fetch: the
        fault plan (if any) may fail or corrupt it, and in checksummed
        mode the page's CRC32C is verified.  Transient failures are
        retried in place up to ``StorageParams.read_retries`` times;
        what survives escapes as :class:`~repro.errors.ReadFaultError`
        or :class:`~repro.errors.CorruptPageError`, with the failing
        page evicted from the pool so a later retry re-fetches it.
        """
        self._check_page_id(page_id)
        with self._lock:
            if self.pool.touch(page_id):
                self.stats.record_hit()
                return self.pages[page_id]
            if page_id - 1 in self._streams:
                sequential = True
                del self._streams[page_id - 1]
            else:
                sequential = False
            self.stats.record_read(sequential)
            self._streams[page_id] = None
            while len(self._streams) > self.MAX_STREAMS:
                self._streams.popitem(last=False)
            attempts = 0
            while True:
                try:
                    return self._fetch(page_id)
                except (ReadFaultError, CorruptPageError):
                    self.pool.evict(page_id)
                    if attempts >= self.params.read_retries:
                        raise
                    attempts += 1
                    self.stats.record_retry()

    def _fetch(self, page_id: int) -> bytes:
        """One simulated disk fetch: fault injection + checksum verify.

        Caller holds ``_lock`` and has already charged the miss.
        """
        data = self.pages[page_id]
        plan = self.fault_plan
        if plan is not None:
            from ..faults import (
                SITE_READ_BITFLIP,
                SITE_READ_ERROR,
                SITE_READ_SLOW,
                SITE_READ_TORN,
            )

            if plan.should_fire(SITE_READ_SLOW):
                self.stats.record_slow_read()
            if plan.should_fire(SITE_READ_ERROR):
                self.stats.record_read_error()
                raise ReadFaultError(page_id)
            if plan.should_fire(SITE_READ_BITFLIP) and data:
                # Bit rot: the *stored* page is damaged, persistently.
                position = plan.choose(SITE_READ_BITFLIP, len(data) * 8)
                mutated = bytearray(data)
                mutated[position // 8] ^= 1 << (position % 8)
                self.pages[page_id] = bytes(mutated)
                data = self.pages[page_id]
            if plan.should_fire(SITE_READ_TORN) and data:
                # Torn read: this fetch returns a truncated copy; the
                # stored page is intact, so a retry sees the real bytes.
                data = data[: plan.choose(SITE_READ_TORN, len(data))]
        if self._checksums is not None and data is self.pages[page_id]:
            if crc32c(data) != self._checksums[page_id]:
                self.stats.record_corrupt_page()
                raise CorruptPageError(page_id, self.owner_of(page_id))
        elif self._checksums is not None:
            # Torn copy: always a mismatch against the stored checksum.
            self.stats.record_corrupt_page()
            raise CorruptPageError(page_id, self.owner_of(page_id))
        return data

    # -- cache control ---------------------------------------------------------------

    def drop_cache(self) -> None:
        """Empty the buffer pool (simulates the paper's cold OS cache)."""
        with self._lock:
            self.pool.clear()
            self._streams.clear()

    def reset_stats(self) -> None:
        """Zero the I/O counters."""
        self.stats.reset()

    # -- space accounting -------------------------------------------------------------

    def bytes_used(self) -> int:
        """Total bytes of live data (not rounded up to page granularity)."""
        return sum(len(page) for page in self.pages)

    def bytes_allocated(self) -> int:
        """Total bytes at page granularity (what a real disk would consume)."""
        return len(self.pages) * self.params.page_size
