"""Zipfian vocabulary model used by the synthetic corpus generators.

Real text has a heavily skewed word-frequency distribution; the paper's
performance experiments hinge on it (frequent keywords make long inverted
lists, rare keywords short ones, and *correlation* between keywords decides
whether RDIL's ranked probing pays off).  This module provides a
deterministic, seedable Zipf sampler over a synthetic vocabulary so
workloads can plant keywords with controlled selectivity and correlation.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Optional, Sequence


def synthetic_words(count: int, min_length: int = 3, max_length: int = 9) -> List[str]:
    """Generate ``count`` distinct pronounceable-ish words, deterministically.

    Words are built from alternating consonant/vowel syllables so they look
    like natural-language tokens in examples and debug output.
    """
    consonants = "bcdfghjklmnprstvwz"
    vowels = "aeiou"
    rng = random.Random(0xC0FFEE)
    seen = set()
    out: List[str] = []
    while len(out) < count:
        length = rng.randint(min_length, max_length)
        chars: List[str] = []
        use_vowel = rng.random() < 0.5
        while len(chars) < length:
            chars.append(rng.choice(vowels if use_vowel else consonants))
            use_vowel = not use_vowel
        word = "".join(chars)
        if word not in seen:
            seen.add(word)
            out.append(word)
    return out


class ZipfVocabulary:
    """A vocabulary with Zipf-distributed sampling.

    Word ``i`` (0-based rank) is sampled with probability proportional to
    ``1 / (i + 1) ** exponent``.  Sampling uses an explicit cumulative table
    with :mod:`bisect`, so it is exact and fast enough for corpus generation.
    """

    def __init__(
        self,
        size: int = 20_000,
        exponent: float = 1.1,
        words: Optional[Sequence[str]] = None,
    ):
        if size < 1:
            raise ValueError("vocabulary size must be positive")
        if words is not None:
            self.words = list(words)
            size = len(self.words)
        else:
            self.words = synthetic_words(size)
        self.size = size
        self.exponent = exponent
        weights = [1.0 / (i + 1) ** exponent for i in range(size)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> str:
        """Draw one word according to the Zipf distribution."""
        point = rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, point)
        if index >= self.size:
            index = self.size - 1
        return self.words[index]

    def sample_many(self, rng: random.Random, count: int) -> List[str]:
        """Draw ``count`` words (with repetition)."""
        return [self.sample(rng) for _ in range(count)]

    def rank_of(self, word: str) -> int:
        """Frequency rank of ``word`` (0 = most frequent); -1 if unknown."""
        try:
            return self.words.index(word)
        except ValueError:
            return -1

    def expected_frequency(self, word: str) -> float:
        """Expected fraction of sampled tokens equal to ``word``."""
        rank = self.rank_of(word)
        if rank < 0:
            return 0.0
        return (1.0 / (rank + 1) ** self.exponent) / self._total
