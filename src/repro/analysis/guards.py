"""The ``guarded by:`` annotation convention shared by both race prongs.

A field that must only be touched while a lock is held carries an inline
comment on the line that initializes it::

    class GenerationalLRU:
        def __init__(self, capacity):
            self.hits = 0          # guarded by: self._lock
            self._entries = {}     # guarded by: self._lock

Dataclass fields annotate their class-level declaration the same way::

    @dataclass
    class IOStats:
        page_reads: int = 0        # guarded by: self._lock

A *method* may carry the comment on its ``def`` line, declaring that the
whole body runs with the guard already held by the caller — the lint then
checks every ``self.<method>()`` call site instead, which is what makes
the pass interprocedural::

    def _evict_locked(self):  # guarded by: self._lock
        ...

Two consumers read the convention:

* the ``guarded-by`` lint rule (:mod:`repro.analysis.rules.guards`)
  proves, lexically, that every annotated field access sits inside a
  ``with self.<guard>:`` block (or ``.read()``/``.write()`` context);
* the dynamic race detector (:mod:`repro.analysis.races`) uses the same
  map to decide which attributes of an instrumented object to watch and
  which lock attribute protects them.

Parsing is comment-based on purpose: the annotation costs nothing at
runtime (no descriptor indirection on hot counters) and survives
pickling, dataclasses and ``__slots__`` unchanged.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: ``# guarded by: self._lock`` (the receiver must be ``self``).
GUARD_COMMENT_RE = re.compile(r"#\s*guarded\s+by:\s*self\.([A-Za-z_]\w*)")

#: Methods that run before (or outside) any concurrent access exists.
CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__post_init__", "__setstate__", "__new__", "__del__"}
)


@dataclass
class ClassGuards:
    """The guard map of one class: who protects which attribute."""

    name: str
    #: field name -> guard attribute name (e.g. ``"hits" -> "_lock"``).
    fields: Dict[str, str] = field(default_factory=dict)
    #: method name -> guard the caller must already hold.
    methods: Dict[str, str] = field(default_factory=dict)
    #: field/method name -> source line of its annotation.
    lines: Dict[str, int] = field(default_factory=dict)

    @property
    def guard_attrs(self) -> List[str]:
        """Every distinct guard attribute the class names, sorted."""
        return sorted(set(self.fields.values()) | set(self.methods.values()))

    def __bool__(self) -> bool:
        return bool(self.fields or self.methods)


def _guard_on_line(source_lines: List[str], lineno: int) -> Optional[str]:
    """The guard attr named by a ``# guarded by:`` comment on one line."""
    if not 1 <= lineno <= len(source_lines):
        return None
    match = GUARD_COMMENT_RE.search(source_lines[lineno - 1])
    return match.group(1) if match else None


def parse_class_guards(
    classdef: ast.ClassDef, source_lines: List[str]
) -> ClassGuards:
    """Collect one class's guard annotations from its comments."""
    guards = ClassGuards(name=classdef.name)

    def record_field(attr: str, lineno: int) -> None:
        guard = _guard_on_line(source_lines, lineno)
        if guard is not None:
            guards.fields[attr] = guard
            guards.lines[attr] = lineno

    for node in classdef.body:
        # Dataclass-style class-level declarations.
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            record_field(node.target.id, node.lineno)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    record_field(target.id, node.lineno)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            guard = _guard_on_line(source_lines, node.lineno)
            if guard is not None:
                guards.methods[node.name] = guard
                guards.lines[node.name] = node.lineno
            # ``self.x = ...  # guarded by: ...`` anywhere in a method
            # registers the field (conventionally in __init__).
            for inner in ast.walk(node):
                targets: List[ast.expr] = []
                if isinstance(inner, ast.Assign):
                    targets = list(inner.targets)
                elif isinstance(inner, ast.AnnAssign):
                    targets = [inner.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        record_field(target.attr, inner.lineno)
    return guards


def parse_module_guards(
    tree: ast.Module, source: str
) -> Dict[str, ClassGuards]:
    """class name -> :class:`ClassGuards` for every class in a module."""
    source_lines = source.splitlines()
    return {
        node.name: parse_class_guards(node, source_lines)
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }


# -- runtime access (the dynamic detector's view) ----------------------------------

_RUNTIME_CACHE: Dict[type, ClassGuards] = {}


def class_guards(cls: type) -> ClassGuards:
    """The guard map of a live class, parsed from its source.

    Returns an empty map when the source is unavailable (REPL- or
    exec-defined classes); callers that instrument such classes pass an
    explicit field map instead.
    """
    cached = _RUNTIME_CACHE.get(cls)
    if cached is not None:
        return cached
    import inspect
    import textwrap

    try:
        source = textwrap.dedent(inspect.getsource(cls))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        guards = ClassGuards(name=cls.__name__)
    else:
        classdef = next(
            (n for n in tree.body if isinstance(n, ast.ClassDef)), None
        )
        guards = (
            parse_class_guards(classdef, source.splitlines())
            if classdef is not None
            else ClassGuards(name=cls.__name__)
        )
    _RUNTIME_CACHE[cls] = guards
    return guards
