"""HDIL — the Hybrid Dewey Inverted List (paper Section 4.4).

Per keyword, HDIL stores:

* the **full** inverted list sorted by Dewey ID (DIL's list) — which doubles
  as the *leaf level* of the Dewey B+-tree, so the tree only pays for
  internal nodes ("the inverted list itself can serve as the leaf level of
  the B+-tree ... only the internal nodes of the B+-tree need to be
  explicitly stored"), explaining HDIL's tiny index column in Table 1;

* a **small rank-ordered head**: the top fraction of the list by ElemRank,
  enough for RDIL-style processing to find the top-m results of correlated
  queries without touching the full list.

Query processing starts in RDIL mode over the ranked head and adaptively
switches to a DIL scan of the full lists (:mod:`repro.query.hdil_eval`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..config import HDILParams, StorageParams
from ..errors import IndexError_
from ..storage.btree import BTree
from ..storage.listfile import ListCursor, ListFile
from ..xmlmodel.dewey import DeweyId, decode_varint
from .base import KeywordIndex
from .postings import Posting, PostingMap, rank_order


def decode_list_page(page: bytes) -> List[Tuple[DeweyId, bytes]]:
    """Turn a raw list page into (dewey, full posting record) pairs.

    This is the external-leaf decoder handed to the B+-tree: postings start
    with their Dewey ID, so the list page is self-describing.
    """
    count, offset = decode_varint(page, 0)
    entries: List[Tuple[DeweyId, bytes]] = []
    for _ in range(count):
        length, offset = decode_varint(page, offset)
        record = page[offset : offset + length]
        offset += length
        dewey, _ = DeweyId.decode(record, 0)
        entries.append((dewey, record))
    return entries


class HDILIndex(KeywordIndex):
    """Hybrid Dewey Inverted List index."""

    kind = "hdil"

    def __init__(
        self,
        storage_params: Optional[StorageParams] = None,
        hdil_params: Optional[HDILParams] = None,
    ):
        super().__init__(storage_params)
        self.params = hdil_params or HDILParams()
        self.full_lists: Dict[str, ListFile] = {}
        self.ranked_heads: Dict[str, ListFile] = {}
        self.btrees: Dict[str, BTree] = {}

    def build(self, postings: PostingMap) -> None:
        """Write full lists, ranked heads, and external-leaf B+-trees."""
        self.full_lists = {}
        self.ranked_heads = {}
        self.btrees = {}
        for keyword in sorted(postings):
            ordered = postings[keyword]
            records = [posting.encode() for posting in ordered]
            self.full_lists[keyword] = ListFile.write(
                self.disk, records, owner=f"hdil:{keyword}"
            )
        for keyword in sorted(postings):
            ordered = postings[keyword]
            head_size = max(
                self.params.min_rank_entries,
                int(len(ordered) * self.params.rank_fraction),
            )
            head = rank_order(ordered)[:head_size]
            self.ranked_heads[keyword] = ListFile.write(
                self.disk,
                [posting.encode() for posting in head],
                owner=f"hdil-head:{keyword}",
            )
        for keyword in sorted(postings):
            list_file = self.full_lists[keyword]
            if not list_file.page_ids:
                continue
            ordered = postings[keyword]
            page_index = [
                (ordered[first_record].dewey, page_id)
                for page_id, first_record in zip(
                    list_file.page_ids, list_file.page_boundaries
                )
            ]
            self.btrees[keyword] = BTree.build_over_pages(
                self.disk,
                page_index,
                leaf_decoder=decode_list_page,
                num_entries=list_file.num_records,
            )
        self._mark_built(postings)

    # -- keyword surface --------------------------------------------------------------

    def keywords(self) -> Iterable[str]:
        """All indexed keywords."""
        return self.full_lists.keys()

    def has_keyword(self, keyword: str) -> bool:
        """True when the keyword has an inverted list."""
        return keyword in self.full_lists

    def list_length(self, keyword: str) -> int:
        """Postings in the keyword's full list (0 if absent)."""
        list_file = self.full_lists.get(keyword)
        return list_file.num_records if list_file else 0

    def head_length(self, keyword: str) -> int:
        """Postings replicated in the rank-ordered head."""
        head = self.ranked_heads.get(keyword)
        return head.num_records if head else 0

    # -- access -----------------------------------------------------------------------------

    def full_cursor(self, keyword: str) -> Optional[ListCursor]:
        """Cursor over the Dewey-ordered full list (DIL mode)."""
        self._require_built()
        list_file = self.full_lists.get(keyword)
        return ListCursor(list_file) if list_file else None

    def ranked_cursor(self, keyword: str) -> Optional[ListCursor]:
        """Cursor over the rank-ordered head (RDIL mode)."""
        self._require_built()
        head = self.ranked_heads.get(keyword)
        return ListCursor(head) if head else None

    def btree(self, keyword: str) -> Optional[BTree]:
        """The keyword's external-leaf Dewey B+-tree, if any."""
        self._require_built()
        return self.btrees.get(keyword)

    def total_full_pages(self, keywords: Iterable[str]) -> int:
        """Pages a DIL-mode scan of these keywords would read."""
        self._require_built()
        missing = [k for k in keywords if k not in self.full_lists]
        if missing:
            raise IndexError_(f"keywords not indexed: {missing}")
        return sum(self.full_lists[k].num_pages for k in keywords)

    # -- accounting ---------------------------------------------------------------------------

    @property
    def inverted_list_bytes(self) -> int:
        # Full lists + the replicated rank-ordered heads: "the size of the
        # inverted list for HDIL is a bit higher than that for DIL".
        return sum(f.byte_size for f in self.full_lists.values()) + sum(
            h.byte_size for h in self.ranked_heads.values()
        )

    @property
    def index_bytes(self) -> Optional[int]:
        # Internal B+-tree nodes only; the leaf level is the list itself.
        return sum(tree.internal_bytes for tree in self.btrees.values())
