"""Query-dependent HITS re-ranking (paper Section 3.1, footnote 1).

ElemRank is query-independent, computed offline like PageRank.  The paper
notes its containment refinements "also work for query-dependent algorithms
like HITS [24]".  This module completes that thought with the classic
Kleinberg procedure adapted to elements:

1. the *root set* is the top-k keyword results (their elements);
2. the *base set* expands the root set along hyperlink edges (both
   directions) and, optionally, containment edges — the paper's
   bidirectional coupling;
3. HITS runs on the induced subgraph;
4. results are re-ranked by blending their original XRANK rank with their
   element's authority score.

Because re-ranking happens after top-k retrieval, it composes with any
evaluator, any index kind and any scorer.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..errors import QueryError
from ..ranking.hits import hits
from ..xmlmodel.graph import CollectionGraph
from .results import QueryResult


def build_base_set(
    graph: CollectionGraph,
    root_indices: Set[int],
    include_containment: bool = True,
) -> Tuple[List[int], List[Tuple[int, int]]]:
    """Expand a root set one hop and collect the induced edges.

    Returns (member element indices, edges re-indexed into that member
    list).  Expansion order matters: keyword results are often *leaf*
    elements while hyperlinks land on their ancestors, so the root set is
    first closed under containment ancestors, then hyperlink neighbours in
    both directions join, then the neighbours' ancestor chains — giving the
    bidirectional containment coupling a path from link targets down to the
    result elements.
    """
    members: Set[int] = set(root_indices)

    def add_ancestors(indices: Set[int]) -> None:
        for index in list(indices):
            parent = graph.parent_index[index]
            while parent >= 0 and parent not in members:
                members.add(parent)
                parent = graph.parent_index[parent]

    if include_containment:
        add_ancestors(members)
    linked: Set[int] = set()
    for src, dst in graph.hyperlink_edges:
        if src in members:
            linked.add(dst)
        if dst in members:
            linked.add(src)
    members.update(linked)
    if include_containment:
        add_ancestors(linked)

    ordered = sorted(members)
    local = {global_index: i for i, global_index in enumerate(ordered)}
    edges: List[Tuple[int, int]] = []
    for src, dst in graph.hyperlink_edges:
        if src in members and dst in members:
            edges.append((local[src], local[dst]))
    if include_containment:
        for global_index in ordered:
            parent = graph.parent_index[global_index]
            if parent >= 0 and parent in members:
                edges.append((local[parent], local[global_index]))
                edges.append((local[global_index], local[parent]))
    return ordered, edges


def hits_rerank(
    results: Sequence[QueryResult],
    graph: CollectionGraph,
    blend: float = 0.5,
    include_containment: bool = True,
    decay: float = 0.75,
) -> List[QueryResult]:
    """Re-rank keyword results by blending in query-dependent authority.

    A result element's effective authority is the best of its own score and
    its ancestors' scores decayed per containment level — the same forward
    propagation idea ElemRank uses (HITS alternation otherwise parks all
    authority on the hyperlink *targets*, typically the results' ancestors,
    and none on the leaf results themselves).

    Args:
        results: evaluator output (Dewey-identified).
        graph: the collection graph the results came from.
        blend: weight of the authority component in [0, 1]; 0 returns the
            original ordering, 1 orders purely by authority.  Both
            components are max-normalized before blending so neither scale
            dominates.
        include_containment: couple containment edges into the HITS run.
        decay: per-level decay for inherited ancestor authority.
    """
    if not 0.0 <= blend <= 1.0:
        raise QueryError(f"blend must be in [0, 1], got {blend}")
    if not results:
        return []
    if not graph.finalized:
        graph.finalize()

    root: Set[int] = set()
    for result in results:
        if result.dewey is None:
            raise QueryError("HITS re-ranking needs Dewey-identified results")
        index = graph.index_of.get(result.dewey)
        if index is not None:
            root.add(index)
    members, edges = build_base_set(graph, root, include_containment)
    outcome = hits(len(members), edges)
    local = {global_index: i for i, global_index in enumerate(members)}

    max_rank = max(result.rank for result in results) or 1.0
    max_authority = float(outcome.authorities.max()) if len(members) else 0.0

    def effective_authority(global_index: int) -> float:
        best = 0.0
        factor = 1.0
        index = global_index
        while index >= 0:
            if index in local:
                best = max(best, factor * float(outcome.authorities[local[index]]))
            index = graph.parent_index[index]
            factor *= decay
        return best

    blended: List[QueryResult] = []
    for result in results:
        index = graph.index_of.get(result.dewey)
        authority = 0.0
        if index is not None and max_authority > 0:
            authority = effective_authority(index) / max_authority
        score = (1.0 - blend) * (result.rank / max_rank) + blend * authority
        blended.append(
            QueryResult(
                rank=score,
                dewey=result.dewey,
                elem_id=result.elem_id,
                keyword_ranks=result.keyword_ranks,
                proximity=result.proximity,
            )
        )
    blended.sort(key=lambda r: -r.rank)
    return blended
