"""Tests for the HITS variant (paper Section 3.1 footnote 1)."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.ranking.hits import element_hits, hits
from repro.xmlmodel.graph import CollectionGraph
from repro.xmlmodel.parser import parse_xml


class TestHits:
    def test_authority_concentrates_on_pointed_node(self):
        # Nodes 1..4 all point at node 0.
        result = hits(5, [(i, 0) for i in range(1, 5)])
        assert result.converged
        assert np.argmax(result.authorities) == 0
        # The pointers are the hubs.
        assert result.authorities[1] == pytest.approx(0.0, abs=1e-6)
        assert result.hubs[0] == pytest.approx(0.0, abs=1e-6)

    def test_hub_and_authority_split(self):
        # 0 -> {2,3}, 1 -> {2,3}: 0,1 are hubs; 2,3 authorities.
        result = hits(4, [(0, 2), (0, 3), (1, 2), (1, 3)])
        assert result.hubs[0] == pytest.approx(result.hubs[1])
        assert result.authorities[2] == pytest.approx(result.authorities[3])
        assert result.authorities[2] > result.authorities[0]

    def test_unit_norm(self):
        result = hits(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        assert np.linalg.norm(result.authorities) == pytest.approx(1.0)
        assert np.linalg.norm(result.hubs) == pytest.approx(1.0)

    def test_empty_graph(self):
        result = hits(0, [])
        assert result.converged
        assert len(result.authorities) == 0

    def test_no_edges(self):
        result = hits(3, [])
        assert result.converged
        # With no edges everything collapses to zero after one iteration.
        assert result.authorities.sum() == pytest.approx(0.0)

    def test_divergence_raises(self):
        with pytest.raises(ConvergenceError):
            hits(
                4,
                [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
                threshold=1e-30,
                max_iterations=2,
                raise_on_divergence=True,
            )


class TestElementHits:
    @pytest.fixture()
    def graph(self):
        graph = CollectionGraph()
        graph.add_document(
            parse_xml('<w><p id="x"><t>target</t></p></w>', doc_id=0, uri="doc0")
        )
        for i in range(1, 5):
            graph.add_document(
                parse_xml(f'<c><r xlink="doc0#x"/></c>', doc_id=i, uri=f"doc{i}")
            )
        graph.finalize()
        return graph

    def test_cited_element_is_top_authority(self, graph):
        result = element_hits(graph, include_containment=False)
        target = [
            e for e in graph.elements
            if e.tag == "p"
        ][0]
        assert np.argmax(result.authorities) == graph.index_of[target.dewey]

    def test_containment_spreads_authority(self, graph):
        with_containment = element_hits(graph, include_containment=True)
        without = element_hits(graph, include_containment=False)
        title = [e for e in graph.elements if e.tag == "t"][0]
        index = graph.index_of[title.dewey]
        # Pure hyperlink HITS gives the <t> child exactly nothing;
        # bidirectional containment coupling lets (a trickle of) authority
        # reach it — strictly positive, unlike the hyperlink-only run.
        assert without.authorities[index] == pytest.approx(0.0, abs=1e-12)
        assert with_containment.authorities[index] > 1e-12
        assert with_containment.authorities[index] > without.authorities[index]
