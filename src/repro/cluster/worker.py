"""Shard workers: one :class:`XRankEngine` per corpus shard, served HTTP.

A worker is the cluster's unit of capacity and of failure.  It hosts one
engine built over exactly one shard of the corpus — the shard assignment
comes from :func:`repro.build.shard.shard_specs`, the same deterministic
LPT plan the parallel build uses, so a cluster shard is byte-identical
to the corresponding parallel-build shard — wrapped in the existing
:class:`~repro.service.core.XRankService` (locks, caches, admission,
breaker) and :class:`~repro.service.server.XRankHTTPServer`.  The
coordinator talks to workers over the same ``/search`` JSON protocol any
client uses; there is no separate RPC stack to harden.

Replica bring-up rides on engine snapshots: ``ShardWorker.snapshot``
persists the built engine (indexes, incremental delta, tombstones and
all), and :meth:`ShardWorker.from_snapshot` restores a fresh replica
without re-parsing or re-ranking — the path the failover tests and the
cluster chaos harness use to resurrect killed replicas.
"""

from __future__ import annotations

import socket
import sys
import threading
from typing import Dict, List, Optional, Sequence

from ..build.shard import DocumentSpec
from ..config import XRankConfig
from ..engine import XRankEngine
from ..errors import ClusterError
from ..service.concurrency import GuardedLock
from ..service.core import XRankService
from ..service.server import XRankHTTPServer
from ..xmlmodel.html import parse_html
from ..xmlmodel.nodes import Document
from ..xmlmodel.parser import parse_xml
from .stats import GlobalStats

#: Index kinds a cluster worker builds by default: the headline HDIL plus
#: DIL so the per-worker circuit breaker has its fallback in place.
DEFAULT_CLUSTER_KINDS = ("dil", "hdil")


class _WorkerHTTPServer(XRankHTTPServer):
    """An :class:`XRankHTTPServer` that can sever live connections.

    ``server_close()`` only closes the *listening* socket; established
    keep-alive connections keep being serviced by their handler threads,
    so a worker stopped that way would keep answering pooled clients —
    nothing like a crashed process.  Client sockets are therefore
    tracked so :meth:`close_client_connections` can shut them down,
    giving ``ShardWorker.kill()`` crash-realistic semantics (in-flight
    and pooled connections die with the worker)."""

    def __init__(self, address, service):
        super().__init__(address, service)
        self._sockets_lock = GuardedLock("worker.sockets")
        self._client_sockets = set()  # guarded by: self._sockets_lock

    def process_request(self, request, client_address):
        with self._sockets_lock:
            self._client_sockets.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request):
        with self._sockets_lock:
            self._client_sockets.discard(request)
        super().shutdown_request(request)

    def close_client_connections(self) -> None:
        """Sever every established connection (handler threads clean up)."""
        with self._sockets_lock:
            sockets = list(self._client_sockets)
        for request in sockets:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already closing on its own

    def handle_error(self, request, client_address):
        # Severed sockets (kill()) surface as connection resets in their
        # handler threads; that is the intended crash simulation, not an
        # error worth a traceback on stderr.
        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionResetError, BrokenPipeError)):
            return
        super().handle_error(request, client_address)


def parse_spec(spec: DocumentSpec) -> Document:
    """Parse one document spec with its pre-assigned global doc id.

    Doc ids are assigned before sharding (exactly as in the parallel
    build), so the Dewey IDs a worker produces are independent of which
    worker parses the document — the property that lets global ElemRanks
    (keyed by Dewey ID) land on shard-local postings.
    """
    if spec.source is not None:
        source = spec.source
    elif spec.path is not None:
        with open(spec.path, "r", encoding="utf-8", errors="replace") as fh:
            source = fh.read()
    else:
        raise ClusterError(f"document spec {spec.doc_id} has no source or path")
    if spec.is_html:
        return parse_html(source, doc_id=spec.doc_id, uri=spec.uri)
    return parse_xml(source, doc_id=spec.doc_id, uri=spec.uri)


def build_shard_engine(
    specs: Sequence[DocumentSpec],
    stats: GlobalStats,
    kinds: Sequence[str] = DEFAULT_CLUSTER_KINDS,
    config: Optional[XRankConfig] = None,
) -> XRankEngine:
    """Build one shard's engine with globally comparable scores.

    Parses the shard's documents (global doc ids preserved), then builds
    with ``elemrank_overrides`` from the global-statistics exchange —
    never shard-local link analysis.  Coverage is checked up front so a
    stale or truncated stats payload fails the build rather than
    producing silently skewed rankings.
    """
    if not specs:
        raise ClusterError("a shard must hold at least one document")
    engine = XRankEngine(config=config)
    for spec in sorted(specs, key=lambda s: s.doc_id):
        engine.add_document(parse_spec(spec))
    engine.graph.finalize()
    stats.require_coverage(engine.graph)
    engine.build(kinds=kinds, elemrank_overrides=stats.elemrank_mapping())
    return engine


class ShardWorker:
    """One shard replica: engine + service + HTTP server on its own port."""

    def __init__(
        self,
        engine: XRankEngine,
        shard_id: int,
        replica_id: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        kinds: Optional[Sequence[str]] = None,
        default_deadline_ms: Optional[float] = None,
        result_cache_size: int = 256,
        list_cache_size: int = 256,
        tracer=None,
        snapshot_store=None,
        profile: bool = False,
    ):
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.engine = engine
        self.snapshot_store = snapshot_store
        self.service = XRankService(
            engine,
            kinds=tuple(kinds) if kinds else None,
            result_cache_size=result_cache_size,
            list_cache_size=list_cache_size,
            default_deadline_ms=default_deadline_ms,
            tracer=tracer,
            snapshot_store=snapshot_store,
            profile=profile,
        )
        self._host = host
        self._requested_port = port
        self._server: Optional[_WorkerHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------------

    @property
    def name(self) -> str:
        return f"shard{self.shard_id}/replica{self.replica_id}"

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        if self._server is None:
            raise ClusterError(f"worker {self.name} is not running")
        return self._server.server_address[1]

    def start(self) -> "ShardWorker":
        """Bind (ephemeral port by default) and serve on a daemon thread."""
        if self._server is not None:
            return self
        self._server = _WorkerHTTPServer(
            (self._host, self._requested_port), self.service
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"xrank-{self.name}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the HTTP server down; the engine stays queryable in-process."""
        server, thread = self._server, self._thread
        self._server = None
        self._thread = None
        if server is not None:
            server.shutdown()
            server.close_client_connections()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5)

    def kill(self) -> None:
        """Chaos-harness alias: drop the listener like a crashed process."""
        self.stop()

    # -- snapshots (replica bring-up) ----------------------------------------------

    def snapshot(self, path) -> None:
        """Persist the built engine for replica bring-up."""
        self.engine.save(path)

    @classmethod
    def from_snapshot(
        cls,
        path,
        shard_id: int,
        replica_id: int,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_options,
    ) -> "ShardWorker":
        """Restore a replica from a snapshot written by :meth:`snapshot`."""
        engine = XRankEngine.load(path)
        return cls(
            engine,
            shard_id=shard_id,
            replica_id=replica_id,
            host=host,
            port=port,
            **service_options,
        )

    def persist(self, store=None, span=None):
        """Commit this worker's engine as the next snapshot generation."""
        store = store if store is not None else self.snapshot_store
        if store is None:
            raise ClusterError(
                f"worker {self.name} has no snapshot store to persist to"
            )
        return store.save(self.engine, span=span)

    @classmethod
    def rejoin_from_store(
        cls,
        store,
        shard_id: int,
        replica_id: int,
        stats: Optional[GlobalStats] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        span=None,
        **service_options,
    ) -> "ShardWorker":
        """Restart-after-crash: recover the shard from its snapshot store.

        The full rejoin contract, in order:

        1. recover the newest intact generation from ``store`` (falling
           back past crash wreckage — see
           :meth:`~repro.durability.SnapshotStore.recover`);
        2. re-verify the global-statistics coverage check against the
           recovered graph, so a stale snapshot that no longer covers
           the shard fails loudly (:class:`~repro.errors.
           StatsExchangeError`) instead of serving rankings that are no
           longer globally comparable;
        3. construct the replacement worker (the caller starts it and
           re-registers the endpoint with the coordinator).

        Traced as a ``worker.rejoin`` span with the recovered generation
        and whether recovery had to fall back.
        """
        from ..obs import NOOP_SPAN

        span = (span if span is not None else NOOP_SPAN).child(
            "worker.rejoin", shard=shard_id, replica=replica_id
        )
        with span:
            engine, info = store.recover(span=span)
            if stats is not None:
                stats.require_coverage(engine.graph)
                span.event("coverage_reverified")
            worker = cls(
                engine,
                shard_id=shard_id,
                replica_id=replica_id,
                host=host,
                port=port,
                snapshot_store=store,
                **service_options,
            )
            span.event("rejoined", generation=info.number)
            # The rejoin predates the worker's own event log, so the
            # recovery record lands there the moment the log exists.
            worker.service.events.emit(
                "snapshot_recovered",
                shard=shard_id,
                replica=replica_id,
                generation=info.number,
                fell_back=bool(getattr(info, "fell_back", False)),
            )
            worker.service.events.emit(
                "worker_rejoin", shard=shard_id, replica=replica_id
            )
        return worker

    # -- introspection ---------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """JSON-ready identity + corpus slice summary."""
        return {
            "shard": self.shard_id,
            "replica": self.replica_id,
            "running": self.running,
            "documents": self.engine.graph.num_documents,
            "doc_ids": sorted(self.engine.graph.documents),
            "kinds": sorted(self.engine._indexes),
        }


def specs_from_sources(sources: Sequence) -> List[DocumentSpec]:
    """Normalize raw corpus sources into doc-id-assigned specs.

    Accepts what :meth:`XRankEngine.build` accepts for string corpora:
    XML source strings or ``(source, uri)`` pairs.  Ids are assigned in
    input order, 0-based — matching what a single-node
    ``engine.build(corpus=sources)`` over the same list would assign, so
    the cluster and its single-node oracle agree on every Dewey ID.
    """
    specs: List[DocumentSpec] = []
    for doc_id, item in enumerate(sources):
        if isinstance(item, DocumentSpec):
            specs.append(DocumentSpec(
                doc_id=doc_id,
                uri=item.uri,
                source=item.source,
                path=item.path,
                is_html=item.is_html,
                cost=item.cost,
            ))
        elif isinstance(item, tuple):
            source, uri = item
            specs.append(DocumentSpec(doc_id=doc_id, uri=uri, source=source))
        else:
            specs.append(
                DocumentSpec(
                    doc_id=doc_id, uri=f"doc{doc_id}", source=str(item)
                )
            )
    return specs
