"""Per-rule positive/negative fixtures for the repro.analysis linter."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.linter import LintConfig, Linter, load_lint_config
from repro.analysis.rules import ALL_RULES, default_rules

QUERY_PATH = "src/repro/query/fixture_eval.py"
SERVICE_PATH = "src/repro/service/fixture_core.py"
ENGINE_PATH = "src/repro/engine.py"


@pytest.fixture
def linter() -> Linter:
    return Linter(ALL_RULES)


def lint(linter: Linter, source: str, path: str):
    return linter.lint_source(textwrap.dedent(source), path)


def rule_ids(violations):
    return [v.rule for v in violations]


# -- deadline-discipline -----------------------------------------------------------


class TestDeadlineDiscipline:
    def test_unpolled_stream_loop_fires(self, linter):
        violations = lint(
            linter,
            """
            def evaluate(streams, m, deadline=None):
                results = []
                while not streams[0].eof:
                    results.append(streams[0].next())
                return results
            """,
            QUERY_PATH,
        )
        assert rule_ids(violations) == ["deadline-discipline"]
        assert "never polls" in violations[0].message

    def test_missing_deadline_parameter_fires(self, linter):
        violations = lint(
            linter,
            """
            def qualify(stream):
                while not stream.eof:
                    stream.next()
            """,
            QUERY_PATH,
        )
        assert rule_ids(violations) == ["deadline-discipline"]
        assert "no `deadline` parameter" in violations[0].message

    def test_merge_iteration_without_deadline_fires(self, linter):
        violations = lint(
            linter,
            """
            def qualify(streams, params):
                for result in conjunctive_merge(streams, params):
                    return result
            """,
            QUERY_PATH,
        )
        assert rule_ids(violations) == ["deadline-discipline"]

    def test_polling_loop_is_clean(self, linter):
        violations = lint(
            linter,
            """
            def evaluate(streams, deadline=None):
                while not streams[0].eof:
                    if deadline is not None and deadline.poll():
                        break
                    streams[0].next()
            """,
            QUERY_PATH,
        )
        assert violations == []

    def test_forwarding_deadline_into_merge_is_clean(self, linter):
        violations = lint(
            linter,
            """
            def evaluate(streams, params, deadline=None):
                for result in conjunctive_merge(streams, params, deadline=deadline):
                    yield_result(result)
            """,
            QUERY_PATH,
        )
        assert violations == []

    def test_generators_are_exempt(self, linter):
        violations = lint(
            linter,
            """
            def merge(streams):
                while not streams[0].eof:
                    yield streams[0].next()
            """,
            QUERY_PATH,
        )
        assert violations == []

    def test_inner_loop_blamed_not_outer(self, linter):
        # The advancing call sits in the inner loop; the outer polling
        # loop must not satisfy the inner loop's obligation.
        violations = lint(
            linter,
            """
            def evaluate(groups, deadline=None):
                for group in groups:
                    if deadline.poll():
                        break
                    for stream in group:
                        stream.next()
            """,
            QUERY_PATH,
        )
        assert rule_ids(violations) == ["deadline-discipline"]

    def test_rule_scoped_to_query_paths(self, linter):
        violations = lint(
            linter,
            """
            def drain(cursor):
                while not cursor.eof:
                    cursor.next()
            """,
            "src/repro/storage/listfile.py",
        )
        assert violations == []


# -- lock-discipline ---------------------------------------------------------------


class TestLockDiscipline:
    def test_unlocked_engine_access_fires(self, linter):
        violations = lint(
            linter,
            """
            class Service:
                def stats(self):
                    return self.engine.generation
            """,
            SERVICE_PATH,
        )
        assert rule_ids(violations) == ["lock-discipline"]
        assert "self.engine.generation" in violations[0].message

    def test_read_locked_access_is_clean(self, linter):
        violations = lint(
            linter,
            """
            class Service:
                def stats(self):
                    with self.lock.read():
                        return self.engine.generation
            """,
            SERVICE_PATH,
        )
        assert violations == []

    def test_write_locked_access_is_clean(self, linter):
        violations = lint(
            linter,
            """
            class Service:
                def mutate(self, source):
                    with self.lock.write():
                        self.engine.add_xml(source)
            """,
            SERVICE_PATH,
        )
        assert violations == []

    def test_access_after_lock_released_fires(self, linter):
        violations = lint(
            linter,
            """
            class Service:
                def mutate(self, source):
                    with self.lock.write():
                        self.engine.add_xml(source)
                    return self.engine.generation
            """,
            SERVICE_PATH,
        )
        assert rule_ids(violations) == ["lock-discipline"]

    def test_init_is_exempt(self, linter):
        violations = lint(
            linter,
            """
            class Service:
                def __init__(self, engine):
                    self.engine = engine
                    self.kinds = sorted(engine._indexes)
            """,
            SERVICE_PATH,
        )
        assert violations == []

    def test_bare_engine_reference_is_not_flagged(self, linter):
        violations = lint(
            linter,
            """
            class Service:
                def handoff(self):
                    return make_helper(self.engine)
            """,
            SERVICE_PATH,
        )
        assert violations == []

    def test_non_lock_context_does_not_count(self, linter):
        violations = lint(
            linter,
            """
            class Service:
                def stats(self):
                    with self.timer.read():
                        return self.engine.generation
            """,
            SERVICE_PATH,
        )
        assert rule_ids(violations) == ["lock-discipline"]

    def test_rule_scoped_to_service_paths(self, linter):
        violations = lint(
            linter,
            """
            def helper(engine):
                return engine.generation
            """,
            "src/repro/cli.py",
        )
        assert violations == []


# -- cache-generation --------------------------------------------------------------


class TestCacheGeneration:
    def test_mutation_without_bump_fires(self, linter):
        violations = lint(
            linter,
            """
            class Engine:
                def __init__(self):
                    self.generation = 0
                def rebuild(self):
                    self._indexes = {}
            """,
            ENGINE_PATH,
        )
        assert rule_ids(violations) == ["cache-generation"]
        assert "Engine.rebuild()" in violations[0].message

    def test_mutation_with_bump_is_clean(self, linter):
        violations = lint(
            linter,
            """
            class Engine:
                def __init__(self):
                    self.generation = 0
                def rebuild(self):
                    self._indexes = {}
                    self.generation += 1
            """,
            ENGINE_PATH,
        )
        assert violations == []

    def test_transitive_bump_through_helper_is_clean(self, linter):
        violations = lint(
            linter,
            """
            class Engine:
                def __init__(self):
                    self.generation = 0
                def add(self, document):
                    self.graph.add_document(document)
                    self._invalidate()
                def _invalidate(self):
                    self._indexes = {}
                    self.generation += 1
            """,
            ENGINE_PATH,
        )
        assert violations == []

    def test_mutating_call_without_bump_fires(self, linter):
        violations = lint(
            linter,
            """
            class Engine:
                def __init__(self):
                    self.generation = 0
                def add(self, document):
                    self.graph.add_document(document)
            """,
            ENGINE_PATH,
        )
        assert rule_ids(violations) == ["cache-generation"]

    def test_private_helpers_are_exempt(self, linter):
        violations = lint(
            linter,
            """
            class Engine:
                def __init__(self):
                    self.generation = 0
                def build(self):
                    self._build_kind()
                    self.generation += 1
                def _build_kind(self):
                    self._indexes["k"] = make_index()
            """,
            ENGINE_PATH,
        )
        assert violations == []

    def test_classes_without_generation_are_exempt(self, linter):
        violations = lint(
            linter,
            """
            class Helper:
                def rebuild(self):
                    self._indexes = {}
            """,
            ENGINE_PATH,
        )
        assert violations == []


# -- general rules -----------------------------------------------------------------


class TestGeneralRules:
    def test_bare_except_fires_anywhere(self, linter):
        violations = lint(
            linter,
            """
            def load(path):
                try:
                    return open(path)
                except:
                    return None
            """,
            "src/repro/anything.py",
        )
        assert rule_ids(violations) == ["bare-except"]

    def test_typed_except_is_clean(self, linter):
        violations = lint(
            linter,
            """
            def load(path):
                try:
                    return open(path)
                except OSError:
                    return None
            """,
            "src/repro/anything.py",
        )
        assert violations == []

    def test_mutable_default_fires(self, linter):
        violations = lint(
            linter,
            """
            def search(query, cache={}, kinds=[], names=set()):
                return cache
            """,
            "src/repro/anything.py",
        )
        assert rule_ids(violations) == ["mutable-default"] * 3

    def test_mutable_call_default_fires(self, linter):
        violations = lint(
            linter,
            """
            def search(query, cache=dict()):
                return cache
            """,
            "src/repro/anything.py",
        )
        assert rule_ids(violations) == ["mutable-default"]

    def test_none_default_is_clean(self, linter):
        violations = lint(
            linter,
            """
            def search(query, cache=None, limit=10, name=("a",)):
                return cache
            """,
            "src/repro/anything.py",
        )
        assert violations == []

    def test_wall_clock_in_query_path_fires(self, linter):
        violations = lint(
            linter,
            """
            import time
            def score(posting):
                return posting.rank * time.time()
            """,
            QUERY_PATH,
        )
        assert rule_ids(violations) == ["wall-clock"]

    def test_random_in_ranking_path_fires(self, linter):
        violations = lint(
            linter,
            """
            import random
            def jitter(rank):
                return rank + random.random()
            """,
            "src/repro/ranking/fixture.py",
        )
        assert rule_ids(violations) == ["wall-clock"]

    def test_monotonic_clocks_allowed(self, linter):
        violations = lint(
            linter,
            """
            import time
            def timed(fn):
                start = time.perf_counter()
                fn()
                return time.monotonic(), time.perf_counter() - start
            """,
            QUERY_PATH,
        )
        assert violations == []

    def test_wall_clock_outside_scoped_paths_allowed(self, linter):
        violations = lint(
            linter,
            """
            import time
            def timestamp():
                return time.time()
            """,
            "src/repro/service/metrics_fixture.py",
        )
        assert violations == []


# -- suppressions and configuration ------------------------------------------------


class TestSuppressionAndConfig:
    BAD = """
    def load(path):
        try:
            return open(path)
        except:{comment}
            return None
    """

    def test_targeted_suppression(self, linter):
        source = self.BAD.format(comment="  # repro: ignore[bare-except]")
        assert lint(linter, source, "src/repro/x.py") == []

    def test_wildcard_suppression(self, linter):
        source = self.BAD.format(comment="  # repro: ignore")
        assert lint(linter, source, "src/repro/x.py") == []

    def test_unrelated_suppression_keeps_violation(self, linter):
        source = self.BAD.format(comment="  # repro: ignore[wall-clock]")
        assert rule_ids(lint(linter, source, "src/repro/x.py")) == ["bare-except"]

    def test_suppression_is_line_scoped(self, linter):
        source = """
        # repro: ignore[bare-except]
        def load(path):
            try:
                return open(path)
            except:
                return None
        """
        assert rule_ids(lint(linter, source, "src/repro/x.py")) == ["bare-except"]

    def test_config_disable(self):
        config = LintConfig(disable=["bare-except"])
        rules = default_rules(config)
        assert "bare-except" not in [r.rule_id for r in rules]
        assert len(rules) == len(ALL_RULES) - 1

    def test_config_enable_allowlist(self):
        config = LintConfig(enable=["wall-clock"])
        assert [r.rule_id for r in default_rules(config)] == ["wall-clock"]

    def test_load_config_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.check]\ndisable = ['wall-clock']\npaths = ['src']\n"
        )
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        config = load_lint_config(start=nested)
        assert config.disable == ["wall-clock"]
        assert config.paths == ["src"]

    def test_load_config_defaults_without_pyproject(self, tmp_path):
        config = load_lint_config(start=tmp_path)
        assert config.disable == [] and config.paths == []

    def test_duplicate_rule_ids_rejected(self):
        with pytest.raises(ValueError):
            Linter([ALL_RULES[0], ALL_RULES[0]])

    def test_syntax_error_reported_not_raised(self, linter):
        violations = linter.lint_source("def broken(:\n", "src/repro/x.py")
        assert rule_ids(violations) == ["syntax"]

    def test_repo_source_tree_is_clean(self, linter):
        from pathlib import Path

        import repro

        package_root = Path(repro.__file__).parent
        assert linter.lint_paths([package_root]) == []
