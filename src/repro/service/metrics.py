"""Service metrics: QPS, latency percentiles, cache hit rate, queue depth.

All counters live behind one lock and are cheap to update from request
threads.  Latencies go into a bounded ring (the most recent ~4k
observations) — enough for stable p50/p95/p99 without unbounded memory —
and completion timestamps into a parallel ring so QPS can be computed
over a sliding window rather than diluted over the whole process uptime.
The /stats endpoint folds in the storage layer's :class:`IOStats`
counters, giving one place to watch both serving health and simulated
I/O behaviour.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional, Sequence

from .concurrency import GuardedLock


#: Upper bucket bounds (milliseconds) for latency histograms.  Fixed and
#: shared so per-stage histograms line up column-for-column on a
#: dashboard; the final implicit bucket is +inf.
HISTOGRAM_BUCKETS_MS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)


class Histogram:
    """Fixed-bucket latency histogram (cumulative, Prometheus-style).

    Not itself thread-safe: :class:`ServiceMetrics` mutates instances
    only while holding its own lock.
    """

    __slots__ = ("counts", "count", "sum_ms")

    def __init__(self):
        self.counts = [0] * (len(HISTOGRAM_BUCKETS_MS) + 1)
        self.count = 0
        self.sum_ms = 0.0

    def observe(self, value_ms: float) -> None:
        """Add one observation (milliseconds)."""
        self.count += 1
        self.sum_ms += value_ms
        for position, bound in enumerate(HISTOGRAM_BUCKETS_MS):
            if value_ms <= bound:
                self.counts[position] += 1
                return
        self.counts[-1] += 1

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready cumulative view: ``le_<bound>`` buckets + count/sum."""
        buckets: Dict[str, int] = {}
        running = 0
        for position, bound in enumerate(HISTOGRAM_BUCKETS_MS):
            running += self.counts[position]
            buckets[f"le_{bound}ms"] = running
        buckets["le_inf"] = running + self.counts[-1]
        return {
            "count": self.count,
            "sum_ms": self.sum_ms,
            "buckets": buckets,
        }


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation; 0.0 if empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100.0) * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


class ServiceMetrics:
    """Thread-safe counters + latency/QPS windows for one service.

    ``slo`` (optional) is a :class:`repro.obs.slo.SLOMonitor`: every
    recorded search/error/rejection is forwarded so burn rates track
    the same request stream as the counters, with no second
    accounting path for callers to forget.
    """

    def __init__(self, window: int = 4096, clock=time.monotonic, slo=None):
        self._clock = clock
        self._lock = GuardedLock("metrics")
        self.slo = slo
        self._started = clock()
        self._latencies_ms: deque = deque(maxlen=window)  # guarded by: self._lock
        self._completions: deque = deque(maxlen=window)  # guarded by: self._lock
        self.searches = 0  # guarded by: self._lock
        self.adds = 0  # guarded by: self._lock
        self.result_cache_hits = 0  # guarded by: self._lock
        self.result_cache_misses = 0  # guarded by: self._lock
        self.degraded = 0  # guarded by: self._lock
        self.rejected = 0  # guarded by: self._lock
        self.errors = 0  # guarded by: self._lock
        self.storage_faults = 0  # guarded by: self._lock
        self.fault_fallbacks = 0  # guarded by: self._lock
        self._stages: Dict[str, Histogram] = {}  # guarded by: self._lock

    # -- recording -------------------------------------------------------------

    def record_search(
        self, latency_ms: float, cached: bool, degraded: bool
    ) -> None:
        """Account one completed search request."""
        with self._lock:
            self.searches += 1
            if cached:
                self.result_cache_hits += 1
            else:
                self.result_cache_misses += 1
            if degraded:
                self.degraded += 1
            self._latencies_ms.append(latency_ms)
            self._completions.append(self._clock())
        if self.slo is not None:
            self.slo.record_search(latency_ms)

    def record_add(self, latency_ms: float) -> None:
        """Account one completed document-add request."""
        with self._lock:
            self.adds += 1
            self._completions.append(self._clock())

    def record_rejection(self) -> None:
        """Account one admission rejection (503)."""
        with self._lock:
            self.rejected += 1
        if self.slo is not None:
            self.slo.record_rejection()

    def record_error(self) -> None:
        """Account one failed request (500-class)."""
        with self._lock:
            self.errors += 1
        if self.slo is not None:
            self.slo.record_error()

    def record_storage_fault(self) -> None:
        """Account one storage fault observed while serving a query."""
        with self._lock:
            self.storage_faults += 1

    def record_fault_fallback(self) -> None:
        """Account one query rerouted to a fallback index kind."""
        with self._lock:
            self.fault_fallbacks += 1

    def observe_stage(self, stage: str, latency_ms: float) -> None:
        """Add one observation to a named per-stage latency histogram.

        Stages mirror the span taxonomy (``admission``, ``evaluate``,
        ``total``; the coordinator adds ``scatter`` and ``merge``), so
        the aggregate /metrics breakdown and a sampled trace tell the
        same story at different zoom levels.
        """
        with self._lock:
            histogram = self._stages.get(stage)
            if histogram is None:
                histogram = self._stages[stage] = Histogram()
            histogram.observe(latency_ms)

    # -- derived figures --------------------------------------------------------

    def qps(self, window_s: float = 60.0) -> float:
        """Completed requests per second over the trailing window."""
        now = self._clock()
        with self._lock:
            recent = [t for t in self._completions if now - t <= window_s]
            if not recent:
                return 0.0
            span = max(now - recent[0], 1e-9)
            return len(recent) / span

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 over the latency ring, in milliseconds."""
        with self._lock:
            sample: List[float] = list(self._latencies_ms)
        return {
            "p50_ms": percentile(sample, 50),
            "p95_ms": percentile(sample, 95),
            "p99_ms": percentile(sample, 99),
        }

    def snapshot(self, queue_depth: Optional[dict] = None) -> Dict[str, object]:
        """Everything the /stats endpoint reports about serving health."""
        with self._lock:
            uptime = self._clock() - self._started
            lookups = self.result_cache_hits + self.result_cache_misses
            counters = {
                "searches": self.searches,
                "adds": self.adds,
                "result_cache_hits": self.result_cache_hits,
                "result_cache_misses": self.result_cache_misses,
                "result_cache_hit_rate": (
                    self.result_cache_hits / lookups if lookups else 0.0
                ),
                "degraded": self.degraded,
                # Stable alias scrapers can share with the coordinator's
                # cluster section (xrank_service_degraded_total).
                "degraded_total": self.degraded,
                "rejected": self.rejected,
                "errors": self.errors,
                "storage_faults": self.storage_faults,
                "fault_fallbacks": self.fault_fallbacks,
                "uptime_s": uptime,
            }
            if self._stages:
                counters["stages"] = {
                    stage: histogram.as_dict()
                    for stage, histogram in sorted(self._stages.items())
                }
        counters.update(self.latency_percentiles())
        counters["qps_60s"] = self.qps(60.0)
        if queue_depth is not None:
            counters["queue"] = queue_depth
        return counters

    def slo_snapshot(self) -> Dict[str, object]:
        """The attached SLO monitor's burn-rate view (empty when none)."""
        if self.slo is None:
            return {"enabled": False}
        snapshot = self.slo.snapshot()
        snapshot["enabled"] = True
        return snapshot
