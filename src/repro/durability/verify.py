"""The durability battery (``repro.durability.verify``).

Proves the recover-or-fallback contract by actually crashing the
snapshot writer, at scale: a generation-1 snapshot is committed, then a
generation-2 save is killed at a swept set of byte offsets (structural
boundaries of the part format plus seeded interior points, each under
both page-cache models) and by every seeded write-side fault site.
After each crash, recovery runs against the wreckage and the recovered
engine answers a fixed query set.  The answers must be bit-identical to
the generation-2 oracle (the crash landed after the commit point) or to
the generation-1 oracle (clean fallback) — any third outcome is a
mixed-state violation and fails the battery.

``repro snapshot verify`` runs this from the CLI; ``repro check
--strict`` wires a reduced sweep in as the ``durability`` gate; the
``recovery-smoke`` CI job runs the full battery and archives the fsck
report of the surviving wreckage.
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import PowerCutError, SnapshotError, SnapshotWriteError
from ..faults import (
    SITE_FSYNC_DROPPED,
    SITE_POWERCUT,
    SITE_WRITE_ERROR,
    SITE_WRITE_TORN,
    FaultPlan,
    FaultSpec,
)
from .format import FRAME_OVERHEAD, HEADER_SIZE
from .io import CrashSimulator
from .store import SnapshotStore

#: Small corpus with enough structure for multi-part snapshots at the
#: battery's reduced ``part_bytes``; generation 2 adds one document so
#: the two oracles provably differ.
_BASE_CORPUS = [
    (
        "workshop.xml",
        "<workshop><title>XQL workshop</title>"
        "<paper><title>ranked XML search</title>"
        "<body><section>the XQL query language over element trees"
        "</section></body></paper></workshop>",
    ),
    (
        "survey.xml",
        "<survey><title>query language survey</title>"
        "<chapter><para>the XQL language and ranked retrieval</para>"
        "<para>inverted lists keyed by element identifiers</para>"
        "</chapter></survey>",
    ),
    (
        "notes.xml",
        "<notes><note><body>proximity ranking and element retrieval"
        "</body></note></notes>",
    ),
]

_EXTRA_DOC = (
    "addendum.xml",
    "<addendum><title>late-breaking XQL results</title>"
    "<para>ranked element retrieval revisited</para></addendum>",
)

_QUERIES = ("xql language", "ranked retrieval", "element")

_KINDS = ("dil",)


def _build_engine(extra: bool):
    from ..engine import XRankEngine

    engine = XRankEngine()
    for uri, source in _BASE_CORPUS:
        engine.add_xml(source, uri=uri)
    if extra:
        engine.add_xml(_EXTRA_DOC[1], uri=_EXTRA_DOC[0])
    engine.build(kinds=_KINDS)
    return engine


def _answers(engine) -> List[List[Tuple[str, float]]]:
    """The oracle fingerprint: (dewey, rank) lists per fixed query."""
    return [
        [(hit.dewey, hit.rank) for hit in engine.search(query, m=10, kind=_KINDS[0])]
        for query in _QUERIES
    ]


@dataclass
class DurabilityReport:
    """Outcome of one battery run (canonical-JSON serializable)."""

    seed: int = 0
    offsets_swept: int = 0
    cases: int = 0
    recovered_new: int = 0
    recovered_previous: int = 0
    fallbacks_seen: int = 0
    site_outcomes: Dict[str, str] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and self.cases > 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "offsets_swept": self.offsets_swept,
            "cases": self.cases,
            "recovered_new": self.recovered_new,
            "recovered_previous": self.recovered_previous,
            "fallbacks_seen": self.fallbacks_seen,
            "site_outcomes": dict(sorted(self.site_outcomes.items())),
            "violations": list(self.violations),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


def _crash_offsets(
    total: int, part_sizes: List[int], seed: int, interior: int
) -> List[int]:
    """Structural boundaries plus seeded interior offsets, de-duplicated.

    Boundaries target the format's seams: the first bytes of the stream,
    both edges of every part header, every part's framing boundary, and
    the tail where the manifest commit happens.
    """
    offsets = {0, 1, total - 1, total, total + 1}
    edge = 0
    for size in part_sizes:
        offsets.update(
            {
                edge,  # part file about to be created
                edge + HEADER_SIZE - 1,  # mid-header
                edge + HEADER_SIZE,  # header/payload seam
                edge + size - 4,  # inside the CRC footer
                edge + size - 1,  # one byte short of a full part
                edge + size,  # part complete, next not started
            }
        )
        edge += size
    rng = random.Random(seed)
    for _ in range(max(0, interior)):
        offsets.add(rng.randrange(total + 1))
    return sorted(offset for offset in offsets if 0 <= offset <= total + 1)


def verify_durability(
    seed: int = 0,
    interior_offsets: int = 12,
    part_bytes: int = 4096,
    keep_dir: Optional[str] = None,
) -> DurabilityReport:
    """Run the crash-point sweep and fault-site battery; return a report.

    Args:
        seed: seeds both the interior-offset picker and the fault plans.
        interior_offsets: extra seeded offsets beyond the structural
            boundaries (the "hypothesis-style" part of the sweep).
        part_bytes: payload bytes per part — small, to force multi-part
            generations so boundaries are plentiful.
        keep_dir: keep working state under this directory (for CI
            artifact upload) instead of a deleted temp dir.
    """
    report = DurabilityReport(seed=seed)
    scratch_root = Path(keep_dir) if keep_dir else Path(tempfile.mkdtemp(prefix="repro-durability-"))
    scratch_root.mkdir(parents=True, exist_ok=True)
    try:
        engine_v1 = _build_engine(extra=False)
        engine_v2 = _build_engine(extra=True)
        oracle_v1 = _answers(engine_v1)
        oracle_v2 = _answers(engine_v2)
        if oracle_v1 == oracle_v2:
            report.violations.append(
                "harness defect: the two oracle engines answer identically"
            )
            return report

        # Committed baseline: generation 1 only.
        base = scratch_root / "base"
        base_store = SnapshotStore(base, part_bytes=part_bytes)
        base_store.save(engine_v1)

        # Dry run of the generation-2 save to learn the write geometry.
        probe_dir = scratch_root / "probe"
        shutil.copytree(base, probe_dir)
        probe_sim = CrashSimulator()
        probe_store = SnapshotStore(probe_dir, part_bytes=part_bytes)
        probe_info = probe_store.save(engine_v2, sim=probe_sim)
        total = probe_sim.written
        part_sizes = [
            (probe_store._gen_dir(probe_info.number) / f"part-{index:05d}.bin").stat().st_size
            for index in range(probe_info.parts)
        ]
        shutil.rmtree(probe_dir)

        offsets = _crash_offsets(total, part_sizes, seed, interior_offsets)
        report.offsets_swept = len(offsets)

        def run_case(label: str, sim: CrashSimulator, expect_typed: bool) -> None:
            case_dir = scratch_root / "case"
            if case_dir.exists():
                shutil.rmtree(case_dir)
            shutil.copytree(base, case_dir)
            store = SnapshotStore(case_dir, part_bytes=part_bytes)
            outcome = "save_completed"
            try:
                store.save(engine_v2, sim=sim)
            except (PowerCutError, SnapshotWriteError):
                outcome = "save_crashed"
            except SnapshotError as exc:
                outcome = f"save_failed_typed:{type(exc).__name__}"
            except Exception as exc:  # untyped escape is itself a violation
                report.violations.append(
                    f"{label}: untyped {type(exc).__name__} escaped the writer: {exc}"
                )
                return
            if expect_typed and outcome == "save_completed":
                # A plan armed with times=1 must actually fire.
                report.violations.append(
                    f"{label}: armed fault site never fired"
                )
            # The dead volume must not block recovery: restart means a
            # fresh process reading whatever survived on disk.
            try:
                recovered, info = SnapshotStore(
                    case_dir, part_bytes=part_bytes
                ).recover()
            except SnapshotError as exc:
                report.violations.append(
                    f"{label}: recovery found no intact generation "
                    f"({type(exc).__name__}: {exc}) — generation 1 was lost"
                )
                return
            answers = _answers(recovered)
            report.cases += 1
            if answers == oracle_v2:
                report.recovered_new += 1
                report.site_outcomes.setdefault(label, "recovered_new")
            elif answers == oracle_v1:
                report.recovered_previous += 1
                report.fallbacks_seen += 1
                report.site_outcomes.setdefault(label, "recovered_previous")
            else:
                report.violations.append(
                    f"{label}: recovered generation {info.number} answers "
                    "match NEITHER oracle — mixed or silently wrong state"
                )

        # -- the power-cut offset sweep, under both page-cache models ----
        for offset in offsets:
            for keep_unsynced in (False, True):
                run_case(
                    f"offset={offset},keep_unsynced={keep_unsynced}",
                    CrashSimulator(
                        crash_at_byte=offset, keep_unsynced=keep_unsynced
                    ),
                    expect_typed=False,
                )

        # -- the seeded fault-site battery ------------------------------
        # One write call per part plus one for the manifest temp file;
        # a skip must leave at least one eligible call or the armed
        # site can never fire.
        write_calls = probe_info.parts + 1
        skips = tuple(
            skip for skip in (0, 1, 2, 3, 5, 8, 13) if skip < write_calls
        )
        for site in (SITE_WRITE_ERROR, SITE_WRITE_TORN, SITE_POWERCUT):
            for skip in skips:
                plan = FaultPlan(
                    seed, [FaultSpec(site, probability=1.0, times=1, skip=skip)]
                )
                run_case(
                    f"site={site},skip={skip}",
                    CrashSimulator(plan=plan),
                    expect_typed=True,
                )
        # Dropped fsyncs are silent: the save "succeeds", then the power
        # dies and eats whatever the dropped fsync left in the cache.
        for skip in skips:
            plan = FaultPlan(
                seed,
                [FaultSpec(SITE_FSYNC_DROPPED, probability=1.0, times=1, skip=skip)],
            )
            sim = CrashSimulator(plan=plan)
            case_dir = scratch_root / "case"
            if case_dir.exists():
                shutil.rmtree(case_dir)
            shutil.copytree(base, case_dir)
            store = SnapshotStore(case_dir, part_bytes=part_bytes)
            label = f"site={SITE_FSYNC_DROPPED},skip={skip}"
            try:
                store.save(engine_v2, sim=sim)
            except SnapshotError as exc:
                report.violations.append(
                    f"{label}: a dropped fsync must be silent, but the "
                    f"writer raised {type(exc).__name__}: {exc}"
                )
                continue
            sim.crash()  # post-save power cut exposes the dropped fsync
            try:
                recovered, _info = SnapshotStore(
                    case_dir, part_bytes=part_bytes
                ).recover()
            except SnapshotError as exc:
                report.violations.append(
                    f"{label}: recovery failed outright "
                    f"({type(exc).__name__}: {exc})"
                )
                continue
            answers = _answers(recovered)
            report.cases += 1
            if answers == oracle_v2:
                report.recovered_new += 1
                report.site_outcomes[label] = "recovered_new"
            elif answers == oracle_v1:
                report.recovered_previous += 1
                report.fallbacks_seen += 1
                report.site_outcomes[label] = "recovered_previous"
            else:
                report.violations.append(
                    f"{label}: answers match neither oracle — mixed state"
                )

        if report.fallbacks_seen == 0:
            report.violations.append(
                "harness defect: no crash point ever forced a fallback, "
                "the battery is not biting"
            )
        # Leave the last case's wreckage in place for fsck/artifacts
        # when the caller asked to keep the directory.
        return report
    finally:
        if keep_dir is None:
            shutil.rmtree(scratch_root, ignore_errors=True)


def check_durability(seed: int = 0) -> List[str]:
    """Strict-mode gate: a reduced sweep, returning failure strings."""
    report = verify_durability(seed=seed, interior_offsets=4, part_bytes=8192)
    failures = list(report.violations)
    if report.cases == 0:
        failures.append("durability battery ran zero cases")
    return [f"durability: {failure}" for failure in failures]
