"""ASCII chart rendering for experiment tables.

The paper's Figures 10-11 are line charts; for terminal-friendly reports the
:class:`~repro.bench.harness.ExperimentTable` series can be rendered as
horizontal bar groups — enough to eyeball who wins and by what factor
without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .harness import APPROACHES, ExperimentTable

#: Bar glyph per approach so grouped bars stay distinguishable.
_GLYPHS = {
    "naive-id": "N",
    "naive-rank": "n",
    "dil": "D",
    "rdil": "R",
    "hdil": "H",
}


def render_bars(
    table: ExperimentTable,
    width: int = 48,
    glyphs: Optional[Dict[str, str]] = None,
) -> str:
    """Render an experiment table as grouped horizontal ASCII bars.

    One group per x value, one bar per approach, scaled to the table's
    maximum value.  Example::

        n=2 | D ############                 52.0
            | R ######                       28.5
    """
    glyphs = {**_GLYPHS, **(glyphs or {})}
    approaches = sorted(
        {a for point in table.points for a in point.values},
        key=lambda a: APPROACHES.index(a) if a in APPROACHES else 99,
    )
    maximum = max(
        (v for point in table.points for v in point.values.values()),
        default=0.0,
    )
    if maximum <= 0:
        maximum = 1.0

    lines: List[str] = [f"== {table.name} ==  ({table.y_label})"]
    label_width = max(len(f"{p.x}") for p in table.points) + len(table.x_label) + 1
    for point in table.points:
        label = f"{table.x_label[:1]}={point.x}"
        first = True
        for approach in approaches:
            value = point.values.get(approach)
            if value is None:
                continue
            bar = "#" * max(1, round(value / maximum * width))
            glyph = glyphs.get(approach, approach[:1].upper())
            prefix = f"{label:<{label_width}}" if first else " " * label_width
            lines.append(f"{prefix} | {glyph} {bar:<{width}} {value:>9.1f}")
            first = False
        lines.append("")
    legend = "   ".join(
        f"{glyphs.get(a, a[:1].upper())}={a}" for a in approaches
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def render_series_csv(table: ExperimentTable) -> str:
    """CSV form of a table, for spreadsheet import."""
    approaches = sorted(
        {a for point in table.points for a in point.values},
        key=lambda a: APPROACHES.index(a) if a in APPROACHES else 99,
    )
    lines = [",".join([table.x_label] + list(approaches))]
    for point in table.points:
        cells = [str(point.x)] + [
            f"{point.values[a]:.3f}" if a in point.values else ""
            for a in approaches
        ]
        lines.append(",".join(cells))
    return "\n".join(lines)
