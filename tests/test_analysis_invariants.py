"""Structural invariant validator tests: clean trees pass, seeded
corruption of every checked property is rejected."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.invariants import (
    InvariantViolation,
    check_btree,
    check_dewey_codecs,
    check_elemrank,
    check_engine,
    check_index_agreement,
    check_posting_lists,
)
from repro.config import StorageParams
from repro.engine import XRankEngine
from repro.index.postings import Posting
from repro.storage.btree import BTree, _decode_leaf, _encode_leaf
from repro.storage.deweycodec import CODECS
from repro.storage.disk import SimulatedDisk
from repro.xmlmodel.dewey import DeweyId

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


DOCS = [
    (
        "a.xml",
        "<doc><title>xql language notes</title><body>"
        "<sec>the xql query language</sec><sec>ranked search</sec></body></doc>",
    ),
    (
        "b.xml",
        "<doc><title>language survey</title><body>"
        "<sec>query language design</sec><sec>xql patterns</sec></body></doc>",
    ),
    (
        "c.xml",
        "<doc><title>search engines</title><body>"
        "<sec>ranked query processing</sec></body></doc>",
    ),
]


@pytest.fixture(scope="module")
def engine() -> XRankEngine:
    built = XRankEngine()
    for uri, source in DOCS:
        built.add_xml(source, uri=uri)
    built.build(kinds=("dil", "rdil", "hdil"))
    return built


def build_tree(entry_count: int = 40, page_size: int = 128):
    disk = SimulatedDisk(StorageParams(page_size=page_size))
    entries = [
        (DeweyId((1, i // 8, i % 8)), bytes([i]) * 3) for i in range(entry_count)
    ]
    return BTree.bulk_load(disk, entries), disk


# -- B+-tree ------------------------------------------------------------------------


class TestBTreeInvariants:
    def test_clean_tree_passes(self):
        tree, _ = build_tree()
        assert tree.height > 1  # the fixture must actually have internals
        assert check_btree(tree) == []

    def test_out_of_order_leaf_keys_rejected(self):
        tree, disk = build_tree()
        victim = tree.leaf_pages[1]
        prev_page, next_page, entries = _decode_leaf(disk.read(victim))
        entries.reverse()
        disk.write(victim, _encode_leaf(entries, prev_page, next_page))
        violations = check_btree(tree, "corrupted")
        assert violations
        assert any("order" in v.message for v in violations)
        assert all(v.location == "corrupted" for v in violations)

    def test_broken_leaf_chain_rejected(self):
        tree, disk = build_tree()
        victim = tree.leaf_pages[0]
        prev_page, next_page, entries = _decode_leaf(disk.read(victim))
        disk.write(victim, _encode_leaf(entries, prev_page, -1))  # cut the chain
        violations = check_btree(tree)
        assert any("chain" in v.message for v in violations)

    def test_entry_count_mismatch_rejected(self):
        tree, _ = build_tree()
        tree.num_entries += 5
        violations = check_btree(tree)
        assert any("claims" in v.message for v in violations)

    def test_key_outside_separator_bounds_rejected(self):
        tree, disk = build_tree()
        victim = tree.leaf_pages[-1]
        prev_page, next_page, entries = _decode_leaf(disk.read(victim))
        # Smuggle in a key that belongs far before this leaf's separator.
        entries[0] = (DeweyId((0, 0)), entries[0][1])
        disk.write(victim, _encode_leaf(entries, prev_page, next_page))
        violations = check_btree(tree)
        assert any("separator" in v.message for v in violations)

    def test_real_engine_btrees_pass(self, engine):
        rdil = engine.index("rdil")
        for keyword in ("language", "xql", "query"):
            tree = rdil.btree(keyword)
            assert tree is not None
            assert check_btree(tree, f"rdil {keyword}") == []


# -- posting lists ------------------------------------------------------------------


class _FakeCursor:
    def __init__(self, records):
        self._records = list(records)
        self._at = 0

    @property
    def eof(self):
        return self._at >= len(self._records)

    def next(self):
        record = self._records[self._at]
        self._at += 1
        return record


class _FakeDILIndex:
    def __init__(self, postings):
        self._postings = postings

    def keywords(self):
        return self._postings.keys()

    def list_length(self, keyword):
        return len(self._postings.get(keyword, ()))

    def cursor(self, keyword):
        return _FakeCursor([p.encode() for p in self._postings[keyword]])


class _FakeEngine:
    def __init__(self, index):
        self._indexes = {"dil": index}
        self.builder = None


def test_clean_posting_lists_pass(engine):
    assert check_posting_lists(engine) == []


def test_unsorted_posting_list_rejected():
    postings = {
        "kw": [
            Posting(DeweyId((1, 2)), 0.5, (1,)),
            Posting(DeweyId((1, 1)), 0.4, (2,)),  # out of Dewey order
        ]
    }
    violations = check_posting_lists(_FakeEngine(_FakeDILIndex(postings)))
    assert any("Dewey order" in v.message for v in violations)


def test_negative_rank_rejected():
    postings = {"kw": [Posting(DeweyId((1, 1)), -0.1, (1,))]}
    violations = check_posting_lists(_FakeEngine(_FakeDILIndex(postings)))
    assert any("bad rank" in v.message for v in violations)


def test_non_increasing_positions_rejected():
    # The delta codec refuses outright-unsorted positions at encode time,
    # so the subtlest corruption it can pass through is a duplicate.
    postings = {"kw": [Posting(DeweyId((1, 1)), 0.2, (5, 5))]}
    violations = check_posting_lists(_FakeEngine(_FakeDILIndex(postings)))
    assert any("positions" in v.message for v in violations)


def test_corrupted_encoding_rejected():
    posting = Posting(DeweyId((1, 1)), 0.2, (1, 2))

    class _Lossy(_FakeDILIndex):
        def cursor(self, keyword):
            return _FakeCursor([posting.encode() + b"\x00"])  # trailing junk

    violations = check_posting_lists(_FakeEngine(_Lossy({"kw": [posting]})))
    assert any("round-trip" in v.message for v in violations)


def test_hdil_ranked_head_order_violation_detected(engine):
    # Corrupt the built HDIL head of one keyword: swap the first two
    # records so ElemRank order breaks, then restore the page afterwards.
    hdil = engine.index("hdil")
    keyword = max(hdil.keywords(), key=hdil.head_length)
    head = hdil.ranked_heads[keyword]
    assert head.num_records >= 2
    page_id = head.page_ids[0]
    original = hdil.disk.read(page_id)
    records = [r for r in head.scan()][: head.num_records]
    postings = sorted(
        (Posting.decode(r) for r in records), key=lambda p: p.elemrank
    )
    if postings[0].elemrank == postings[-1].elemrank:
        pytest.skip("corpus produced a constant-rank head")
    from repro.storage.listfile import ListFile

    try:
        broken = ListFile.write(hdil.disk, [p.encode() for p in postings])
        hdil.ranked_heads[keyword] = broken
        violations = check_posting_lists(engine)
        assert any("rank order" in v.message for v in violations)
    finally:
        hdil.ranked_heads[keyword] = head
        hdil.disk.write(page_id, original)


# -- Dewey codecs -------------------------------------------------------------------


def test_codecs_round_trip_engine_ids(engine):
    postings = engine.builder.direct_postings
    ids = [p.dewey for p in postings["language"]]
    assert check_dewey_codecs(ids) == []


def test_lossy_codec_detected(monkeypatch):
    encode, decode = CODECS["varint"]
    monkeypatch.setitem(CODECS, "varint", (encode, lambda data: decode(data)[:-1]))
    violations = check_dewey_codecs([DeweyId((1, 1)), DeweyId((1, 2))])
    assert any(v.check == "dewey-codec" for v in violations)


def test_raising_codec_detected(monkeypatch):
    def explode(ids):
        raise ValueError("boom")

    monkeypatch.setitem(CODECS, "prefix", (explode, lambda data: []))
    violations = check_dewey_codecs([DeweyId((1, 1))])
    assert any("boom" in v.message for v in violations)


if HAVE_HYPOTHESIS:

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=2**20), min_size=1, max_size=6
            ),
            max_size=30,
        )
    )
    def test_codec_round_trip_hypothesis(components):
        """Property: every codec round-trips arbitrary Dewey-ordered lists."""
        ids = sorted(DeweyId(tuple(c)) for c in components)
        assert check_dewey_codecs(ids) == []


# -- index agreement ----------------------------------------------------------------


def test_built_kinds_agree(engine):
    assert check_index_agreement(engine) == []


def test_divergent_evaluator_detected(engine):
    class _Short:
        def evaluate(self, keywords, m=10, **kwargs):
            return []

    original = engine._evaluators["rdil"]
    try:
        engine._evaluators["rdil"] = _Short()
        violations = check_index_agreement(engine, queries=[["language"]])
        assert any(v.check == "index-agreement" for v in violations)
        assert any("results" in v.message for v in violations)
    finally:
        engine._evaluators["rdil"] = original


def test_single_kind_engine_skips_agreement():
    single = XRankEngine()
    single.add_xml(DOCS[0][1], uri="a.xml")
    single.build(kinds=("dil",))
    assert check_index_agreement(single) == []


# -- ElemRank -----------------------------------------------------------------------


def test_converged_elemrank_passes(engine):
    assert check_elemrank(engine) == []


def test_unconverged_elemrank_detected(engine):
    original = engine.builder.elemrank_result
    try:
        engine.builder.elemrank_result = dataclasses.replace(
            original, converged=False
        )
        violations = check_elemrank(engine)
        assert any("converge" in v.message for v in violations)
    finally:
        engine.builder.elemrank_result = original


def test_nan_score_detected(engine):
    dewey = next(iter(engine.builder.elemranks))
    original = engine.builder.elemranks[dewey]
    try:
        engine.builder.elemranks[dewey] = float("nan")
        violations = check_elemrank(engine)
        assert any("score" in v.message for v in violations)
    finally:
        engine.builder.elemranks[dewey] = original


# -- orchestration ------------------------------------------------------------------


def test_check_engine_clean_on_real_corpus(engine):
    assert check_engine(engine) == []


def test_violation_formatting():
    violation = InvariantViolation("btree", "rdil 'xql'", "keys out of order")
    assert violation.format() == "[btree] rdil 'xql': keys out of order"
