"""Per-query cost attribution: deterministic counters, not clocks.

PR 7's span tree answers *where* a query's time went; this module
answers *why* — how many postings each evaluator scanned and decoded,
how many Dewey comparisons and heap operations the merge paid, how many
B+-tree probes RDIL issued, how much simulated disk the query touched.
Every counter is a pure function of (corpus, query, seed): two runs of
the same seeded workload produce byte-identical profiles, which is what
lets CI diff ``repro profile --json`` output across runs the same way
it diffs canonical traces.

The one non-deterministic measurement — per-stage CPU time — is kept in
a separate ``cpu_ns`` side-channel and stripped from the canonical
export, mirroring :func:`repro.obs.render.to_canonical_json`'s
wall-clock discipline: humans see timings, the byte-diff gate never
does.

Collection is thread-local.  The service activates a
:class:`QueryProfile` for the duration of one query; evaluator hot
loops capture the active profile *once* (at stream/heap construction or
generator start) and afterwards pay a single ``is not None`` branch per
event, so the disabled path stays within the service bench's overhead
budget.  Aggregation happens in a lock-guarded
:class:`ProfileRegistry` keyed by (evaluator kind, query shape, result
count bucket) — the axes along which the paper's Figure 10/11 cost
analyses slice.

Layering note: ``repro.obs`` sits *below* ``repro.service`` in the
import graph (the service reports into obs, not vice versa), so the
registry guards itself with a plain ``threading.Lock`` rather than the
service's instrumented ``GuardedLock`` — same rationale as
:class:`repro.obs.trace.TraceBuffer`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple

#: Every deterministic counter a profile carries, in render order.
#: The schema is fixed: all fields appear in every export (zeros
#: included), so profiles from different evaluators merge field-wise.
COUNTER_FIELDS: Tuple[str, ...] = (
    "postings_scanned",
    "postings_decoded",
    "dewey_comparisons",
    "heap_pushes",
    "heap_evictions",
    "merge_stack_pushes",
    "merge_stack_pops",
    "rdil_probes",
    "rdil_entries_read",
    "list_cache_hits",
    "list_cache_misses",
    "result_cache_hits",
    "result_cache_misses",
    "cache_generation_churn",
    "page_reads",
    "bytes_read",
)

#: Keys holding timing side-channels, stripped by the canonical export.
TIMING_KEYS = frozenset({"cpu_ns"})

#: Result-count bucket upper bounds (inclusive) and their labels; the
#: last label catches everything above the largest bound.
_BUCKET_BOUNDS: Tuple[Tuple[int, str], ...] = (
    (0, "0"),
    (3, "1-3"),
    (10, "4-10"),
    (30, "11-30"),
)
_BUCKET_OVERFLOW = "31+"


def result_bucket(count: int) -> str:
    """The registry's result-count bucket label for ``count`` results."""
    for bound, label in _BUCKET_BOUNDS:
        if count <= bound:
            return label
    return _BUCKET_OVERFLOW


class QueryProfile:
    """Deterministic cost counters for one query.

    Counters are plain instance attributes (slotted) so hot loops
    increment them with one attribute store and no dict hashing.
    ``cpu_ns`` maps stage name -> process CPU nanoseconds and is the
    only non-deterministic field; it never reaches the canonical form.
    """

    __slots__ = COUNTER_FIELDS + ("cpu_ns",)

    def __init__(self) -> None:
        for name in COUNTER_FIELDS:
            setattr(self, name, 0)
        self.cpu_ns: Dict[str, int] = {}

    def add_cpu(self, stage: str, ns: int) -> None:
        """Accumulate process-CPU nanoseconds under a stage label."""
        self.cpu_ns[stage] = self.cpu_ns.get(stage, 0) + int(ns)

    def counters(self) -> Dict[str, int]:
        """All deterministic counters, zeros included (stable schema)."""
        return {name: getattr(self, name) for name in COUNTER_FIELDS}

    def nonzero(self) -> Dict[str, int]:
        """Only the counters this query actually touched (span attrs)."""
        return {
            name: getattr(self, name)
            for name in COUNTER_FIELDS
            if getattr(self, name)
        }

    def total(self) -> int:
        """Sum of every counter — the registry's ranking weight."""
        return sum(getattr(self, name) for name in COUNTER_FIELDS)


# -- thread-local activation ---------------------------------------------------------

_ACTIVE = threading.local()


def active_profile() -> Optional[QueryProfile]:
    """The profile collecting on this thread, or None (profiling off)."""
    return getattr(_ACTIVE, "profile", None)


@contextmanager
def activate(profile: Optional[QueryProfile]):
    """Install ``profile`` as this thread's collector for the block.

    ``activate(None)`` is a no-op context, so call sites can wrap
    unconditionally without branching on whether profiling is enabled.
    Activations nest: the previous profile is restored on exit.
    """
    if profile is None:
        yield None
        return
    previous = getattr(_ACTIVE, "profile", None)
    _ACTIVE.profile = profile
    try:
        yield profile
    finally:
        _ACTIVE.profile = previous


# -- aggregation ---------------------------------------------------------------------


class ProfileRegistry:
    """Lock-guarded aggregation of per-query profiles.

    Keys are ``(evaluator kind, query shape, result-count bucket)``.
    The registry is bounded: once ``max_entries`` distinct keys exist,
    profiles for *new* keys are counted in ``overflow`` and dropped —
    deterministic for a deterministic workload, and it keeps a
    long-running server's profile endpoint a fixed-size payload.
    """

    def __init__(self, max_entries: int = 512):
        self.max_entries = max_entries
        # Plain Lock by design: obs sits below service in the import
        # graph and must not depend on service.concurrency.
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, str, str], Dict[str, object]] = {}
        self._queries = 0
        self._overflow = 0

    def record(
        self,
        evaluator: str,
        shape: str,
        results: int,
        profile: QueryProfile,
    ) -> None:
        """Fold one finished query's profile into its aggregate cell."""
        key = (evaluator, shape, result_bucket(results))
        with self._lock:
            self._queries += 1
            cell = self._entries.get(key)
            if cell is None:
                if len(self._entries) >= self.max_entries:
                    self._overflow += 1
                    return
                cell = {
                    "queries": 0,
                    "counters": {name: 0 for name in COUNTER_FIELDS},
                    "cpu_ns": {},
                }
                self._entries[key] = cell
            cell["queries"] += 1
            counters = cell["counters"]
            for name in COUNTER_FIELDS:
                counters[name] += getattr(profile, name)
            cpu = cell["cpu_ns"]
            for stage, ns in profile.cpu_ns.items():
                cpu[stage] = cpu.get(stage, 0) + ns

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._queries = 0
            self._overflow = 0

    def snapshot(self) -> Dict[str, object]:
        """Full aggregate view (timings included), sorted by key."""
        with self._lock:
            profiles: List[Dict[str, object]] = []
            for key in sorted(self._entries):
                evaluator, shape, bucket = key
                cell = self._entries[key]
                profiles.append(
                    {
                        "evaluator": evaluator,
                        "shape": shape,
                        "results": bucket,
                        "queries": cell["queries"],
                        "counters": dict(cell["counters"]),
                        "cpu_ns": dict(sorted(cell["cpu_ns"].items())),
                    }
                )
            return {
                "enabled": True,
                "queries": self._queries,
                "overflow": self._overflow,
                "profiles": profiles,
            }


def canonical_profile_dict(snapshot: Dict[str, object]) -> Dict[str, object]:
    """The snapshot minus every timing side-channel.

    Same discipline as :func:`repro.obs.render.to_canonical_dict`: the
    deterministic counters stay, ``cpu_ns`` (and any future timing key)
    goes, so the result is a pure function of (corpus, workload, seed).
    """

    def strip(node):
        if isinstance(node, dict):
            return {
                key: strip(value)
                for key, value in node.items()
                if key not in TIMING_KEYS
            }
        if isinstance(node, list):
            return [strip(item) for item in node]
        return node

    return strip(snapshot)


def canonical_profile_json(snapshot: Dict[str, object]) -> str:
    """Byte-stable JSON of the canonical profile view."""
    import json

    return json.dumps(
        canonical_profile_dict(snapshot),
        sort_keys=True,
        separators=(",", ":"),
    )


def merge_snapshots(
    snapshots: Iterable[Dict[str, object]]
) -> Dict[str, object]:
    """Counter-wise merge of registry snapshots (coordinator side).

    Cells with the same (evaluator, shape, results) key sum field-wise;
    the merged view is sorted like a single registry's snapshot, so a
    cluster-wide profile reads identically to a single node's.
    """
    merged: Dict[Tuple[str, str, str], Dict[str, object]] = {}
    queries = 0
    overflow = 0
    enabled = False
    for snapshot in snapshots:
        if not snapshot or not snapshot.get("enabled"):
            continue
        enabled = True
        queries += int(snapshot.get("queries", 0))
        overflow += int(snapshot.get("overflow", 0))
        for entry in snapshot.get("profiles", ()):
            key = (
                str(entry["evaluator"]),
                str(entry["shape"]),
                str(entry["results"]),
            )
            cell = merged.setdefault(
                key,
                {
                    "queries": 0,
                    "counters": {name: 0 for name in COUNTER_FIELDS},
                    "cpu_ns": {},
                },
            )
            cell["queries"] += int(entry.get("queries", 0))
            counters = cell["counters"]
            for name, value in entry.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + int(value)
            cpu = cell["cpu_ns"]
            for stage, ns in entry.get("cpu_ns", {}).items():
                cpu[stage] = cpu.get(stage, 0) + int(ns)
    profiles = []
    for key in sorted(merged):
        evaluator, shape, bucket = key
        cell = merged[key]
        profiles.append(
            {
                "evaluator": evaluator,
                "shape": shape,
                "results": bucket,
                "queries": cell["queries"],
                "counters": dict(cell["counters"]),
                "cpu_ns": dict(sorted(cell["cpu_ns"].items())),
            }
        )
    return {
        "enabled": enabled,
        "queries": queries,
        "overflow": overflow,
        "profiles": profiles,
    }
