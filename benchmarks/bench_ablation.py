"""Ablations of the design choices DESIGN.md calls out.

Not a paper table — these quantify the knobs the paper leaves open: the
specificity decay, the proximity factor, the ElemRank formulation chain
(E1 -> E4), and HDIL's replicated-head fraction.
"""

import pytest

from repro.bench.experiments import (
    run_ablation_decay,
    run_ablation_proximity,
    run_ablation_variants,
)
from repro.config import HDILParams
from repro.datasets.workloads import high_correlation_queries
from repro.ranking.elemrank import ElemRankVariant, compute_elemrank


def test_ablation_decay(benchmark, suite, capsys):
    data, text = benchmark.pedantic(
        lambda: run_ablation_decay(suite), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + text)
    assert set(data) == {0.25, 0.5, 0.75, 1.0}


def test_ablation_proximity(benchmark, suite, capsys):
    data, text = benchmark.pedantic(
        lambda: run_ablation_proximity(suite), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + text)
    assert len(data["proximity-on"]) > 0


def test_ablation_variants(benchmark, suite, capsys):
    overlaps, text = benchmark.pedantic(
        lambda: run_ablation_variants(suite), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + text)
    # E1 (no reverse containment flow) should agree least with the final
    # formulation; E2/E3 sit in between.
    assert overlaps["e1-pagerank"] <= overlaps["e2-bidirectional"] + 0.2
    assert overlaps["e4-final"] == 1.0


@pytest.mark.parametrize("variant", list(ElemRankVariant))
def test_variant_cost(benchmark, suite, variant):
    graph = suite.xmark.corpus.graph
    result = benchmark.pedantic(
        lambda: compute_elemrank(graph, variant=variant), rounds=2, iterations=1
    )
    assert result.converged


@pytest.mark.parametrize("fraction", (0.02, 0.10, 0.30))
def test_hdil_head_fraction(benchmark, suite, fraction):
    """Bigger replicated heads buy RDIL-mode room at the cost of space."""
    params = HDILParams(rank_fraction=fraction)
    builder = suite.dblp.builder

    index = benchmark.pedantic(
        lambda: builder.build_hdil(params), rounds=1, iterations=1
    )
    query = high_correlation_queries(suite.planted, 2).queries[0]
    from repro.query.hdil_eval import HDILEvaluator

    evaluator = HDILEvaluator(index, suite.dblp.ranking, params)
    index.reset_measurement()
    results = evaluator.evaluate(list(query), m=10)
    benchmark.extra_info["list_bytes"] = index.inverted_list_bytes
    benchmark.extra_info["query_cost_ms"] = index.io_cost_ms()
    assert results


def test_ablation_decay_focused(benchmark, capsys):
    from repro.bench.experiments import run_ablation_decay_focused

    data, text = benchmark.pedantic(
        run_ablation_decay_focused, rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + text)
    ratios = [data[d] for d in sorted(data)]
    assert all(b > a for a, b in zip(ratios, ratios[1:])), (
        "rank(deep)/rank(shallow) must grow with decay"
    )


def test_ablation_proximity_focused(benchmark, capsys):
    from repro.bench.experiments import run_ablation_proximity_focused

    data, text = benchmark.pedantic(
        run_ablation_proximity_focused, rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + text)
    assert data["proximity-on"][0] == "tight"
    assert data["proximity-off"][0] == "loose"


@pytest.mark.parametrize("estimator", ("paper", "threshold-slope"))
def test_hdil_estimator_comparison(benchmark, suite, estimator, capsys):
    """Compare the two HDIL switch estimators on the Figure 10 workload.

    The paper observed occasional mis-switches with its (m-r)*t/r estimate
    and said it was "investigating other estimation techniques"; the
    threshold-slope estimator is our candidate.  Both must return correct
    results; their costs are recorded for comparison.
    """
    from repro.config import HDILParams
    from repro.query.hdil_eval import HDILEvaluator

    params = HDILParams(estimator=estimator)
    index = suite.dblp.indexes["hdil"]
    evaluator = HDILEvaluator(index, suite.dblp.ranking, params)
    query = high_correlation_queries(suite.planted, 4).queries[0]

    def run():
        index.reset_measurement(cold_cache=True)
        results = evaluator.evaluate(list(query), m=10)
        return results, index.io_cost_ms()

    results, cost = benchmark.pedantic(run, rounds=2, iterations=1)
    assert results
    benchmark.extra_info["simulated_cost_ms"] = cost
    benchmark.extra_info["switched"] = evaluator.last_trace.switched_to_dil
    with capsys.disabled():
        print(
            f"\n  estimator={estimator}: cost={cost:.1f}ms "
            f"switched={evaluator.last_trace.switched_to_dil} "
            f"({evaluator.last_trace.switch_reason or 'stayed in RDIL'})"
        )


def test_dewey_codec_ablation(benchmark, suite, capsys):
    """Space ablation over Dewey list encodings (Section 4.2.1's claim).

    Encodes the ten longest DBLP posting lists' ID sequences under fixed32,
    varint (the production codec) and front-coded prefix compression.
    """
    from repro.storage.deweycodec import codec_sizes

    posting_lists = sorted(
        suite.dblp.builder.direct_postings.values(), key=len, reverse=True
    )[:10]

    def run():
        totals = {"fixed32": 0, "varint": 0, "prefix": 0}
        for postings in posting_lists:
            sizes = codec_sizes([p.dewey for p in postings])
            for name, size in sizes.items():
                totals[name] += size
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n== Ablation: Dewey list codecs (10 longest DBLP lists) ==")
        for name in ("fixed32", "varint", "prefix"):
            ratio = totals[name] / totals["fixed32"]
            print(f"  {name:<8} {totals[name]:>9} B  ({ratio:.2f}x of fixed32)")
    assert totals["varint"] < totals["fixed32"]
    assert totals["prefix"] < totals["varint"]
    benchmark.extra_info.update(totals)
