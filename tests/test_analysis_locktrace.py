"""Runtime lock-order detector tests: seeded ABBA, hazards, clean runs."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.locktrace import LockTracer
from repro.errors import LockUsageError
from repro.service.concurrency import ReadWriteLock


def test_abba_rwlock_acquisition_is_flagged():
    tracer = LockTracer()
    lock_a = tracer.wrap(ReadWriteLock(), "a")
    lock_b = tracer.wrap(ReadWriteLock(), "b")
    with lock_a.read():
        with lock_b.read():
            pass
    with lock_b.read():
        with lock_a.read():
            pass
    report = tracer.report()
    assert report.cycles, "deliberate ABBA ordering must produce a cycle"
    cycle_nodes = set(report.cycles[0])
    assert cycle_nodes == {"a", "b"}
    assert not report.clean
    assert "ABBA" in report.describe()


def test_abba_plain_locks_flagged():
    tracer = LockTracer()
    lock_a = tracer.wrap(threading.Lock(), "a")
    lock_b = tracer.wrap(threading.Lock(), "b")
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with lock_a:
            pass
    assert tracer.report().cycles


def test_consistent_ordering_is_clean():
    tracer = LockTracer()
    lock_a = tracer.wrap(ReadWriteLock(), "a")
    lock_b = tracer.wrap(ReadWriteLock(), "b")
    for _ in range(3):
        with lock_a.read():
            with lock_b.write():
                pass
    report = tracer.report()
    assert report.clean
    assert report.edges == {("a", "b"): 3}
    assert report.acquisitions == 6


def test_three_lock_cycle_detected():
    tracer = LockTracer()
    locks = {name: tracer.wrap(threading.Lock(), name) for name in "abc"}
    for first, second in [("a", "b"), ("b", "c"), ("c", "a")]:
        with locks[first]:
            with locks[second]:
                pass
    report = tracer.report()
    assert report.cycles
    assert set(report.cycles[0]) == {"a", "b", "c"}


def test_nested_read_hazard_recorded_even_though_lock_raises():
    tracer = LockTracer()
    lock = tracer.wrap(ReadWriteLock(), "svc")
    lock.acquire_read()
    try:
        with pytest.raises(LockUsageError):
            lock.acquire_read()
    finally:
        lock.release_read()
    report = tracer.report()
    assert report.reentrant_reads
    assert "nested read" in report.reentrant_reads[0]
    # The failed inner acquisition must not corrupt the held stack: the
    # lock is fully released now, so a writer can proceed.
    with lock.write():
        pass


def test_read_write_upgrade_hazard_recorded():
    tracer = LockTracer()
    lock = tracer.wrap(ReadWriteLock(), "svc")
    lock.acquire_read()
    try:
        with pytest.raises(LockUsageError):
            lock.acquire_write()
    finally:
        lock.release_read()
    report = tracer.report()
    assert any("upgrade" in hazard for hazard in report.reentrant_reads)


def test_cross_thread_reads_are_not_reentrancy():
    tracer = LockTracer()
    lock = tracer.wrap(ReadWriteLock(), "svc")
    entered = threading.Barrier(2, timeout=10)

    def reader():
        with lock.read():
            entered.wait()
            entered.wait()

    threads = [threading.Thread(target=reader) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    report = tracer.report()
    assert report.clean
    assert report.acquisitions == 2


def test_traced_rwlock_preserves_semantics():
    tracer = LockTracer()
    lock = tracer.wrap(ReadWriteLock(), "svc")
    results = []

    def writer():
        with lock.write():
            results.append("write")

    with lock.read():
        thread = threading.Thread(target=writer)
        thread.start()
        # Writer must wait for the read section.
        thread.join(timeout=0.2)
        assert results == []
    thread.join(timeout=10)
    assert results == ["write"]
    assert lock.state()["active_readers"] == 0


def test_wrap_rejects_unknown_objects():
    with pytest.raises(TypeError):
        LockTracer().wrap(object(), "x")


# -- TracedRWLock edge cases --------------------------------------------------------


def test_traced_rwlock_writer_preference_orders_late_readers():
    """Readers arriving while a writer waits queue behind the writer."""
    import time

    tracer = LockTracer()
    lock = tracer.wrap(ReadWriteLock(), "svc")
    order = []
    first_reader_in = threading.Barrier(2, timeout=10)
    release_first = threading.Event()

    def first_reader():
        with lock.read():
            first_reader_in.wait()
            release_first.wait(timeout=10)

    def writer():
        with lock.write():
            order.append("write")

    def late_reader():
        with lock.read():
            order.append("read")

    holder = threading.Thread(target=first_reader)
    holder.start()
    first_reader_in.wait()

    contender = threading.Thread(target=writer)
    contender.start()
    deadline = time.monotonic() + 10
    while lock.state()["writers_waiting"] != 1:
        assert time.monotonic() < deadline, "writer never queued"
        time.sleep(0.005)

    straggler = threading.Thread(target=late_reader)
    straggler.start()
    time.sleep(0.05)
    # Writer preference: the late reader must not slip past the queued writer.
    assert order == []

    release_first.set()
    for thread in (holder, contender, straggler):
        thread.join(timeout=10)
    assert order == ["write", "read"]
    report = tracer.report()
    assert report.clean
    assert report.acquisitions == 3


def test_traced_rwlock_release_from_wrong_thread_raises_through_proxy():
    tracer = LockTracer()
    lock = tracer.wrap(ReadWriteLock(), "svc")
    held = threading.Barrier(2, timeout=10)
    done = threading.Event()

    def holder():
        with lock.read():
            held.wait()
            done.wait(timeout=10)

    thread = threading.Thread(target=holder)
    thread.start()
    held.wait()
    # This thread holds neither side; both releases must refuse.
    with pytest.raises(LockUsageError):
        lock.release_read()
    with pytest.raises(LockUsageError):
        lock.release_write()
    done.set()
    thread.join(timeout=10)
    assert lock.state()["active_readers"] == 0


def test_traced_rwlock_report_is_deterministic_across_identical_runs():
    """Same lock choreography twice -> byte-identical edges and cycles."""

    def run() -> tuple:
        tracer = LockTracer()
        lock_a = tracer.wrap(ReadWriteLock(), "a")
        lock_b = tracer.wrap(ReadWriteLock(), "b")
        lock_c = tracer.wrap(ReadWriteLock(), "c")
        with lock_a.read():
            with lock_b.write():
                pass
        with lock_b.read():
            with lock_c.write():
                pass
        with lock_c.read():
            with lock_a.write():
                pass
        report = tracer.report()
        return tuple(sorted(report.edges)), tuple(
            tuple(cycle) for cycle in report.cycles
        )

    first = run()
    second = run()
    assert first == second
    assert first[1], "three-lock ring must report a cycle"
