"""Deterministic, seedable fault injection (``repro.faults``).

A :class:`FaultPlan` decides, per *fault site*, whether each opportunity
to fail actually fails.  Sites are string labels naming one place a layer
consults the plan — the simulated disk's read path, the build pipeline's
worker dispatch, the run-file merge.  Decisions are driven entirely by a
seeded RNG (one independent stream per site, so consulting one site never
perturbs another) plus per-site trigger counts; no wall clock, no global
state.  Two runs with the same seed and the same sequence of
``should_fire`` calls make identical decisions — the property the chaos
harness (:mod:`repro.chaos`) relies on for bit-for-bit reproducibility.

Layers that accept a plan:

* :class:`~repro.storage.disk.SimulatedDisk` — ``disk.fault_plan``
  injects read errors, torn reads, persistent bit flips and slow reads;
* :mod:`repro.build.pipeline` — ``fault_plan=`` crashes workers and
  corrupts spilled run files (both retried per shard);
* :class:`~repro.engine.XRankEngine` — :meth:`~repro.engine.XRankEngine.
  set_fault_plan` attaches one plan to every built index's disk;
* :class:`~repro.durability.CrashSimulator` — write-side sites kill the
  snapshot writer mid-stream (torn writes, dropped fsyncs, power cuts at
  seeded byte offsets).

Every fault a plan injects surfaces as a typed
:class:`~repro.errors.ReproError` subclass (enforced by the
``fault-typed-errors`` lint rule): silent failure modes exist only as the
*corruptions* checksums are there to catch.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .storage.checksum import crc32c

# -- fault sites ---------------------------------------------------------------------

#: One simulated page read fails outright (I/O error; transient).
SITE_READ_ERROR = "disk.read.error"
#: One read returns a truncated page (torn read; transient).
SITE_READ_TORN = "disk.read.torn"
#: One stored page gets a bit flipped in place (bit rot; persistent).
SITE_READ_BITFLIP = "disk.read.bitflip"
#: One read is charged a rotational-stall penalty (slow read; benign).
SITE_READ_SLOW = "disk.read.slow"
#: One build worker process dies without returning its shard.
SITE_WORKER_CRASH = "build.worker.crash"
#: One spilled run file gets a byte flipped before the merge reads it.
SITE_RUNFILE_CORRUPT = "build.runfile.corrupt"
#: One snapshot write lands a seeded prefix, then the power dies (torn
#: write; fatal to the write, survivable by recovery).
SITE_WRITE_TORN = "disk.write.torn"
#: One snapshot write fails outright before any bytes land (I/O error;
#: transient).
SITE_WRITE_ERROR = "disk.write.error"
#: One fsync silently does nothing: the bytes stay in the (simulated)
#: page cache and a later power cut drops them (silent; only checksums
#: and recovery ordering can absorb it).
SITE_FSYNC_DROPPED = "snapshot.fsync.dropped"
#: The power dies at a seeded byte offset of the snapshot write stream;
#: unsynced bytes are truncated and unsealed renames undone.
SITE_POWERCUT = "snapshot.powercut"

#: The storage-layer sites (what a "read-fault rate" applies to).
READ_SITES = (SITE_READ_ERROR, SITE_READ_TORN, SITE_READ_BITFLIP)

#: The snapshot-writer sites (what the durability battery storms).
WRITE_SITES = (
    SITE_WRITE_TORN,
    SITE_WRITE_ERROR,
    SITE_FSYNC_DROPPED,
    SITE_POWERCUT,
)

#: Every site any layer consults.
ALL_SITES = READ_SITES + (
    SITE_READ_SLOW,
    SITE_WORKER_CRASH,
    SITE_RUNFILE_CORRUPT,
) + WRITE_SITES


@dataclass(frozen=True)
class FaultSpec:
    """How one site misbehaves.

    Attributes:
        site: the fault-site label this spec applies to.
        probability: chance in [0, 1] that each eligible call fires.
        times: cap on total fires (None = unlimited) — ``times=1`` with
            ``probability=1.0`` is a deterministic "fail exactly once,
            then recover" trigger, the shape retry tests want.
        skip: number of initial calls that can never fire (lets a plan
            target steady state rather than the first touch).
    """

    site: str
    probability: float = 0.0
    times: Optional[int] = None
    skip: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(  # repro: ignore[fault-typed-errors] — config validation, not a fault site
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.times is not None and self.times < 0:
            raise ValueError(  # repro: ignore[fault-typed-errors] — config validation, not a fault site
                f"times cannot be negative, got {self.times}"
            )


class FaultPlan:
    """Seeded, thread-safe fault decisions over a set of sites.

    Each site draws from its own :class:`random.Random` stream seeded
    from ``(seed, crc32c(site))``, so the interleaving of calls across
    sites cannot change any single site's decision sequence — build
    faults consulted before query faults do not shift the query faults.
    """

    def __init__(self, seed: int = 0, specs: Iterable[FaultSpec] = ()):
        self.seed = seed
        self._lock = threading.Lock()
        self._specs: Dict[str, FaultSpec] = {}  # guarded by: self._lock
        self._rngs: Dict[str, random.Random] = {}  # guarded by: self._lock
        self._calls: Dict[str, int] = {}  # guarded by: self._lock
        self._fires: Dict[str, int] = {}  # guarded by: self._lock
        for spec in specs:
            self._specs[spec.site] = spec
            self._rngs[spec.site] = self._stream(spec.site)
            self._calls[spec.site] = 0
            self._fires[spec.site] = 0

    @classmethod
    def uniform(
        cls,
        seed: int,
        rate: float,
        sites: Iterable[str] = READ_SITES,
        times: Optional[int] = None,
    ) -> "FaultPlan":
        """One plan firing every listed site at the same probability."""
        return cls(
            seed,
            [FaultSpec(site, probability=rate, times=times) for site in sites],
        )

    def _stream(self, site: str) -> random.Random:
        return random.Random((self.seed << 32) ^ crc32c(site.encode("utf-8")))

    # -- decisions -------------------------------------------------------------

    def should_fire(self, site: str) -> bool:
        """One eligible call at ``site``: does it fail?"""
        with self._lock:
            spec = self._specs.get(site)
            if spec is None:
                return False
            calls = self._calls[site]
            self._calls[site] = calls + 1
            if calls < spec.skip:
                return False
            if spec.times is not None and self._fires[site] >= spec.times:
                return False
            if spec.probability <= 0.0:
                return False
            if (
                spec.probability < 1.0
                and self._rngs[site].random() >= spec.probability
            ):
                return False
            self._fires[site] += 1
            return True

    def choose(self, site: str, bound: int) -> int:
        """A deterministic value in [0, bound) parameterizing a fired fault
        (which byte to flip, where to tear)."""
        with self._lock:
            rng = self._rngs.get(site)
            if rng is None or bound <= 0:
                return 0
            return rng.randrange(bound)

    # -- introspection ----------------------------------------------------------

    def fires(self, site: str) -> int:
        """How many times the site has fired so far."""
        with self._lock:
            return self._fires.get(site, 0)

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Per-site ``{"calls": n, "fires": m}`` (chaos-report material)."""
        with self._lock:
            return {
                site: {"calls": self._calls[site], "fires": self._fires[site]}
                for site in sorted(self._specs)
            }

    def sites(self) -> List[str]:
        """The sites this plan covers, sorted."""
        with self._lock:
            return sorted(self._specs)

    # -- pickling (engines persist disks; plans ride along) ---------------------

    def __getstate__(self) -> dict:
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


#: A plan with no specs: never fires, shared as a cheap default.
NO_FAULTS = FaultPlan(0, ())


@dataclass
class FaultReport:
    """What actually fired during one faulted run (for chaos output)."""

    seed: int = 0
    sites: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @classmethod
    def from_plan(cls, plan: FaultPlan) -> "FaultReport":
        """Snapshot a plan's per-site call/fire counters."""
        return cls(seed=plan.seed, sites=plan.counters())

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view (chaos report material)."""
        return {"seed": self.seed, "sites": self.sites}
