"""The XRANK serving layer: concurrency, caching, admission, HTTP.

The core reproduction (:class:`repro.engine.XRankEngine`) is a
single-threaded library; this package grows it into a deployable query
service, the same step the hybrid/native XML-IR systems surveyed in the
related work took on top of their core indexes:

* :mod:`repro.service.concurrency` — a reader-writer lock so many
  searches proceed concurrently while index updates take exclusive
  writes;
* :mod:`repro.service.cache` — a thread-safe generational LRU cache used
  for both decoded posting lists and full query results, invalidated by
  the engine's generation counter on every index update;
* :mod:`repro.service.admission` — a bounded admission queue plus the
  cooperative :class:`Deadline` threaded down into the DIL/RDIL/HDIL
  evaluator loops (expiring queries return partial, ``degraded`` top-k);
* :mod:`repro.service.metrics` — QPS, latency percentiles, cache hit
  rates and queue depth, aggregating the storage layer's I/O counters;
* :mod:`repro.service.core` — :class:`XRankService`, the in-process
  facade tying all of the above around one engine;
* :mod:`repro.service.server` — a stdlib-only threaded JSON-over-HTTP
  server (``/search``, ``/add``, ``/stats``, ``/healthz``);
* :mod:`repro.service.client` — the matching HTTP client used by the
  load-generating benchmark.
"""

from .admission import AdmissionController, Deadline
from .cache import GenerationalLRU
from .concurrency import ReadWriteLock
from .core import SearchResponse, XRankService
from .metrics import ServiceMetrics

__all__ = [
    "AdmissionController",
    "Deadline",
    "GenerationalLRU",
    "ReadWriteLock",
    "SearchResponse",
    "ServiceMetrics",
    "XRankService",
]
