"""CRC32C (Castagnoli) page checksums for the simulated disk.

Real storage engines checksum every page so that torn writes and bit rot
are *detected* at read time instead of silently flowing into query
results; XRANK's inverted lists, B+-trees and hash buckets all live on
:class:`~repro.storage.disk.SimulatedDisk` pages, so one checksum layer
covers every persistent structure.  The Castagnoli polynomial (0x1EDC6F41,
reflected 0x82F63B78) is the variant used by iSCSI, ext4 and most modern
storage systems; it detects all single-bit flips and all burst errors
shorter than the checksum, which covers the fault model injected by
:mod:`repro.faults` (bit flips, truncated/torn pages).

Pure Python with a precomputed 256-entry table: deterministic everywhere,
no dependencies, and fast enough for the simulated page sizes (checksums
are only verified on buffer-pool *misses*, the reads that model an actual
disk fetch).
"""

from __future__ import annotations

_POLY = 0x82F63B78  # CRC-32C (Castagnoli), reflected form


def _make_table() -> tuple:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_TABLE = _make_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """The CRC32C of ``data`` (optionally continuing from ``crc``)."""
    crc ^= 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def checksum_frame(data: bytes) -> bytes:
    """``data``'s CRC32C as 4 little-endian bytes (run-file block trailer)."""
    return crc32c(data).to_bytes(4, "little")
