"""Dewey IDs: hierarchical element identifiers (paper Section 4.2).

A Dewey ID is the path vector of sibling positions from the root of a
document down to an element.  The first component is the *document id*, so a
single ID is globally unique across a collection.  Two properties make Dewey
IDs the backbone of XRANK's indexes:

* the ID of an ancestor is a strict prefix of the ID of every descendant, so
  ancestor/descendant tests and deepest-common-ancestor computations reduce
  to prefix operations; and
* components are *relative* sibling positions, so they are small integers
  that compress well with a variable-length byte encoding.

The binary encoding used for space accounting is a standard unsigned varint
(7 bits per byte, high bit = continuation) per component, length-prefixed by
the component count.  This mirrors the paper's observation that "a small
number of bits are usually sufficient to encode each component".
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from ..errors import DeweyError


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned LEB128 varint."""
    if value < 0:
        raise DeweyError(f"varint components must be non-negative, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise DeweyError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise DeweyError("varint too long")


class DeweyId:
    """An immutable, totally ordered Dewey identifier.

    Components are compared lexicographically, which is exactly document
    order for elements of one document, with the document id (component 0)
    ordering across documents.

    ``DeweyId`` instances hash and compare by value and support the prefix
    algebra the query algorithms need: :meth:`is_ancestor_of`,
    :meth:`common_prefix`, :meth:`parent` and :meth:`child`.
    """

    __slots__ = ("_components", "_hash")

    def __init__(self, components: Iterable[int]):
        comps = tuple(int(c) for c in components)
        if not comps:
            raise DeweyError("a Dewey ID needs at least one component")
        for c in comps:
            if c < 0:
                raise DeweyError(f"Dewey components must be >= 0, got {c}")
        self._components = comps
        self._hash = hash(comps)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def root(cls, doc_id: int) -> "DeweyId":
        """The ID of the root element of document ``doc_id``."""
        return cls((doc_id,))

    @classmethod
    def parse(cls, text: str) -> "DeweyId":
        """Parse the dotted notation used throughout the paper, e.g. ``"5.0.3.0.1"``."""
        try:
            return cls(int(part) for part in text.split("."))
        except ValueError as exc:
            raise DeweyError(f"cannot parse Dewey ID {text!r}") from exc

    # -- basic accessors -----------------------------------------------------

    @property
    def components(self) -> Tuple[int, ...]:
        return self._components

    @property
    def doc_id(self) -> int:
        """The document id (first component)."""
        return self._components[0]

    @property
    def depth(self) -> int:
        """Number of components below the document id (root element = 0)."""
        return len(self._components) - 1

    def __len__(self) -> int:
        return len(self._components)

    def __getitem__(self, index: int) -> int:
        return self._components[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    # -- ordering / equality ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DeweyId) and self._components == other._components

    def __lt__(self, other: "DeweyId") -> bool:
        return self._components < other._components

    def __le__(self, other: "DeweyId") -> bool:
        return self._components <= other._components

    def __gt__(self, other: "DeweyId") -> bool:
        return self._components > other._components

    def __ge__(self, other: "DeweyId") -> bool:
        return self._components >= other._components

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"DeweyId({str(self)!r})"

    def __str__(self) -> str:
        return ".".join(str(c) for c in self._components)

    # -- prefix algebra --------------------------------------------------------

    def is_prefix_of(self, other: "DeweyId") -> bool:
        """True when ``self`` equals ``other`` or is an ancestor of it."""
        n = len(self._components)
        return (
            n <= len(other._components)
            and other._components[:n] == self._components
        )

    def is_ancestor_of(self, other: "DeweyId") -> bool:
        """Strict ancestor test (``self != other``)."""
        return len(self) < len(other) and self.is_prefix_of(other)

    def is_descendant_of(self, other: "DeweyId") -> bool:
        """Strict descendant test."""
        return other.is_ancestor_of(self)

    def common_prefix(self, other: "DeweyId") -> Optional["DeweyId"]:
        """The deepest common ancestor of the two IDs.

        Returns ``None`` when the IDs belong to different documents, i.e.
        when not even the document-id component matches.
        """
        n = self.common_prefix_length(other)
        if n == 0:
            return None
        return DeweyId(self._components[:n])

    def common_prefix_length(self, other: "DeweyId") -> int:
        """Length (in components) of the longest common prefix."""
        n = 0
        for a, b in zip(self._components, other._components):
            if a != b:
                break
            n += 1
        return n

    def prefix(self, length: int) -> "DeweyId":
        """The ancestor ID made of the first ``length`` components."""
        if not 1 <= length <= len(self._components):
            raise DeweyError(
                f"prefix length {length} out of range for {self}"
            )
        return DeweyId(self._components[:length])

    def parent(self) -> Optional["DeweyId"]:
        """The parent element's ID, or ``None`` at the document root."""
        if len(self._components) == 1:
            return None
        return DeweyId(self._components[:-1])

    def child(self, position: int) -> "DeweyId":
        """The ID of the child at sibling ``position``."""
        if position < 0:
            raise DeweyError("child position must be >= 0")
        return DeweyId(self._components + (position,))

    def ancestors(self) -> Iterator["DeweyId"]:
        """Yield every strict ancestor, nearest first (parent, ..., doc root)."""
        for length in range(len(self._components) - 1, 0, -1):
            yield DeweyId(self._components[:length])

    def successor_sibling(self) -> "DeweyId":
        """The smallest ID strictly greater than every descendant of ``self``.

        Used as an exclusive upper bound for B+-tree range scans over the
        subtree rooted at ``self``.
        """
        return DeweyId(self._components[:-1] + (self._components[-1] + 1,))

    # -- binary codec ----------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize as ``varint(count) || varint(component)*``."""
        out = bytearray(encode_varint(len(self._components)))
        for c in self._components:
            out += encode_varint(c)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> Tuple["DeweyId", int]:
        """Deserialize a Dewey ID; returns ``(id, next_offset)``."""
        count, pos = decode_varint(data, offset)
        if count == 0:
            raise DeweyError("encoded Dewey ID has zero components")
        comps = []
        for _ in range(count):
            value, pos = decode_varint(data, pos)
            comps.append(value)
        return cls(comps), pos

    def encoded_size(self) -> int:
        """Size in bytes of :meth:`encode`'s output (for space accounting)."""
        return len(self.encode())


def deepest_common_ancestor(ids: Iterable[DeweyId]) -> Optional[DeweyId]:
    """Deepest common ancestor of a collection of Dewey IDs.

    Returns ``None`` for an empty collection or when the IDs span multiple
    documents.
    """
    iterator = iter(ids)
    try:
        first = next(iterator)
    except StopIteration:
        return None
    prefix = first.components
    for other in iterator:
        n = 0
        for a, b in zip(prefix, other.components):
            if a != b:
                break
            n += 1
        if n == 0:
            return None
        prefix = prefix[:n]
    return DeweyId(prefix)
