"""An XMark-like synthetic corpus (paper Section 5.1 substitution).

The paper's second dataset is the XMark auction benchmark at scale 1.0:
one deep XML document (depth about 10) with many **intra-document** IDREF
references (auctions referencing items and sellers).  XMark's ``xmlgen``
generator is unavailable offline, so this module reproduces the schema
skeleton and the two structural properties the experiments depend on —
depth and IDREF density:

    site
      regions/<continent>/item (id attr)
        description/parlist/listitem/parlist/listitem/text   <- depth ~10
      categories/category (id attr) /description
      people/person (id attr) /profile/interest (category ref),
        watches/watch (ref -> item)
      open_auctions/open_auction
        bidder/increase, itemref (ref -> item), seller (ref -> person)
      closed_auctions/closed_auction ...

With ``plant_anecdotes=True`` one item is named "stained" with "mirror" in
its description and is referenced by many auctions, recreating the paper's
'stained mirror' anecdote.
"""

from __future__ import annotations

from typing import List, Optional

from ..xmlmodel.graph import CollectionGraph
from ..xmlmodel.parser import parse_xml
from .dblp import Corpus
from .textgen import PlantedKeywords, TextGenerator

_CONTINENTS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


def _deep_description(gen: TextGenerator, depth: int) -> str:
    """Nested parlist/listitem levels ending in a text block."""
    if depth <= 0:
        return f"<text>{gen.text_block(10, 40)}</text>"
    inner = _deep_description(gen, depth - 1)
    return f"<parlist><listitem>{inner}</listitem><listitem><text>{gen.text_block(5, 20)}</text></listitem></parlist>"


def generate_xmark(
    num_items: int = 120,
    num_people: int = 60,
    num_auctions: int = 150,
    num_categories: int = 10,
    seed: int = 23,
    planted: Optional[PlantedKeywords] = None,
    plant_anecdotes: bool = False,
    doc_id: int = 0,
) -> Corpus:
    """Generate one deep XMark-like auction document."""
    gen = TextGenerator(seed=seed, planted=planted)

    categories: List[str] = []
    for c in range(num_categories):
        categories.append(
            f'<category id="cat{c}">'
            f"<name>{gen.title(1, 2)}</name>"
            f"<description><text>{gen.text_block(8, 25)}</text></description>"
            f"</category>"
        )

    items: List[str] = []
    for i in range(num_items):
        gen.new_scope()  # striping scope: one per top-level entity
        continent = _CONTINENTS[i % len(_CONTINENTS)]
        name = gen.title(1, 3)
        description_depth = 2 + (i % 3)
        description = _deep_description(gen, description_depth)
        if plant_anecdotes and i == 0:
            name = "stained"
            description = (
                f"<parlist><listitem><text>antique mirror with "
                f"{gen.text_block(8, 20)}</text></listitem></parlist>"
            )
        items.append(
            f'<item id="item{i}" featured="{"yes" if i % 7 == 0 else "no"}">'
            f"<location>{continent}</location>"
            f"<name>{name}</name>"
            f"<payment>{gen.choice(['cash', 'check', 'credit'])}</payment>"
            f"<description>{description}</description>"
            f"<quantity>{gen.randint(1, 5)}</quantity>"
            f"</item>"
        )

    people: List[str] = []
    for p in range(num_people):
        interests = "".join(
            f'<interest ref="cat{gen.randint(0, num_categories - 1)}"/>'
            for _ in range(gen.randint(0, 3))
        )
        watches = "".join(
            f'<watch ref="item{gen.randint(0, num_items - 1)}"/>'
            for _ in range(gen.randint(0, 2))
        )
        people.append(
            f'<person id="person{p}">'
            f"<name>{gen.name()}</name>"
            f"<emailaddress>mailto person{p} example com</emailaddress>"
            f"<profile income=\"{gen.randint(20, 200)}\">"
            f"<education>{gen.choice(['high school', 'college', 'graduate school'])}</education>"
            f"{interests}</profile>"
            f"<watches>{watches}</watches>"
            f"</person>"
        )

    auctions: List[str] = []
    for a in range(num_auctions):
        gen.new_scope()
        if plant_anecdotes and a < 20:
            item_ref = 0  # many auctions reference the 'stained' item
        else:
            item_ref = gen.randint(0, num_items - 1)
        seller = gen.randint(0, num_people - 1)
        bidders = "".join(
            f"<bidder><date>{gen.randint(1, 28)} {gen.randint(1, 12)} 2000</date>"
            f"<increase>{gen.randint(1, 50)}</increase></bidder>"
            for _ in range(gen.randint(0, 4))
        )
        auctions.append(
            f"<open_auction>"
            f"<initial>{gen.randint(5, 500)}</initial>"
            f"{bidders}"
            f'<itemref ref="item{item_ref}"/>'
            f'<seller ref="person{seller}"/>'
            f"<annotation>{gen.text_block(5, 25)}</annotation>"
            f"</open_auction>"
        )

    closed: List[str] = []
    for c in range(num_auctions // 3):
        closed.append(
            f"<closed_auction>"
            f'<itemref ref="item{gen.randint(0, num_items - 1)}"/>'
            f'<buyer ref="person{gen.randint(0, num_people - 1)}"/>'
            f"<price>{gen.randint(10, 900)}</price>"
            f"</closed_auction>"
        )

    region_items: List[List[str]] = [[] for _ in _CONTINENTS]
    for i, item in enumerate(items):
        region_items[i % len(_CONTINENTS)].append(item)
    regions = "".join(
        f"<{continent}>{''.join(bucket)}</{continent}>"
        for continent, bucket in zip(_CONTINENTS, region_items)
    )

    source = (
        "<site>"
        f"<regions>{regions}</regions>"
        f"<categories>{''.join(categories)}</categories>"
        f"<people>{''.join(people)}</people>"
        f"<open_auctions>{''.join(auctions)}</open_auctions>"
        f"<closed_auctions>{''.join(closed)}</closed_auctions>"
        "</site>"
    )

    document = parse_xml(source, doc_id=doc_id, uri="xmark")
    graph = CollectionGraph()
    graph.add_document(document)
    graph.finalize()
    return Corpus("xmark", graph, [document], planted)
