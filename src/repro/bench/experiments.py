"""Drivers that regenerate every table and figure of the paper's evaluation.

Each ``run_*`` function returns structured data plus a formatted text block;
the ``benchmarks/`` suite calls them under pytest-benchmark and
``EXPERIMENTS.md`` records their output against the paper's numbers.

| Paper artifact        | Driver                       |
|-----------------------|------------------------------|
| Table 1 (space)       | :func:`run_table1`           |
| Figure 10 (high corr) | :func:`run_fig10`            |
| Figure 11 (low corr)  | :func:`run_fig11`            |
| Sec 3.2 (convergence) | :func:`run_convergence`      |
| Sec 5.2 (anecdotes)   | :func:`run_ranking_quality`  |
| Sec 5.4 / [18] (vary m) | :func:`run_vary_m`         |
| Ablations (ours)      | :func:`run_ablation_decay`, :func:`run_ablation_variants` |
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..config import ElemRankParams, RankingParams
from ..datasets.dblp import generate_dblp
from ..datasets.workloads import (
    high_correlation_queries,
    low_correlation_queries,
)
from ..datasets.xmark import generate_xmark
from ..engine import XRankEngine
from ..ranking.elemrank import ElemRankVariant, compute_elemrank
from .harness import (
    APPROACHES,
    BenchmarkSuite,
    ExperimentTable,
        SeriesPoint,
)


# ---------------------------------------------------------------------------
# Table 1: space requirements
# ---------------------------------------------------------------------------

def run_table1(suite: BenchmarkSuite) -> Tuple[Dict[str, Dict[str, Dict[str, object]]], str]:
    """Space of inverted lists and auxiliary indexes per approach per corpus."""
    data: Dict[str, Dict[str, Dict[str, object]]] = {}
    lines = [
        "== Table 1: Space Requirements ==",
        f"{'':14}{'DBLP lists':>12}{'DBLP index':>12}{'XMark lists':>13}{'XMark index':>13}",
    ]
    for approach in APPROACHES:
        row: Dict[str, Dict[str, object]] = {}
        cells = [f"{approach:<14}"]
        for corpus_name, indexed in suite.corpora.items():
            report = indexed.indexes[approach].space_report()
            row[corpus_name] = {
                "inverted_list_bytes": report.inverted_list_bytes,
                "index_bytes": report.index_bytes,
            }
            cells.append(f"{report.inverted_list_bytes / 1024:>11.1f}K")
            cells.append(
                f"{'N/A':>12}"
                if report.index_bytes is None
                else f"{report.index_bytes / 1024:>11.1f}K"
            )
        data[approach] = row
        lines.append("".join(cells))
    return data, "\n".join(lines)


# ---------------------------------------------------------------------------
# Figures 10 and 11: query performance vs number of keywords
# ---------------------------------------------------------------------------

def run_fig10(
    suite: BenchmarkSuite,
    keyword_counts: Sequence[int] = (1, 2, 3, 4),
    m: int = 10,
    approaches: Sequence[str] = APPROACHES,
    corpus: str = "dblp",
) -> ExperimentTable:
    """High keyword correlation (RDIL should win; HDIL should track it)."""
    indexed = suite.corpora[corpus]
    table = ExperimentTable(
        f"Figure 10: high keyword correlation ({corpus})",
        "num keywords",
        "simulated query cost, ms (cold cache)",
    )
    for n in keyword_counts:
        workload = high_correlation_queries(suite.planted, n, num_queries=4)
        point = SeriesPoint(x=n)
        for approach in approaches:
            point.values[approach] = indexed.mean_cost(
                approach, workload.queries, m=m
            )
        table.points.append(point)
    return table


def run_fig11(
    suite: BenchmarkSuite,
    keyword_counts: Sequence[int] = (1, 2, 3, 4),
    m: int = 10,
    approaches: Sequence[str] = ("dil", "rdil", "hdil"),
    corpus: str = "dblp",
) -> ExperimentTable:
    """Low keyword correlation (DIL should win; RDIL degrades)."""
    indexed = suite.corpora[corpus]
    table = ExperimentTable(
        f"Figure 11: low keyword correlation ({corpus})",
        "num keywords",
        "simulated query cost, ms (cold cache)",
    )
    for n in keyword_counts:
        workload = low_correlation_queries(suite.planted, n, num_queries=4)
        point = SeriesPoint(x=n)
        for approach in approaches:
            point.values[approach] = indexed.mean_cost(
                approach, workload.queries, m=m
            )
        table.points.append(point)
    return table


# ---------------------------------------------------------------------------
# Section 3.2: ElemRank convergence
# ---------------------------------------------------------------------------

@dataclass
class ConvergenceRow:
    corpus: str
    variant: str
    d1: float
    d2: float
    d3: float
    iterations: int
    elapsed_seconds: float
    converged: bool


def run_convergence(
    suite: BenchmarkSuite,
    d_settings: Sequence[Tuple[float, float, float]] = (
        (0.35, 0.25, 0.25),  # the paper's setting
        (0.55, 0.15, 0.15),
        (0.15, 0.35, 0.35),
        (0.25, 0.45, 0.15),
    ),
) -> Tuple[List[ConvergenceRow], str]:
    """Convergence of the final ElemRank under the paper's d-sweep.

    The paper reports convergence within 10 min (DBLP) / 5 min (XMark) at
    threshold 2e-5, and that varying d1/d2/d3 "does not have a significant
    effect on algorithm convergence time".
    """
    rows: List[ConvergenceRow] = []
    for corpus_name, indexed in suite.corpora.items():
        graph = indexed.corpus.graph
        for d1, d2, d3 in d_settings:
            params = ElemRankParams(d1=d1, d2=d2, d3=d3)
            result = compute_elemrank(graph, params)
            rows.append(
                ConvergenceRow(
                    corpus_name,
                    result.variant.value,
                    d1,
                    d2,
                    d3,
                    result.iterations,
                    result.elapsed_seconds,
                    result.converged,
                )
            )
    lines = [
        "== Section 3.2: ElemRank convergence ==",
        f"{'corpus':<8}{'d1':>6}{'d2':>6}{'d3':>6}{'iters':>7}{'secs':>9}{'ok':>4}",
    ]
    for row in rows:
        lines.append(
            f"{row.corpus:<8}{row.d1:>6.2f}{row.d2:>6.2f}{row.d3:>6.2f}"
            f"{row.iterations:>7}{row.elapsed_seconds:>9.3f}"
            f"{'y' if row.converged else 'N':>4}"
        )
    return rows, "\n".join(lines)


# ---------------------------------------------------------------------------
# Section 5.4 text / technical report: varying the number of results m
# ---------------------------------------------------------------------------

def run_vary_m(
    suite: BenchmarkSuite,
    m_values: Sequence[int] = (1, 5, 10, 25, 50),
    num_keywords: int = 2,
    approaches: Sequence[str] = ("dil", "rdil", "hdil"),
) -> ExperimentTable:
    """DIL should be flat in m; RDIL's cost should grow with m."""
    table = ExperimentTable(
        "Vary number of results m (high correlation, DBLP)",
        "m",
        "simulated query cost, ms (cold cache)",
    )
    workload = high_correlation_queries(suite.planted, num_keywords, num_queries=4)
    for m in m_values:
        point = SeriesPoint(x=m)
        for approach in approaches:
            point.values[approach] = suite.dblp.mean_cost(
                approach, workload.queries, m=m
            )
        table.points.append(point)
    return table


# ---------------------------------------------------------------------------
# Section 5.2: ranking-quality anecdotes
# ---------------------------------------------------------------------------

@dataclass
class AnecdoteOutcome:
    query: str
    corpus: str
    hits: List[str] = field(default_factory=list)
    observation: str = ""
    passed: bool = False


def run_ranking_quality(
    num_papers: int = 250, seed: int = 5
) -> Tuple[List[AnecdoteOutcome], str]:
    """Replay the paper's anecdotal queries on anecdote-planted corpora.

    * 'gray' should surface both <author> elements of heavily cited papers
      by Jim Gray and <title> elements of gray-codes papers;
    * 'author gray' should demote the gray-codes titles (two-dimensional
      proximity: the words 'author' and 'gray' are far apart there);
    * 'stained mirror' on XMark should return a specific item sub-tree, not
      the whole site.
    """
    outcomes: List[AnecdoteOutcome] = []

    engine = XRankEngine()
    dblp = generate_dblp(
        num_papers=num_papers, seed=seed, plant_anecdotes=True
    )
    for document in dblp.documents:
        engine.add_document(document)
    engine.build(kinds=["hdil"])

    hits = engine.search("gray", m=10)
    tags = [hit.tag for hit in hits]
    outcome = AnecdoteOutcome(
        "gray",
        "dblp",
        [str(hit) for hit in hits[:6]],
        f"top tags: {tags[:6]}",
        passed="author" in tags and "title" in tags,
    )
    outcomes.append(outcome)

    author_hits = engine.search("author gray", m=10)
    def best_rank_of_tag(results, tag):
        for position, hit in enumerate(results):
            if hit.tag == tag:
                return position
        return len(results)
    outcome = AnecdoteOutcome(
        "author gray",
        "dblp",
        [str(hit) for hit in author_hits[:6]],
        "title elements should drop below author-bearing results",
        passed=best_rank_of_tag(author_hits, "title")
        >= best_rank_of_tag(hits, "title"),
    )
    outcomes.append(outcome)

    xmark_engine = XRankEngine()
    xmark = generate_xmark(seed=seed + 1, plant_anecdotes=True)
    for document in xmark.documents:
        xmark_engine.add_document(document)
    xmark_engine.build(kinds=["hdil"])
    stained = xmark_engine.search("stained mirror", m=5)
    outcome = AnecdoteOutcome(
        "stained mirror",
        "xmark",
        [str(hit) for hit in stained[:5]],
        "the referenced item's subtree should be the top, specific result",
        passed=bool(stained) and stained[0].tag in ("item", "description", "text", "listitem", "parlist"),
    )
    outcomes.append(outcome)

    lines = ["== Section 5.2: ranking quality anecdotes =="]
    for outcome in outcomes:
        lines.append(f"[{'PASS' if outcome.passed else 'FAIL'}] '{outcome.query}' on {outcome.corpus}: {outcome.observation}")
        lines.extend(f"    {hit}" for hit in outcome.hits)
    return outcomes, "\n".join(lines)


# ---------------------------------------------------------------------------
# Ablations (design decisions called out in DESIGN.md)
# ---------------------------------------------------------------------------

def run_ablation_decay(
    suite: BenchmarkSuite,
    decays: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    m: int = 10,
) -> Tuple[Dict[float, List[str]], str]:
    """How the specificity decay reshapes the top results (2-keyword query)."""
    from ..query.dil_eval import DILEvaluator

    query = suite.planted.correlated_groups[0][:2]
    data: Dict[float, List[str]] = {}
    lines = ["== Ablation: specificity decay =="]
    for decay in decays:
        params = RankingParams(decay=decay)
        evaluator = DILEvaluator(suite.dblp.indexes["dil"], params)
        results = evaluator.evaluate(query, m=m)
        data[decay] = [str(r.dewey) for r in results]
        depths = [r.dewey.depth for r in results]
        mean_depth = sum(depths) / len(depths) if depths else 0.0
        lines.append(
            f"decay={decay:<5} results={len(results):<3} "
            f"mean result depth={mean_depth:.2f}"
        )
    lines.append("note: higher decay keeps shallow (less specific) results competitive")
    return data, "\n".join(lines)


def run_ablation_variants(
    suite: BenchmarkSuite, top_k: int = 25
) -> Tuple[Dict[str, float], str]:
    """Overlap of top-k elements between ElemRank variants and the final E4."""
    graph = suite.dblp.corpus.graph
    baseline = compute_elemrank(graph, variant=ElemRankVariant.E4_FINAL)
    base_top = set(
        int(i) for i in baseline.scores.argsort()[::-1][:top_k]
    )
    overlaps: Dict[str, float] = {}
    lines = [f"== Ablation: ElemRank variants (top-{top_k} overlap vs E4) =="]
    for variant in ElemRankVariant:
        result = compute_elemrank(graph, variant=variant)
        top = set(int(i) for i in result.scores.argsort()[::-1][:top_k])
        overlap = len(top & base_top) / top_k
        overlaps[variant.value] = overlap
        lines.append(
            f"{variant.value:<18} overlap={overlap:>5.2f} "
            f"iters={result.iterations:<4} converged={result.converged}"
        )
    return overlaps, "\n".join(lines)


def run_ablation_proximity(
    suite: BenchmarkSuite, m: int = 10
) -> Tuple[Dict[str, List[str]], str]:
    """Proximity on vs off for a correlated 2-keyword query."""
    from ..query.dil_eval import DILEvaluator

    query = suite.planted.correlated_groups[0][:2]
    data: Dict[str, List[str]] = {}
    lines = ["== Ablation: keyword proximity on/off =="]
    for label, use in (("proximity-on", True), ("proximity-off", False)):
        params = RankingParams(use_proximity=use)
        evaluator = DILEvaluator(suite.dblp.indexes["dil"], params)
        results = evaluator.evaluate(query, m=m)
        data[label] = [f"{r.dewey}:{r.rank:.5f}" for r in results]
        lines.append(f"{label:<14} top: {data[label][:4]}")
    return data, "\n".join(lines)


# ---------------------------------------------------------------------------
# Warm cache (technical report [18]: "Results with a warm cache")
# ---------------------------------------------------------------------------

def run_warm_cache(
    suite: BenchmarkSuite,
    num_keywords: int = 2,
    m: int = 10,
    approaches: Sequence[str] = ("dil", "rdil", "hdil"),
) -> Tuple[Dict[str, Dict[str, float]], str]:
    """Cold vs warm buffer pool for the same high-correlation query.

    The paper's measurements use a cold OS cache; the companion technical
    report also reports warm-cache numbers.  Warm runs repeat the query
    without dropping the buffer pool, so the random-probe-heavy approaches
    benefit the most (their hot pages — B+-tree roots and list heads — fit
    in the pool).
    """
    query = high_correlation_queries(suite.planted, num_keywords).queries[0]
    data: Dict[str, Dict[str, float]] = {}
    lines = [
        "== Warm vs cold cache (high correlation, DBLP) ==",
        f"{'approach':<10}{'cold ms':>10}{'warm ms':>10}{'speedup':>9}",
    ]
    for approach in approaches:
        cold = suite.dblp.measure(approach, query, m=m).cost_ms
        index = suite.dblp.indexes[approach]
        evaluator = suite.dblp.evaluators[approach]
        index.disk.reset_stats()  # keep the pool warm from the cold run
        evaluator.evaluate(list(query), m=m)
        warm = index.io_cost_ms()
        speedup = cold / warm if warm > 0 else float("inf")
        data[approach] = {"cold_ms": cold, "warm_ms": warm, "speedup": speedup}
        shown = "cached" if warm == 0 else f"{speedup:.1f}x"
        lines.append(f"{approach:<10}{cold:>10.1f}{warm:>10.1f}{shown:>9}")
    return data, "\n".join(lines)


# ---------------------------------------------------------------------------
# Keyword selectivity (the fourth factor of Section 5.4)
# ---------------------------------------------------------------------------

def run_selectivity(
    suite: BenchmarkSuite,
    m: int = 10,
    approaches: Sequence[str] = ("dil", "rdil", "hdil"),
    bands: Sequence[str] = ("high", "medium"),
) -> ExperimentTable:
    """Query cost by keyword document-frequency band.

    The paper found selectivity "not as interesting" because highly
    selective keywords yield short lists where every approach is fast; the
    driver confirms that DIL's cost tracks list length while the ranked
    approaches are less sensitive.
    """
    from ..datasets.workloads import random_queries

    table = ExperimentTable(
        "Keyword selectivity (random 2-keyword queries, DBLP)",
        "selectivity",
        "simulated query cost, ms (cold cache)",
    )
    for band_index, band in enumerate(bands):
        workload = random_queries(
            suite.dblp.corpus.graph, 2, num_queries=4,
            selectivity_band=band, seed=17,
        )
        point = SeriesPoint(x=band_index)
        for approach in approaches:
            point.values[approach] = suite.dblp.mean_cost(
                approach, workload.queries, m=m
            )
        table.notes.append(f"x={band_index}: {band}-frequency keywords")
        table.points.append(point)
    return table


# ---------------------------------------------------------------------------
# Focused decay / proximity ablations (purpose-built corpora)
# ---------------------------------------------------------------------------

_DECAY_CORPUS = """
<doc>
  <deep>
    <a><b>needle</b></a>
    <c><d>haystack</d></c>
  </deep>
  <shallow>
    <x>needle</x>
    <y>haystack</y>
  </shallow>
</doc>
"""


def run_ablation_decay_focused(
    decays: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> Tuple[Dict[float, float], str]:
    """Decay on a corpus built to expose the specificity trade-off.

    Two results compete: <deep> holds each keyword two containment edges
    down (rank scaled by decay^2 per keyword), <shallow> holds them one
    edge down (decay^1).  The ratio rank(deep)/rank(shallow) is therefore
    proportional to decay — quantifying exactly how the parameter penalizes
    less specific containment.
    """
    from ..index.builder import IndexBuilder
    from ..query.dil_eval import DILEvaluator
    from ..xmlmodel.graph import CollectionGraph
    from ..xmlmodel.parser import parse_xml

    graph = CollectionGraph()
    graph.add_document(parse_xml(_DECAY_CORPUS, doc_id=0))
    graph.finalize()
    builder = IndexBuilder(graph)

    data: Dict[float, float] = {}
    lines = ["== Ablation (focused): specificity decay =="]
    for decay in decays:
        evaluator = DILEvaluator(
            builder.build_dil(), RankingParams(decay=decay, use_proximity=False)
        )
        results = {
            graph.elements[graph.index_of[r.dewey]].tag: r.rank
            for r in evaluator.evaluate(["needle", "haystack"], m=5)
        }
        ratio = results["deep"] / results["shallow"]
        data[decay] = ratio
        lines.append(
            f"decay={decay:<4} rank(deep)/rank(shallow) = {ratio:.3f}"
        )
    lines.append(
        "note: the ratio grows with decay — small decay punishes the less "
        "specific (deeper-witness) result harder"
    )
    return data, "\n".join(lines)


_PROXIMITY_CORPUS = """
<doc>
  <tight>needle haystack adjacent here</tight>
  <loose id="L">needle some words apart and much later a haystack</loose>
  <reader><c ref="L"/></reader>
  <reader2><c ref="L"/></reader2>
</doc>
"""


def run_ablation_proximity_focused() -> Tuple[Dict[str, List[str]], str]:
    """Proximity on a corpus where window size is the only differentiator."""
    from ..index.builder import IndexBuilder
    from ..query.dil_eval import DILEvaluator
    from ..xmlmodel.graph import CollectionGraph
    from ..xmlmodel.parser import parse_xml

    graph = CollectionGraph()
    graph.add_document(parse_xml(_PROXIMITY_CORPUS, doc_id=0))
    graph.finalize()
    builder = IndexBuilder(graph)

    data: Dict[str, List[str]] = {}
    lines = ["== Ablation (focused): keyword proximity =="]
    for label, use in (("proximity-on", True), ("proximity-off", False)):
        evaluator = DILEvaluator(
            builder.build_dil(), RankingParams(use_proximity=use)
        )
        results = evaluator.evaluate(["needle", "haystack"], m=5)
        tags = [graph.elements[graph.index_of[r.dewey]].tag for r in results]
        data[label] = tags
        lines.append(f"{label:<14} ranking: {' > '.join(tags)}")
    lines.append(
        "note: with proximity on, the tight window must outrank the loose one"
    )
    return data, "\n".join(lines)


# ---------------------------------------------------------------------------
# Index construction costs (complements Table 1)
# ---------------------------------------------------------------------------

def run_build_costs(
    suite: BenchmarkSuite, corpus: str = "dblp"
) -> Tuple[Dict[str, float], str]:
    """Wall-clock build time per index flavour on one corpus.

    Not a paper table (the paper builds offline and reports only space), but
    it substantiates the offline-build feasibility claim and quantifies the
    auxiliary-structure costs: Naive-Rank pays for hash indexes over the
    replicated lists, RDIL for full B+-trees, HDIL only for internal nodes.
    """
    import time

    indexed = suite.corpora[corpus]
    builder = indexed.builder
    build_functions = {
        "naive-id": builder.build_naive_id,
        "naive-rank": builder.build_naive_rank,
        "dil": builder.build_dil,
        "rdil": builder.build_rdil,
        "hdil": builder.build_hdil,
    }
    costs: Dict[str, float] = {}
    lines = [
        f"== Index build costs ({corpus}) ==",
        f"{'approach':<12}{'seconds':>9}",
    ]
    for approach, build in build_functions.items():
        started = time.perf_counter()
        build()
        costs[approach] = time.perf_counter() - started
        lines.append(f"{approach:<12}{costs[approach]:>9.2f}")
    return costs, "\n".join(lines)
