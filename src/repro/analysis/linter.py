"""The AST lint framework behind ``repro check``.

A :class:`LintRule` inspects one parsed module and returns
:class:`Violation` objects; the :class:`Linter` walks files, applies the
rules whose *scope* matches each file's path, and filters out violations
suppressed by an inline ``# repro: ignore[rule-id]`` comment.

Rules are deliberately *lexical*: they check what the source says, not
what it might do at runtime.  A helper that is genuinely exempt (for
example a cache loader that must drain a whole list to keep the cache
coherent) carries an explicit suppression comment with its
justification, so every exception to a discipline is visible and
reviewable at the call site it excuses.

Configuration lives in ``pyproject.toml``::

    [tool.repro.check]
    disable = ["mutable-default"]   # rule ids to turn off
    paths = ["src/repro"]           # default lint roots

How to add a rule: subclass :class:`LintRule` in
:mod:`repro.analysis.rules`, set ``rule_id`` / ``description`` /
``scopes``, implement :meth:`LintRule.check`, and append an instance to
``ALL_RULES`` — ``repro check`` and the test fixtures pick it up from
there.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Inline suppression: a comment saying ``repro: ignore`` (all rules) or
#: ``repro: ignore[rule-a, rule-b]`` on the offending line.
_IGNORE_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([^\]]*)\])?")


@dataclass(frozen=True)
class Violation:
    """One lint finding, anchored to a source line."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class LintResult:
    """Everything one lint pass learned, suppressions included.

    ``violations`` fail the gate.  ``suppressed`` are findings silenced
    by an inline ``# repro: ignore[...]`` (``--show-suppressed`` prints
    them).  ``unused_suppressions`` are ignore comments that silenced
    *nothing* — stale escapes that should be deleted, surfaced so the
    suppression inventory cannot rot silently.
    """

    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    #: (path, line, raw rule list) of each ignore comment that matched
    #: no violation on its line.
    unused_suppressions: List[Tuple[str, int, str]] = field(
        default_factory=list
    )

    def extend(self, other: "LintResult") -> None:
        self.violations.extend(other.violations)
        self.suppressed.extend(other.suppressed)
        self.unused_suppressions.extend(other.unused_suppressions)

    def sort(self) -> None:
        self.violations.sort(key=lambda v: (v.path, v.line, v.rule))
        self.suppressed.sort(key=lambda v: (v.path, v.line, v.rule))
        self.unused_suppressions.sort()


class LintRule:
    """Base class for lint rules.

    Attributes:
        rule_id: stable kebab-case identifier (used in config and
            suppression comments).
        description: one-line summary for ``repro check --list-rules``.
        scopes: path fragments this rule applies to (``("query/",)``
            restricts it to the query package); empty means every file.
    """

    rule_id: str = ""
    description: str = ""
    scopes: Sequence[str] = ()

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on the file at ``path``."""
        if not self.scopes:
            return True
        normalized = path.replace("\\", "/")
        return any(scope in normalized for scope in self.scopes)

    def check(self, tree: ast.Module, source: str, path: str) -> List[Violation]:
        """Return this rule's violations for one parsed module."""
        raise NotImplementedError

    # -- helpers shared by concrete rules ---------------------------------------

    def violation(self, path: str, node: ast.AST, message: str) -> Violation:
        return Violation(self.rule_id, path, getattr(node, "lineno", 0), message)


@dataclass
class LintConfig:
    """Rule selection and default lint roots (``[tool.repro.check]``)."""

    disable: List[str] = field(default_factory=list)
    enable: List[str] = field(default_factory=list)
    paths: List[str] = field(default_factory=list)

    def selects(self, rule_id: str) -> bool:
        """Whether a rule is active under this configuration."""
        if self.enable:
            return rule_id in self.enable and rule_id not in self.disable
        return rule_id not in self.disable


def load_lint_config(start: Optional[Path] = None) -> LintConfig:
    """Read ``[tool.repro.check]`` from the nearest ``pyproject.toml``.

    Walks up from ``start`` (default: the current directory); returns the
    defaults when no file or section is found, or when ``tomllib`` is
    unavailable (Python < 3.11).
    """
    try:
        import tomllib
    except ImportError:  # pragma: no cover - py3.10 fallback
        return LintConfig()
    directory = (start or Path.cwd()).resolve()
    for candidate in [directory, *directory.parents]:
        pyproject = candidate / "pyproject.toml"
        if not pyproject.is_file():
            continue
        try:
            data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        except (OSError, tomllib.TOMLDecodeError):
            return LintConfig()
        section = data.get("tool", {}).get("repro", {}).get("check", {})
        return LintConfig(
            disable=[str(r) for r in section.get("disable", [])],
            enable=[str(r) for r in section.get("enable", [])],
            paths=[str(p) for p in section.get("paths", [])],
        )
    return LintConfig()


class Linter:
    """Applies a rule set to source files and filters suppressions."""

    def __init__(self, rules: Sequence[LintRule]):
        ids = [rule.rule_id for rule in rules]
        duplicates = {i for i in ids if ids.count(i) > 1}
        if duplicates:
            raise ValueError(f"duplicate rule ids: {sorted(duplicates)}")
        self.rules = list(rules)

    # -- entry points ------------------------------------------------------------

    def lint_source_result(self, source: str, path: str) -> LintResult:
        """Lint one module, tracking suppression usage."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return LintResult(
                violations=[
                    Violation(
                        "syntax", path, exc.lineno or 0, f"syntax error: {exc.msg}"
                    )
                ]
            )
        violations: List[Violation] = []
        for rule in self.rules:
            if rule.applies_to(path):
                violations.extend(rule.check(tree, source, path))
        suppressions = _suppression_map(source)
        result = LintResult()
        used_lines = set()
        for violation in violations:
            if violation.rule in suppressions.get(violation.line, ()):
                result.suppressed.append(violation)
                used_lines.add(violation.line)
            else:
                result.violations.append(violation)
        for line, rules in suppressions.items():
            if line not in used_lines:
                label = "*" if rules is _WILDCARD else ", ".join(sorted(rules))
                result.unused_suppressions.append((path, line, label))
        result.sort()
        return result

    def lint_source(self, source: str, path: str) -> List[Violation]:
        """Lint one module given as a string (fixtures, tests)."""
        return self.lint_source_result(source, path).violations

    def lint_file_result(self, path: Path) -> LintResult:
        """Lint one file on disk, tracking suppression usage."""
        source = Path(path).read_text(encoding="utf-8")
        return self.lint_source_result(source, str(path))

    def lint_file(self, path: Path) -> List[Violation]:
        """Lint one file on disk."""
        return self.lint_file_result(path).violations

    def lint_paths_result(self, paths: Iterable[Path]) -> LintResult:
        """Lint every ``*.py`` file under the given files/directories."""
        result = LintResult()
        for raw in paths:
            root = Path(raw)
            if root.is_dir():
                files = sorted(root.rglob("*.py"))
            elif root.is_file():
                files = [root]
            else:
                raise FileNotFoundError(f"no such lint path: {raw}")
            for file in files:
                result.extend(self.lint_file_result(file))
        result.sort()
        return result

    def lint_paths(self, paths: Iterable[Path]) -> List[Violation]:
        """Lint every ``*.py`` file under the given files/directories."""
        return self.lint_paths_result(paths).violations


def _suppression_map(source: str) -> Dict[int, frozenset]:
    """Line number -> rule ids suppressed on that line.

    Only actual ``COMMENT`` tokens count: a docstring *describing* the
    ``# repro: ignore[...]`` syntax is documentation, not a suppression
    (and must not show up in the unused-suppression audit).  A bare
    ``# repro: ignore`` suppresses every rule (the wildcard).
    """
    suppressions: Dict[int, frozenset] = {}
    for line_number, comment in _iter_comments(source):
        match = _IGNORE_RE.search(comment)
        if not match:
            continue
        body = match.group(1)
        if body is None:
            suppressions[line_number] = _WILDCARD
        else:
            rules = frozenset(part.strip() for part in body.split(",") if part.strip())
            suppressions[line_number] = rules or _WILDCARD
    return suppressions


def _iter_comments(source: str):
    """Yield ``(line_number, comment_text)`` for each real comment token."""
    import io
    import tokenize

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # a module the AST pass already rejected


class _Wildcard(frozenset):
    """Suppresses every rule (``# repro: ignore`` without a rule list)."""

    def __contains__(self, item: object) -> bool:  # noqa: D105
        return True


_WILDCARD = _Wildcard()
