#!/usr/bin/env python3
"""Ranked search over a deep XMark-like auction document.

Shows the value of most-specific results on deeply nested data (the paper's
'stained mirror' anecdote): the query returns the specific <item> subtree —
boosted by the many auctions that reference it through IDREFs — rather than
the whole auction site.  Also demonstrates predefined answer nodes.

Run:  python examples/xmark_search.py
"""

from repro import XRankEngine
from repro.datasets import generate_xmark
from repro.query import AnswerNodeFilter


def main() -> None:
    print("generating XMark-like auction document...")
    corpus = generate_xmark(
        num_items=150, num_people=70, num_auctions=200,
        seed=11, plant_anecdotes=True,
    )

    engine = XRankEngine()
    for document in corpus.documents:
        engine.add_document(document)
    engine.build(kinds=["hdil"])
    stats = engine.stats()
    print(f"one document, {stats['elements']} elements, "
          f"{stats['hyperlink_edges']} IDREF edges")
    print()

    print("query: 'stained mirror' (most specific result, not the site root)")
    for hit in engine.search("stained mirror", m=5, with_context=True):
        print(f"  [{hit.rank:.6f}] {hit.path}")
        print(f"      {hit.snippet[:70]}")
    print()

    # A domain expert restricts results to catalogue-level answer nodes:
    # whatever matches inside an item gets promoted to the item itself.
    answer_engine = XRankEngine(
        answer_filter=AnswerNodeFilter(
            answer_tags={"item", "person", "open_auction", "closed_auction"}
        )
    )
    for document in corpus.documents:
        answer_engine.add_document(document)
    answer_engine.build(kinds=["hdil"])

    print("same query with answer nodes = {item, person, auction}:")
    for hit in answer_engine.search("stained mirror", m=5):
        print(f"  [{hit.rank:.6f}] <{hit.tag}> {hit.snippet[:60]}")


if __name__ == "__main__":
    main()
