"""Link analysis and ranking: PageRank, the ElemRank variants, keyword
proximity and the overall ranking function of paper Sections 2.3 and 3."""

from .elemrank import (
    ElemRankResult,
    ElemRankVariant,
    LinkGraph,
    compute_elemrank,
)
from .elemrank_py import PurePythonElemRank, compute_elemrank_pure
from .hits import HITSResult, element_hits, hits
from .pagerank import RankResult, pagerank, pagerank_from_adjacency
from .tfidf import compute_tfidf_weights
from .proximity import proximity, smallest_window
from .scoring import (
    aggregate_occurrences,
    occurrence_rank,
    overall_rank,
    ta_threshold,
)

__all__ = [
    "ElemRankResult",
    "ElemRankVariant",
    "HITSResult",
    "LinkGraph",
    "PurePythonElemRank",
    "compute_elemrank_pure",
    "RankResult",
    "aggregate_occurrences",
    "compute_elemrank",
    "compute_tfidf_weights",
    "element_hits",
    "hits",
    "occurrence_rank",
    "overall_rank",
    "pagerank",
    "pagerank_from_adjacency",
    "proximity",
    "smallest_window",
    "ta_threshold",
]
