"""Incremental maintenance benchmarks (paper Section 4.5).

Measures the three claims behind the main+delta design:

* adding a document incrementally is far cheaper than a full rebuild;
* query cost over main+delta stays close to the compacted index;
* merge() compacts in place, reusing freed pages.
"""

import pytest

from repro.datasets.dblp import generate_dblp
from repro.index.builder import IndexBuilder
from repro.index.incremental import IncrementalDILIndex
from repro.query.dil_eval import DILEvaluator
from repro.xmlmodel.parser import parse_xml


@pytest.fixture(scope="module")
def base():
    corpus = generate_dblp(num_papers=400, seed=19)
    builder = IndexBuilder(corpus.graph)
    return corpus, builder


def fresh_incremental(builder):
    index = IncrementalDILIndex()
    index.build(builder.direct_postings)
    return index


NEW_DOC = (
    "<article><title>late breaking paper</title>"
    "<abstract>some freshly indexed text about searching</abstract></article>"
)


def test_incremental_add_latency(benchmark, base):
    corpus, builder = base
    index = fresh_incremental(builder)
    counter = {"next": 10_000}

    def add_one():
        doc_id = counter["next"]
        counter["next"] += 1
        document = parse_xml(NEW_DOC, doc_id=doc_id)
        index.add_documents([document], reference=builder.elemranks)

    benchmark(add_one)
    benchmark.extra_info["delta_postings"] = index.delta_size


def test_full_rebuild_latency(benchmark, base):
    corpus, builder = base

    def rebuild():
        index = IncrementalDILIndex()
        index.build(builder.direct_postings)
        return index

    benchmark.pedantic(rebuild, rounds=2, iterations=1)


def test_incremental_vs_rebuild_speedup(benchmark, base, capsys):
    """One incremental add must beat a full rebuild by a wide margin."""
    import time

    corpus, builder = base
    index = fresh_incremental(builder)

    def add_once():
        document = parse_xml(NEW_DOC, doc_id=20_000)
        index.add_documents([document], reference=builder.elemranks)

    started = time.perf_counter()
    benchmark.pedantic(add_once, rounds=1, iterations=1)
    add_seconds = max(time.perf_counter() - started, 1e-6)

    started = time.perf_counter()
    rebuilt = IncrementalDILIndex()
    rebuilt.build(builder.direct_postings)
    rebuild_seconds = time.perf_counter() - started

    with capsys.disabled():
        print(
            f"\n  incremental add: {add_seconds * 1000:.1f}ms; "
            f"full rebuild: {rebuild_seconds * 1000:.1f}ms "
            f"({rebuild_seconds / add_seconds:.0f}x)"
        )
    assert add_seconds * 5 < rebuild_seconds


def test_merge_latency(benchmark, base):
    corpus, builder = base

    def setup():
        index = fresh_incremental(builder)
        for i in range(5):
            document = parse_xml(NEW_DOC, doc_id=30_000 + i)
            index.add_documents([document], reference=builder.elemranks)
        return (index,), {}

    def merge(index):
        index.merge()
        return index

    index = benchmark.pedantic(merge, setup=setup, rounds=2)
    assert index.delta is None


def test_query_cost_with_delta(benchmark, base, capsys):
    """Querying across main+delta costs at most a little over compacted."""
    corpus, builder = base
    index = fresh_incremental(builder)
    for i in range(10):
        document = parse_xml(NEW_DOC, doc_id=40_000 + i)
        index.add_documents([document], reference=builder.elemranks)

    evaluator = DILEvaluator(index)
    query = ["late", "breaking"]

    index.main.disk.reset_stats()
    index.main.disk.drop_cache()
    if index.delta is not None:
        index.delta.disk.reset_stats()
        index.delta.disk.drop_cache()
    benchmark.pedantic(lambda: evaluator.evaluate(query, m=10), rounds=1, iterations=1)
    with_delta = index.main.disk.stats.page_reads + (
        index.delta.disk.stats.page_reads if index.delta else 0
    )

    index.merge()
    index.main.disk.reset_stats()
    index.main.disk.drop_cache()
    evaluator.evaluate(query, m=10)
    compacted = index.main.disk.stats.page_reads

    with capsys.disabled():
        print(f"\n  page reads with delta: {with_delta}; compacted: {compacted}")
    assert with_delta <= compacted + 10
