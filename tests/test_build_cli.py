"""End-to-end tests for the ``repro build`` CLI (parallel build + verify)."""

import json

import pytest

from repro.cli import main
from repro.engine import XRankEngine


@pytest.fixture()
def corpus_dir(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "workshop.xml").write_text(
        "<workshop><title>XQL workshop</title>"
        "<paper><body><sub>the xql language</sub></body></paper></workshop>"
    )
    (docs / "survey.xml").write_text(
        "<survey><chapter>ranked keyword search over xml</chapter>"
        "<chapter>the xql language survey</chapter></survey>"
    )
    (docs / "page.html").write_text(
        '<html><body>xql tutorial <a href="workshop.xml">link</a></body></html>'
    )
    (docs / "broken.xml").write_text("<a><b></a>")
    return docs


class TestBuildCommand:
    def test_parallel_build_with_verify(self, corpus_dir, tmp_path, capsys):
        out = tmp_path / "engine.xrank"
        code = main(
            [
                "build",
                str(corpus_dir),
                "--out",
                str(out),
                "--workers",
                "2",
                "--verify",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "2 worker(s)" in captured.out
        assert "byte-identical" in captured.out
        engine = XRankEngine.load(out)
        assert isinstance(engine, XRankEngine)
        assert engine.search("xql", m=5)

    def test_matches_index_command_output(self, corpus_dir, tmp_path):
        """`repro build` and the classic `repro index` agree on the result."""
        build_out = tmp_path / "build.xrank"
        index_out = tmp_path / "index.xrank"
        assert main(
            ["build", str(corpus_dir), "--out", str(build_out), "--workers", "2"]
        ) == 0
        assert main(["index", str(corpus_dir), "--out", str(index_out)]) == 0
        built = XRankEngine.load(build_out)
        indexed = XRankEngine.load(index_out)
        for query in ("xql", "xql language", "keyword search"):
            assert [
                (hit.dewey, hit.rank) for hit in built.search(query, m=5)
            ] == [(hit.dewey, hit.rank) for hit in indexed.search(query, m=5)]

    def test_json_report(self, corpus_dir, tmp_path):
        out = tmp_path / "engine.xrank"
        report_path = tmp_path / "build-report.json"
        code = main(
            [
                "build",
                str(corpus_dir),
                "--out",
                str(out),
                "--workers",
                "2",
                "--verify",
                "--json",
                str(report_path),
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["workers"] == 2
        assert report["documents"] == 3
        assert report["verified_identical"] is True

    def test_broken_file_skipped_by_default(self, corpus_dir, capsys, tmp_path):
        code = main(
            ["build", str(corpus_dir), "--out", str(tmp_path / "e.xrank")]
        )
        assert code == 0
        assert "broken.xml" in capsys.readouterr().err

    def test_strict_parse_fails_on_broken_file(self, corpus_dir, tmp_path):
        code = main(
            [
                "build",
                str(corpus_dir),
                "--out",
                str(tmp_path / "e.xrank"),
                "--strict-parse",
            ]
        )
        assert code != 0

    def test_missing_path_errors(self, tmp_path):
        code = main(
            ["build", str(tmp_path / "nope"), "--out", str(tmp_path / "o")]
        )
        assert code == 2
