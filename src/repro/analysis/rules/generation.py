"""cache-generation: engine mutations must bump the generation counter.

The service's :class:`~repro.service.cache.GenerationalLRU` caches are
invalidated solely by comparing their generation to
``engine.generation``.  An engine method that mutates index state
(rebuilds ``self._indexes``/``self._evaluators``, replaces
``self.builder``, adds or removes documents) without bumping the counter
leaves the caches serving results computed against a dead index — the
bug is silent until a client sees pre-mutation hits.

The rule runs on ``engine.py``: for every class that owns a
``generation`` attribute, each *public* method is analysed transitively
over its ``self.*()`` calls.  Reaching a mutation without reaching a
bump (``self.generation += 1`` or an assignment) is a violation.
Private helpers are exempt — they rely on their public callers to bump,
and the transitive closure verifies exactly that.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from ..linter import LintRule, Violation
from .common import iter_functions, walk_within

#: Calls that mutate corpus/index state regardless of assignment shape.
_MUTATING_CALLS = {
    "add_document",
    "add_documents",
    "remove_document",
    "delete_document",
    "merge",
}
#: self attributes whose (re)assignment means index state changed.
#: `_evaluators` is deliberately absent: evaluators are derived, memoized
#: objects (e.g. the lazily created disjunctive evaluator) — rebuilding
#: one does not invalidate any cached result.
_MUTATED_ATTRS = {"_indexes", "builder"}


class CacheGenerationRule(LintRule):
    rule_id = "cache-generation"
    description = (
        "public engine methods that mutate index state must (transitively) "
        "bump self.generation"
    )
    scopes = ("engine.py",)

    def check(self, tree: ast.Module, source: str, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
            if not _owns_generation(cls):
                continue
            methods: Dict[str, ast.FunctionDef] = {
                f.name: f for f in cls.body if isinstance(f, ast.FunctionDef)
            }
            facts = {name: _method_facts(func) for name, func in methods.items()}
            for name, func in methods.items():
                if name.startswith("_"):
                    continue
                mutates = _transitive(name, facts, "mutates")
                bumps = _transitive(name, facts, "bumps")
                if mutates and not bumps:
                    violations.append(
                        self.violation(
                            path,
                            func,
                            f"{cls.name}.{name}() mutates index state but "
                            "never bumps self.generation (caches go stale)",
                        )
                    )
        return violations


def _owns_generation(cls: ast.ClassDef) -> bool:
    for func in (n for n in cls.body if isinstance(n, ast.FunctionDef)):
        for node in walk_within(func):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "generation"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
    return False


def _method_facts(func: ast.FunctionDef) -> Dict[str, object]:
    mutates = False
    bumps = False
    calls: Set[str] = set()
    for node in walk_within(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if _is_self_attr(target, {"generation"}):
                    bumps = True
                if _is_self_attr(target, _MUTATED_ATTRS):
                    mutates = True
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_CALLS:
                mutates = True
            value = node.func.value
            if isinstance(value, ast.Name) and value.id == "self":
                calls.add(node.func.attr)
    return {"mutates": mutates, "bumps": bumps, "calls": calls}


def _is_self_attr(target: ast.AST, names: Set[str]) -> bool:
    """``self.X`` or ``self.X[...]`` for X in names."""
    if isinstance(target, ast.Subscript):
        target = target.value
    return (
        isinstance(target, ast.Attribute)
        and target.attr in names
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    )


def _transitive(name: str, facts: Dict[str, Dict[str, object]], key: str) -> bool:
    seen: Set[str] = set()
    stack = [name]
    while stack:
        current = stack.pop()
        if current in seen or current not in facts:
            continue
        seen.add(current)
        if facts[current][key]:
            return True
        stack.extend(facts[current]["calls"])  # type: ignore[arg-type]
    return False
