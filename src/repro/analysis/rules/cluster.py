"""cluster-deadline-rpc: scatter RPCs must carry the query's deadline.

The cluster's deadline story is *propagation*: the coordinator turns the
caller's budget into one :class:`~repro.service.admission.Deadline` and
every shard RPC ships the remaining milliseconds, so workers stop
spending effort on answers nobody will wait for and a slow replica
shrinks what its failover successor may spend.  The chain is only as
strong as its laziest call site — one ``client.search(query, m=m)``
without ``deadline_ms`` silently re-grants that worker an unbounded
budget, which no test notices until a deadline-bearing workload hangs.

The rule flags any ``.search(...)`` call in ``repro/cluster/`` whose
receiver looks like an RPC client (a name or attribute containing
``client``, or a direct ``client_for(...)`` chain) and whose arguments
do not include ``deadline_ms``.  Local calls — ``engine.search``,
``oracle.search``, ``cluster.search`` in tests and verification — have
non-client receivers and are not the RPC boundary this rule guards.
Forwarding ``**options`` that provably contain the deadline is rare
enough that such a site should pass ``deadline_ms`` explicitly or carry
a ``# repro: ignore[cluster-deadline-rpc]`` with a justification.
"""

from __future__ import annotations

import ast
from typing import List

from ..linter import LintRule, Violation


class ClusterDeadlineRPCRule(LintRule):
    rule_id = "cluster-deadline-rpc"
    description = (
        "cluster RPC .search() call drops the query deadline "
        "(no deadline_ms argument)"
    )
    scopes = ("cluster/",)

    def check(self, tree: ast.Module, source: str, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "search"):
                continue
            if not _is_rpc_client(func.value):
                continue
            if any(keyword.arg == "deadline_ms" for keyword in node.keywords):
                continue
            violations.append(
                self.violation(
                    path,
                    node,
                    "RPC search() without deadline_ms: the coordinator's "
                    "deadline must propagate to the worker (pass "
                    "deadline_ms=deadline.remaining_ms() or forward the "
                    "caller's value)",
                )
            )
        return violations


def _is_rpc_client(receiver: ast.expr) -> bool:
    """Whether the expression a ``.search`` hangs off is an RPC client."""
    if isinstance(receiver, ast.Call):
        func = receiver.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        return "client" in name.lower()
    name = (
        receiver.id
        if isinstance(receiver, ast.Name)
        else receiver.attr if isinstance(receiver, ast.Attribute) else ""
    )
    lowered = name.lower()
    return "client" in lowered or lowered == "_inner"
