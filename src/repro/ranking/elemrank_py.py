"""Pure-Python ElemRank (final formulation) — a differential reference.

Two purposes:

* a numpy-free fallback for constrained environments (the math is the E4
  formula of Section 3.1, implemented over plain lists);
* an *independent implementation* of the same fixed point, used by the test
  suite to cross-check the vectorized :func:`repro.ranking.elemrank
  .compute_elemrank` — two implementations agreeing to 1e-8 is strong
  evidence neither mis-translates the paper's formula.

Only the final formulation (E4) is provided; the intermediate variants are
pedagogical and live in the numpy module.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..config import ElemRankParams
from ..xmlmodel.graph import CollectionGraph


class PurePythonElemRank:
    """Power iteration over plain Python lists (E4 formulation)."""

    def __init__(self, graph: CollectionGraph, params: Optional[ElemRankParams] = None):
        if not graph.finalized:
            graph.finalize()
        self.graph = graph
        self.params = params or ElemRankParams()

    def run(self):
        """Iterate to the paper's threshold; returns an ElemRankResult.

        The result type is shared with the numpy implementation (scores are
        returned as a plain list wrapped only if numpy is importable).
        """
        graph = self.graph
        params = self.params
        n = len(graph.elements)
        started = time.perf_counter()
        from .elemrank import ElemRankResult, ElemRankVariant

        if n == 0:
            return ElemRankResult(
                _as_array([]), 0, True, 0.0, 0.0, ElemRankVariant.E4_FINAL
            )

        parent = graph.parent_index
        num_children = graph.children_count
        num_hyperlinks = graph.out_hyperlink_count
        num_documents = max(graph.num_documents, 1)
        doc_elements = graph.doc_element_count
        edges = graph.hyperlink_edges

        # Proportional re-split of navigation probabilities (Section 3.1).
        w_h: List[float] = [0.0] * n
        w_c: List[float] = [0.0] * n
        w_p: List[float] = [0.0] * n
        total_nav = params.d1 + params.d2 + params.d3
        for u in range(n):
            available = 0.0
            if num_hyperlinks[u] > 0:
                available += params.d1
            if num_children[u] > 0:
                available += params.d2
            if parent[u] >= 0:
                available += params.d3
            if available == 0.0:
                continue
            scale = total_nav / available
            if num_hyperlinks[u] > 0:
                w_h[u] = params.d1 * scale
            if num_children[u] > 0:
                w_c[u] = params.d2 * scale
            if parent[u] >= 0:
                w_p[u] = params.d3 * scale

        jump = [
            1.0 / (num_documents * doc_elements[v]) for v in range(n)
        ]
        base = [params.random_jump * j for j in jump]
        dangling = [
            u for u in range(n)
            if w_h[u] == 0.0 and w_c[u] == 0.0 and w_p[u] == 0.0
        ]

        scores = list(jump)
        residual = 0.0
        for iteration in range(1, params.max_iterations + 1):
            fresh = list(base)
            for src, dst in edges:
                fresh[dst] += scores[src] * w_h[src] / num_hyperlinks[src]
            for v in range(n):
                p = parent[v]
                if p >= 0:
                    fresh[v] += scores[p] * w_c[p] / num_children[p]
                    fresh[p] += scores[v] * w_p[v]
            if dangling:
                mass = sum(scores[u] for u in dangling) * total_nav
                for v in range(n):
                    fresh[v] += mass * jump[v]
            residual = sum(abs(a - b) for a, b in zip(fresh, scores))
            scores = fresh
            if residual < params.threshold:
                return ElemRankResult(
                    _as_array(scores),
                    iteration,
                    True,
                    residual,
                    time.perf_counter() - started,
                    ElemRankVariant.E4_FINAL,
                )
        return ElemRankResult(
            _as_array(scores),
            params.max_iterations,
            False,
            residual,
            time.perf_counter() - started,
            ElemRankVariant.E4_FINAL,
        )


def _as_array(values: List[float]):
    """Wrap in a numpy array when numpy is present; plain list otherwise."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised only without numpy
        return values
    return numpy.asarray(values)


def compute_elemrank_pure(
    graph: CollectionGraph, params: Optional[ElemRankParams] = None
):
    """Convenience wrapper mirroring :func:`compute_elemrank` (E4 only)."""
    return PurePythonElemRank(graph, params).run()
