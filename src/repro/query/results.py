"""Query results and the top-m result heap.

A :class:`QueryResult` identifies a result element either by Dewey ID
(Dewey-family indexes) or by flat element id (naive baselines), and carries
the overall rank plus the per-keyword diagnostics the examples display.

:class:`ResultHeap` is the bounded min-heap of Figure 5/7: it retains the m
best results seen so far and exposes ``kth_rank`` — the rank of the m-th
best — which the Threshold Algorithm compares against its threshold.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..xmlmodel.dewey import DeweyId


def validate_query(
    keywords: Sequence[str],
    m: int,
    weights: Optional[Sequence[float]] = None,
) -> None:
    """Shared argument validation for every evaluator."""
    if not keywords:
        raise QueryError("a keyword query needs at least one keyword")
    if m < 1:
        raise QueryError("m must be at least 1")
    if weights is not None:
        if len(weights) != len(keywords):
            raise QueryError("one weight per keyword is required")
        if any(w <= 0 for w in weights):
            raise QueryError("keyword weights must be positive")


@dataclass(frozen=True)
class QueryResult:
    """One ranked query result."""

    rank: float
    dewey: Optional[DeweyId] = None
    elem_id: Optional[int] = None
    keyword_ranks: Tuple[float, ...] = ()
    proximity: float = 1.0
    #: per-keyword sorted positions of the relevant occurrences (filled by
    #: the Dewey-family merges; used by XRankEngine.explain)
    position_lists: Tuple[Tuple[int, ...], ...] = ()

    def identifier(self) -> str:
        """Display identifier: dotted Dewey ID or #elem_id."""
        if self.dewey is not None:
            return str(self.dewey)
        return f"#{self.elem_id}"


class ResultHeap:
    """Keeps the top-m results by rank (ties broken by arrival order)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise QueryError("result capacity must be at least 1")
        self.capacity = capacity
        self._heap: List[Tuple[float, int, QueryResult]] = []
        self._counter = itertools.count()

    def add(self, result: QueryResult) -> bool:
        """Offer a result; returns True when it enters the top-m."""
        entry = (result.rank, -next(self._counter), result)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.capacity

    def kth_rank(self) -> float:
        """Rank of the m-th best result; -inf while fewer than m are held."""
        if not self.full:
            return float("-inf")
        return self._heap[0][0]

    def results(self) -> List[QueryResult]:
        """Contents sorted by descending rank; ties in arrival order.

        The tiebreak matches the heap's retention rule (earlier arrivals
        survive ties), so paging with different ``m`` values over tied
        ranks stays consistent.
        """
        ordered = sorted(self._heap, key=lambda e: (-e[0], -e[1]))
        return [entry[2] for entry in ordered]
