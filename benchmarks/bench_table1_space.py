"""Table 1: space requirements of the five approaches on DBLP and XMark.

Timing target: the index *build* for each approach (the paper builds all
five offline).  The space numbers themselves — Table 1 proper — are attached
as ``extra_info`` on each benchmark and printed once at the end, and the
qualitative claims of Section 5.3 are asserted:

* naive lists are substantially larger than DIL's (ancestor replication),
  with a bigger blow-up on the deeper XMark corpus;
* RDIL's list space equals DIL's, but its B+-trees cost about as much again;
* HDIL's auxiliary index is orders of magnitude smaller than RDIL's because
  the Dewey-ordered list doubles as the B+-tree leaf level.
"""

import pytest

from repro.bench.experiments import run_table1
from repro.bench.harness import APPROACHES, BENCH_STORAGE
from repro.index.builder import IndexBuilder


@pytest.mark.parametrize("corpus_name", ["dblp", "xmark"])
@pytest.mark.parametrize("approach", APPROACHES)
def test_build_and_space(benchmark, suite, corpus_name, approach):
    indexed = suite.corpora[corpus_name]
    builder = indexed.builder

    build = {
        "naive-id": builder.build_naive_id,
        "naive-rank": builder.build_naive_rank,
        "dil": builder.build_dil,
        "rdil": builder.build_rdil,
        "hdil": builder.build_hdil,
    }[approach]

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    report = index.space_report()
    benchmark.extra_info["inverted_list_bytes"] = report.inverted_list_bytes
    benchmark.extra_info["index_bytes"] = report.index_bytes
    benchmark.extra_info["num_postings"] = report.num_postings


def test_table1_shape(benchmark, suite, capsys):
    data, text = benchmark.pedantic(
        lambda: run_table1(suite), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + text)

    for corpus in ("dblp", "xmark"):
        naive = data["naive-id"][corpus]["inverted_list_bytes"]
        dil = data["dil"][corpus]["inverted_list_bytes"]
        assert naive > 1.5 * dil, "naive ancestor replication should dominate"
        # Same postings, different order: byte-identical up to page-header
        # rounding (the paper reports both as 144 MB / 254 MB).
        rdil_lists = data["rdil"][corpus]["inverted_list_bytes"]
        assert abs(rdil_lists - dil) <= 0.001 * dil
        rdil_index = data["rdil"][corpus]["index_bytes"]
        hdil_index = data["hdil"][corpus]["index_bytes"]
        assert hdil_index * 10 < rdil_index, (
            "HDIL reuses the list as the B+-tree leaf level; its index "
            "column must be far smaller than RDIL's"
        )

    # Deeper nesting hurts naive more (paper: overhead increases with depth).
    dblp_ratio = (
        data["naive-id"]["dblp"]["inverted_list_bytes"]
        / data["dil"]["dblp"]["inverted_list_bytes"]
    )
    xmark_ratio = (
        data["naive-id"]["xmark"]["inverted_list_bytes"]
        / data["dil"]["xmark"]["inverted_list_bytes"]
    )
    assert xmark_ratio > dblp_ratio


def test_build_costs(benchmark, suite, capsys):
    """Per-approach index construction time (offline, Figure 2)."""
    from repro.bench.experiments import run_build_costs

    costs, text = benchmark.pedantic(
        lambda: run_build_costs(suite), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + text)
    assert costs["dil"] < costs["naive-rank"], (
        "DIL (no auxiliary structures, no ancestor replication) must build "
        "faster than Naive-Rank (replicated lists + hash indexes)"
    )
