"""Tests for the naive baselines: both must agree with each other, return
every element containing all keywords (ancestors included — the spurious
results the paper criticizes), and rank without specificity."""

import random

import pytest

from repro.config import RankingParams
from repro.errors import QueryError
from repro.index.builder import IndexBuilder
from repro.query.naive_eval import NaiveIdEvaluator, NaiveRankEvaluator

from conftest import random_graph, subtree_words


def build_naive(graph, ranking=None):
    ranking = ranking or RankingParams()
    builder = IndexBuilder(graph)
    return (
        NaiveIdEvaluator(builder.build_naive_id(), ranking),
        NaiveRankEvaluator(builder.build_naive_rank(), ranking),
        builder,
    )


def containing_elements(graph, keywords):
    """Reference: every element whose subtree has all keywords."""
    out = set()
    for i, element in enumerate(graph.elements):
        words = subtree_words(element)
        if all(k in words for k in keywords):
            out.add(i)
    return out


class TestNaiveSemantics:
    def test_spurious_ancestors_included(self, figure1_graph):
        naive_id, _, _ = build_naive(figure1_graph)
        results = naive_id.evaluate(["xql", "language"], m=100)
        expected = containing_elements(figure1_graph, ["xql", "language"])
        assert {r.elem_id for r in results} == expected
        # More results than the true Section 2.2 semantics (2): ancestors too.
        assert len(results) > 2

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_containment_reference(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, num_docs=3, max_depth=4)
        naive_id, _, _ = build_naive(graph)
        results = naive_id.evaluate(["alpha", "beta"], m=10_000)
        assert {r.elem_id for r in results} == containing_elements(
            graph, ["alpha", "beta"]
        )

    def test_single_keyword(self, figure1_graph):
        naive_id, _, _ = build_naive(figure1_graph)
        results = naive_id.evaluate(["xyleme"], m=100)
        assert {r.elem_id for r in results} == containing_elements(
            figure1_graph, ["xyleme"]
        )


class TestNaiveAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_id_and_rank_variants_agree(self, seed):
        rng = random.Random(40 + seed)
        graph = random_graph(rng, num_docs=3, max_depth=4)
        naive_id, naive_rank, _ = build_naive(graph)
        for m in (1, 5, 20):
            by_id = naive_id.evaluate(["alpha", "beta"], m=m)
            by_rank = naive_rank.evaluate(["alpha", "beta"], m=m)
            assert [round(r.rank, 7) for r in by_rank] == pytest.approx(
                [round(r.rank, 7) for r in by_id], rel=1e-5
            )

    def test_rank_variant_stops_early(self):
        """TA should not consume the full lists on an easy query."""
        rng = random.Random(2)
        graph = random_graph(rng, num_docs=5, max_depth=4)
        naive_id, naive_rank, _ = build_naive(graph)
        total = sum(
            naive_rank.index.list_length(k) for k in ("alpha", "beta")
        )
        naive_rank.index.reset_measurement()
        naive_rank.evaluate(["alpha", "beta"], m=1)
        # Early termination is possible because lists are rank-ordered; we
        # only assert it did not obviously scan everything twice.
        assert naive_rank.index.disk.stats.page_reads <= total


class TestValidation:
    def test_empty_query(self, figure1_graph):
        naive_id, naive_rank, _ = build_naive(figure1_graph)
        for evaluator in (naive_id, naive_rank):
            with pytest.raises(QueryError):
                evaluator.evaluate([], m=1)
            with pytest.raises(QueryError):
                evaluator.evaluate(["x"], m=0)

    def test_unknown_keyword(self, figure1_graph):
        naive_id, naive_rank, _ = build_naive(figure1_graph)
        assert naive_id.evaluate(["nosuchword", "xql"], m=5) == []
        assert naive_rank.evaluate(["nosuchword", "xql"], m=5) == []
