"""A disk-resident static hash index (for the Naive-Rank baseline).

The paper's Naive-Rank approach stores, per keyword, an inverted list of
*all* elements containing the keyword (ancestors included) ordered by rank,
"with a hash index built on the ID field for random equality lookups"
(Section 5.1).  Because naive lists replicate ancestors, the Threshold
Algorithm only needs equality probes ("does this exact element ID appear in
keyword k's list?"), never longest-common-prefix searches — so a hash index
suffices and a B+-tree is unnecessary.

This is a static bucketed hash: build once from (key, payload) pairs; each
probe reads the bucket's page chain, charging random I/O per page.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import StorageError
from ..xmlmodel.dewey import DeweyId
from .disk import SimulatedDisk
from .records import RecordReader, RecordWriter


def _bucket_of(key: DeweyId, num_buckets: int) -> int:
    return hash(key.components) % num_buckets


class HashIndex:
    """Static hash index from Dewey ID to an opaque payload."""

    def __init__(
        self,
        disk: SimulatedDisk,
        bucket_chains: List[List[int]],
        num_entries: int,
        byte_size: int,
    ):
        self.disk = disk
        self.bucket_chains = bucket_chains
        self.num_entries = num_entries
        self.byte_size = byte_size

    @classmethod
    def build(
        cls,
        disk: SimulatedDisk,
        entries: List[Tuple[DeweyId, bytes]],
        fill_factor: float = 0.75,
    ) -> "HashIndex":
        """Build the index; bucket count is sized from the entry count."""
        if not 0.0 < fill_factor <= 1.0:
            raise StorageError("fill_factor must be in (0, 1]")
        num_buckets = max(1, int(len(entries) / (8 * fill_factor)))
        buckets: List[List[Tuple[DeweyId, bytes]]] = [[] for _ in range(num_buckets)]
        seen: Dict[Tuple[int, ...], None] = {}
        for key, payload in entries:
            if key.components in seen:
                raise StorageError(f"duplicate key {key} in hash index")
            seen[key.components] = None
            buckets[_bucket_of(key, num_buckets)].append((key, payload))

        byte_size = 0
        bucket_chains: List[List[int]] = []
        for bucket in buckets:
            chain: List[int] = []
            pending: List[bytes] = []
            pending_size = 8

            def flush() -> None:
                nonlocal pending, pending_size, byte_size
                if pending:
                    page_writer = RecordWriter()
                    page_writer.uint(len(pending))
                    for blob in pending:
                        page_writer.raw(blob)
                    encoded = page_writer.getvalue()
                    chain.append(disk.allocate(encoded))
                    byte_size += len(encoded)
                    pending = []
                    pending_size = 8

            for key, payload in bucket:
                entry_writer = RecordWriter()
                entry_writer.dewey(key)
                entry_writer.bytes_field(payload)
                blob = entry_writer.getvalue()
                if len(blob) + 8 > disk.page_size:
                    raise StorageError("hash entry larger than a page")
                if pending_size + len(blob) > disk.page_size:
                    flush()
                pending.append(blob)
                pending_size += len(blob)
            flush()
            bucket_chains.append(chain)
        return cls(disk, bucket_chains, len(entries), byte_size)

    def lookup(self, key: DeweyId) -> Optional[bytes]:
        """Probe for ``key``; returns its payload or None.

        Every page of the bucket chain read counts as a random I/O, exactly
        the cost profile the Threshold Algorithm pays in Naive-Rank.
        """
        chain = self.bucket_chains[_bucket_of(key, len(self.bucket_chains))]
        for page_id in chain:
            reader = RecordReader(self.disk.read(page_id))
            count = reader.uint()
            for _ in range(count):
                entry_key = reader.dewey()
                payload = reader.bytes_field()
                if entry_key == key:
                    return payload
        return None

    def __contains__(self, key: DeweyId) -> bool:
        return self.lookup(key) is not None
