"""Crash-safe snapshot persistence and recovery (``repro.durability``).

The subsystem that turns :meth:`~repro.engine.XRankEngine.save` from a
bare pickle into something a production process can die on top of:

* :mod:`~repro.durability.format` — the versioned, checksummed part
  framing (magic, format version, config digest, CRC32C trailer);
* :mod:`~repro.durability.io` — crash-faithful file I/O: the
  :class:`CrashSimulator` loss model, :class:`DurableFile`, and the one
  canonical :func:`atomic_write_bytes` (temp -> fsync -> rename -> dir
  fsync);
* :mod:`~repro.durability.store` — the generational
  :class:`SnapshotStore` with manifest-commit writes, newest-intact
  recovery with fallback, and offline :meth:`~SnapshotStore.fsck`;
* :mod:`~repro.durability.verify` — the crash-point battery proving
  recover-or-fallback at every seeded fault site and byte offset.
"""

from .format import (
    FORMAT_VERSION,
    FRAME_OVERHEAD,
    HEADER_SIZE,
    MAGIC,
    config_digest,
    decode_part,
    encode_part,
)
from .io import CrashSimulator, DurableFile, atomic_write_bytes, fsync_dir
from .store import FsckReport, GenerationInfo, SnapshotStore
from .verify import DurabilityReport, check_durability, verify_durability

__all__ = [
    "FORMAT_VERSION",
    "FRAME_OVERHEAD",
    "HEADER_SIZE",
    "MAGIC",
    "config_digest",
    "decode_part",
    "encode_part",
    "CrashSimulator",
    "DurableFile",
    "atomic_write_bytes",
    "fsync_dir",
    "FsckReport",
    "GenerationInfo",
    "SnapshotStore",
    "DurabilityReport",
    "check_durability",
    "verify_durability",
]
