"""Scatter-gather cluster benchmark: latency, identity, failover.

Serves a seeded DBLP corpus from a :class:`repro.cluster.local.
LocalCluster` at several shard counts and replays a fixed workload
through the real HTTP scatter-gather path, comparing every answer
against an in-process single-node oracle:

* **shard sweep** — per shard count: QPS, p50/p95 coordinator latency,
  and an ``identical`` flag (every response bit-for-bit equal to the
  oracle's);
* **failover** phase — kill one replica of a 2-shard × 2-replica
  cluster mid-workload; answers must stay identical (served by the
  surviving replica) and at least one failover must be recorded;
* **degraded** phase — kill a whole shard; the response must flag
  ``degraded`` with the missing shard listed instead of erroring.

Results go to ``BENCH_cluster.json`` at the repository root.  CI's
bench-smoke lane re-runs this at ``--tiny`` scale and gates on the
``identical`` flags via ``check_regression.py --require-true``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import pytest

from repro.cluster.local import LocalCluster
from repro.cluster.verify import default_cluster_corpus, single_node_oracle

NUM_PAPERS = 30
NUM_QUERIES = 6
ROUNDS = 3
SHARD_COUNTS = (1, 2, 4)
TINY_PAPERS = 12
TINY_QUERIES = 4
TINY_SHARD_COUNTS = (1, 2)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _sweep_one(
    specs, queries, oracle, num_shards: int, rounds: int
) -> Dict[str, object]:
    """Replay the workload against one shard count; compare to oracle."""
    latencies: List[float] = []
    identical = True
    with LocalCluster(specs, num_shards=num_shards) as cluster:
        started = time.perf_counter()
        for _ in range(rounds):
            for query in queries:
                begin = time.perf_counter()
                actual = cluster.search(query, m=10).to_dict()
                latencies.append((time.perf_counter() - begin) * 1000.0)
                expected = oracle.search(query, m=10).to_dict()
                if actual["results"] != expected["results"]:
                    identical = False
        elapsed = time.perf_counter() - started
    requests = rounds * len(queries)
    return {
        "shards": num_shards,
        "requests": requests,
        "qps": round(requests / elapsed, 2) if elapsed else None,
        "p50_ms": round(_percentile(latencies, 0.50), 4),
        "p95_ms": round(_percentile(latencies, 0.95), 4),
        "identical": identical,
    }


def _failover_phase(specs, queries, oracle) -> Dict[str, object]:
    """Kill one replica mid-workload; answers must not change."""
    identical = True
    with LocalCluster(specs, num_shards=2, replicas=2) as cluster:
        half = max(1, len(queries) // 2)
        for query in queries[:half]:
            if (
                cluster.search(query, m=10).to_dict()["results"]
                != oracle.search(query, m=10).to_dict()["results"]
            ):
                identical = False
        cluster.kill(0, 0)
        degraded_after_kill = False
        for query in queries[half:] or queries[:1]:
            response = cluster.search(query, m=10)
            degraded_after_kill = degraded_after_kill or response.degraded
            if (
                response.to_dict()["results"]
                != oracle.search(query, m=10).to_dict()["results"]
            ):
                identical = False
        failovers = cluster.coordinator.failovers
    return {
        "identical": identical,
        "failovers": failovers,
        "failover_exercised": failovers >= 1,
        "degraded_after_single_replica_kill": degraded_after_kill,
    }


def _degraded_phase(specs, queries) -> Dict[str, object]:
    """Kill a whole shard; the cluster must degrade honestly, not error."""
    with LocalCluster(specs, num_shards=2, replicas=1) as cluster:
        cluster.kill(1, 0)
        response = cluster.search(queries[0], m=10)
        return {
            "degraded": response.degraded,
            "missing_shards": response.missing_shards,
            "surviving_results": len(response.hits),
            "errored": False,
        }


def run_benchmark(
    num_papers: int = NUM_PAPERS,
    num_queries: int = NUM_QUERIES,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    rounds: int = ROUNDS,
) -> Dict[str, object]:
    specs, queries = default_cluster_corpus(
        num_papers=num_papers, num_queries=num_queries
    )
    oracle = single_node_oracle(specs)
    sweep = [
        _sweep_one(specs, queries, oracle, num_shards, rounds)
        for num_shards in shard_counts
    ]
    failover = _failover_phase(specs, queries, oracle)
    degraded = _degraded_phase(specs, queries)
    return {
        "benchmark": "cluster",
        "corpus": {
            "kind": "dblp",
            "papers": num_papers,
            "queries": len(queries),
            "index": "hdil",
        },
        "sweep": sweep,
        "failover": failover,
        "degraded": degraded,
        "identical": all(entry["identical"] for entry in sweep)
        and failover["identical"],
    }


def check_report(report: Dict[str, object]) -> List[str]:
    """Acceptance failures for a report; empty means the benchmark passed."""
    failures: List[str] = []
    for entry in report["sweep"]:
        if entry["identical"] is not True:
            failures.append(
                f"{entry['shards']}-shard answers diverge from single-node"
            )
    if report["failover"]["identical"] is not True:
        failures.append("answers changed after a replica kill")
    if not report["failover"]["failover_exercised"]:
        failures.append("replica kill never exercised a failover")
    if report["failover"]["degraded_after_single_replica_kill"]:
        failures.append("single replica kill degraded a replicated shard")
    if report["degraded"]["degraded"] is not True:
        failures.append("whole-shard outage did not flag degraded")
    if report["degraded"]["missing_shards"] != [1]:
        failures.append(
            f"missing shards {report['degraded']['missing_shards']} != [1]"
        )
    return failures


def _summary_line(report: Dict[str, object]) -> str:
    parts = ", ".join(
        f"{entry['shards']}sh {entry['qps']} qps "
        f"(p95 {entry['p95_ms']:.1f}ms)"
        for entry in report["sweep"]
    )
    return (
        f"cluster: {parts}; identical={report['identical']} "
        f"failovers={report['failover']['failovers']}"
    )


@pytest.mark.slow
def test_cluster_benchmark(capsys):
    report = run_benchmark(
        num_papers=TINY_PAPERS,
        num_queries=TINY_QUERIES,
        shard_counts=TINY_SHARD_COUNTS,
        rounds=1,
    )
    with capsys.disabled():
        print(f"\n{_summary_line(report)}")
    failures = check_report(report)
    assert not failures, (failures, report)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point for CI's cluster-smoke lane."""
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help=f"smoke-test scale ({TINY_PAPERS} papers, shard counts "
        f"{list(TINY_SHARD_COUNTS)}, 1 round)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT, help="report destination"
    )
    args = parser.parse_args(argv)

    if args.tiny:
        report = run_benchmark(
            num_papers=TINY_PAPERS,
            num_queries=TINY_QUERIES,
            shard_counts=TINY_SHARD_COUNTS,
            rounds=1,
        )
    else:
        report = run_benchmark()
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(_summary_line(report))
    print(f"wrote {args.out}")
    failures = check_report(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
