"""repro.obs — end-to-end query tracing and profiling.

Every layer of the serving stack (HTTP front end, cluster coordinator,
shard workers, evaluators, simulated disk) reports into one per-query
span tree, so "why was *this* query slow?" has a structural answer
instead of an aggregate-counter shrug.  See :mod:`repro.obs.trace` for
the span model, :mod:`repro.obs.render` for the tree/canonical-JSON
views, and :mod:`repro.obs.invariants` for the validity battery the
tests and ``repro trace --check`` run over captured traces.
"""

from .trace import (
    NOOP_SPAN,
    Span,
    TraceBuffer,
    TraceContext,
    Tracer,
    TRACE_ID_HEADER,
    PARENT_SPAN_HEADER,
)
from .render import render_trace, to_canonical_json, to_json
from .invariants import validate_trace

__all__ = [
    "NOOP_SPAN",
    "PARENT_SPAN_HEADER",
    "Span",
    "TraceBuffer",
    "TraceContext",
    "Tracer",
    "TRACE_ID_HEADER",
    "render_trace",
    "to_canonical_json",
    "to_json",
    "validate_trace",
]
