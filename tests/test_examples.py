"""Smoke tests: the fast example scripts must run and show their claims."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "subsection" in out            # most specific result
        assert "XQL query language" in out
        assert "ancestor <workshop>" in out   # context navigation

    def test_mixed_html_xml(self, capsys):
        out = run_example("mixed_html_xml", capsys)
        assert "HTML page" in out and "XML <" in out
        # The linked tutorial must outrank the unlinked copycat: the doc-1
        # line has to appear before the doc-2 line.
        assert out.index("doc 1:") < out.index("doc 2:")

    def test_live_updates(self, capsys):
        out = run_example("live_updates", capsys)
        assert "search('breaking') -> []" in out   # replaced content gone
        assert "corrected" in out
        assert "delta=0" in out                    # merge compacted


class TestSlowExamples:
    """The corpus-generating examples, exercised at reduced size."""

    def test_dblp_search(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["dblp_search.py", "60"])
        out = run_example("dblp_search", capsys)
        assert "jim gray" in out
        assert "ElemRank" in out

    def test_advanced_queries(self, capsys):
        out = run_example("advanced_queries", capsys)
        assert "[ranking]" in out                 # highlighting
        assert "disjunctive" in out
        assert "library/book/title" in out        # path constraint
        assert "tf-idf" in out
        assert "HITS" in out
