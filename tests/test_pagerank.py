"""Unit tests for the classic PageRank baseline."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.ranking.pagerank import pagerank, pagerank_from_adjacency


class TestPageRank:
    def test_cycle_is_uniform(self):
        result = pagerank(3, [(0, 1), (1, 2), (2, 0)])
        assert result.converged
        assert np.allclose(result.scores, 1 / 3, atol=1e-4)

    def test_scores_sum_to_one(self):
        result = pagerank(5, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 0)])
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-6)

    def test_star_center_wins(self):
        edges = [(i, 0) for i in range(1, 6)]
        result = pagerank(6, edges)
        assert result.scores[0] == max(result.scores)

    def test_dangling_nodes_handled(self):
        # Node 1 has no out-links; mass must not leak.
        result = pagerank(2, [(0, 1)])
        assert result.converged
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-6)
        assert result.scores[1] > result.scores[0]

    def test_no_edges(self):
        result = pagerank(4, [])
        assert np.allclose(result.scores, 0.25, atol=1e-4)

    def test_empty_graph(self):
        result = pagerank(0, [])
        assert result.converged
        assert len(result.scores) == 0

    def test_damping_extreme(self):
        low_damping = pagerank(3, [(0, 1), (1, 2), (2, 0)], damping=0.01)
        assert np.allclose(low_damping.scores, 1 / 3, atol=1e-3)

    def test_divergence_raises_when_asked(self):
        # Asymmetric graph: the iteration cannot settle in two steps.
        with pytest.raises(ConvergenceError):
            pagerank(
                4,
                [(0, 1), (1, 2), (2, 0), (0, 2), (3, 0)],
                threshold=1e-30,
                max_iterations=2,
                raise_on_divergence=True,
            )

    def test_unconverged_flag(self):
        result = pagerank(
            4,
            [(0, 1), (1, 2), (2, 0), (0, 2), (3, 0)],
            threshold=1e-30,
            max_iterations=2,
        )
        assert not result.converged
        assert result.iterations == 2

    def test_parallel_edges_weighted(self):
        # Two edges 0->1 vs one edge 0->2: node 1 gets twice the share.
        result = pagerank(3, [(0, 1), (0, 1), (0, 2), (1, 0), (2, 0)])
        assert result.scores[1] > result.scores[2]

    def test_as_dict(self):
        result = pagerank(2, [(0, 1), (1, 0)])
        mapping = result.as_dict(["a", "b"])
        assert set(mapping) == {"a", "b"}

    def test_adjacency_wrapper(self):
        result = pagerank_from_adjacency({0: [1], 1: [2], 2: [0]})
        assert len(result.scores) == 3
        assert result.converged
