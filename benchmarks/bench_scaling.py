"""Scaling study: build cost, space and ElemRank time vs corpus size.

Not a paper table — it substantiates the paper's feasibility claims
("computing ElemRanks at the granularity of elements ... is feasible for
reasonably large XML document collections") by confirming near-linear
growth of index size and build time over a corpus-size sweep.
"""

import pytest

from repro.config import ElemRankParams
from repro.datasets.dblp import generate_dblp
from repro.index.builder import IndexBuilder
from repro.ranking.elemrank import compute_elemrank

SIZES = (100, 200, 400, 800)


@pytest.fixture(scope="module")
def corpora():
    return {size: generate_dblp(num_papers=size, seed=3) for size in SIZES}


@pytest.mark.parametrize("size", SIZES)
def test_elemrank_scaling(benchmark, corpora, size):
    graph = corpora[size].graph
    result = benchmark.pedantic(
        lambda: compute_elemrank(graph, ElemRankParams()), rounds=2, iterations=1
    )
    assert result.converged
    benchmark.extra_info["elements"] = len(result.scores)
    benchmark.extra_info["iterations"] = result.iterations


@pytest.mark.parametrize("size", (100, 400))
def test_full_build_scaling(benchmark, corpora, size):
    graph = corpora[size].graph

    def build():
        builder = IndexBuilder(graph)
        return builder.build_dil()

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["list_bytes"] = index.inverted_list_bytes


def test_space_grows_linearly(benchmark, corpora, capsys):
    sizes = sorted(corpora)

    def measure():
        out = {}
        for size in sizes:
            builder = IndexBuilder(corpora[size].graph)
            out[size] = builder.build_dil().inverted_list_bytes
        return out

    bytes_per_size = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n== Scaling: DIL list bytes vs corpus size ==")
        for size in sizes:
            per_paper = bytes_per_size[size] / size
            print(f"  {size:>5} papers: {bytes_per_size[size]:>9} B "
                  f"({per_paper:.0f} B/paper)")
    # Per-document space must be roughly constant (within 25%).
    per_paper = [bytes_per_size[s] / s for s in sizes]
    assert max(per_paper) <= 1.25 * min(per_paper)
