"""Tests for repro.obs: span trees, sampling, canonical export, and the
traced single-node serving path (stage histograms, /traces, storms)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.engine import XRankEngine
from repro.errors import XRankError
from repro.obs import (
    NOOP_SPAN,
    Span,
    TraceBuffer,
    TraceContext,
    Tracer,
    render_trace,
    to_canonical_json,
    validate_trace,
)
from repro.obs.render import (
    NONDETERMINISTIC_ATTRS,
    to_dict,
    traces_canonical_json,
)
from repro.obs.trace import (
    PARENT_SPAN_HEADER,
    TRACE_ID_HEADER,
    span_from_dict,
)
from repro.service.core import XRankService
from repro.service.metrics import HISTOGRAM_BUCKETS_MS, Histogram


class FakeClock:
    """A manually-advanced monotonic clock (seconds)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, ms: float) -> None:
        self.now += ms / 1000.0


def build_engine(docs=None) -> XRankEngine:
    engine = XRankEngine()
    for index, doc in enumerate(
        docs
        or [
            "<doc><title>alpha beta</title><p>alpha gamma delta</p></doc>",
            "<doc><title>beta gamma</title><p>alpha beta beta</p></doc>",
            "<doc><title>delta</title><p>gamma gamma alpha</p></doc>",
        ]
    ):
        engine.add_xml(doc, uri=f"doc{index}")
    engine.build(kinds=["hdil", "dil"])
    return engine


# ---------------------------------------------------------------------------
# Span mechanics
# ---------------------------------------------------------------------------

class TestSpan:
    def test_children_nest_and_share_the_trace_id(self):
        root = Span("root", trace_id="t1")
        child = root.child("stage", step=1)
        grandchild = child.child("io")
        assert child.parent is root and grandchild.parent is child
        assert child.trace_id == grandchild.trace_id == "t1"
        assert root.children == [child] and child.children == [grandchild]

    def test_span_ids_unique_across_concurrent_children(self):
        root = Span("root", trace_id="t1")
        spans = []

        def fan_out():
            spans.append(root.child("shard"))

        threads = [threading.Thread(target=fan_out) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        ids = [span.span_id for span in spans] + [root.span_id]
        assert len(set(ids)) == len(ids)

    def test_finish_is_idempotent(self):
        clock = FakeClock()
        span = Span("root", trace_id="t1", clock=clock)
        clock.advance(10)
        span.finish()
        first = span.duration_ms
        clock.advance(50)
        span.finish()
        assert span.duration_ms == first == pytest.approx(10.0)

    def test_context_manager_records_error_event(self):
        root = Span("root", trace_id="t1")
        with pytest.raises(ValueError):
            with root.child("stage") as span:
                raise ValueError("boom")
        (event,) = root.children[0].events
        assert event["name"] == "error"
        assert event["attrs"]["type"] == "ValueError"
        assert root.children[0].duration_ms is not None

    def test_attach_io_keeps_only_nonzero_counters(self):
        span = Span("root", trace_id="t1")
        span.attach_io({"page_reads": 3, "random_reads": 0})
        assert span.io == {"page_reads": 3}

    def test_graft_marks_the_subtree_remote(self):
        clock = FakeClock()
        worker_root = Span("service.search", trace_id="t1", clock=clock)
        worker_root.child("evaluate").finish()
        clock.advance(5)
        worker_root.finish()

        coordinator_root = Span("cluster.search", trace_id="t1", clock=clock)
        rpc = coordinator_root.child("rpc")
        grafted = rpc.graft(to_dict(worker_root))
        assert grafted.remote and grafted.children[0].remote
        assert grafted.trace_id == "t1"
        assert grafted.duration_ms == pytest.approx(5.0)


class TestNoopSpan:
    def test_is_falsy_and_not_recording(self):
        assert not NOOP_SPAN
        assert NOOP_SPAN.recording is False
        assert (None or NOOP_SPAN) is NOOP_SPAN
        assert (NOOP_SPAN or NOOP_SPAN) is NOOP_SPAN

    def test_whole_surface_is_inert(self):
        assert NOOP_SPAN.child("x") is NOOP_SPAN
        assert NOOP_SPAN.graft({"name": "x"}) is NOOP_SPAN
        NOOP_SPAN.event("e", key=1)
        NOOP_SPAN.set("k", "v")
        NOOP_SPAN.attach_io({"page_reads": 5})
        with NOOP_SPAN as span:
            span.finish()
        assert NOOP_SPAN.events == [] and NOOP_SPAN.attrs == {}
        assert NOOP_SPAN.io is None


class TestTraceContext:
    def test_header_round_trip(self):
        ctx = TraceContext("t42", "s7")
        headers = ctx.to_headers()
        assert headers == {TRACE_ID_HEADER: "t42", PARENT_SPAN_HEADER: "s7"}
        parsed = TraceContext.from_headers(headers)
        assert parsed.trace_id == "t42"
        assert parsed.parent_span_id == "s7"

    def test_absent_headers_mean_no_context(self):
        assert TraceContext.from_headers({}) is None
        assert TraceContext.from_headers({"X-Other": "1"}) is None


# ---------------------------------------------------------------------------
# Sampling and retention
# ---------------------------------------------------------------------------

class TestTracer:
    def test_never_mode_rides_the_noop_singleton(self):
        tracer = Tracer(sample="never")
        assert not tracer.enabled
        span = tracer.begin("service.search")
        assert span is NOOP_SPAN
        tracer.finish(span)  # must be a no-op, not a crash
        assert len(tracer.buffer) == 0

    def test_always_mode_buffers_every_trace(self):
        tracer = Tracer(sample="always")
        for _ in range(3):
            span = tracer.begin("service.search")
            span.finish()
            tracer.finish(span)
        ids = [root.trace_id for root in tracer.buffer.traces()]
        assert ids == ["t000001", "t000002", "t000003"]

    def test_ratio_sampling_is_a_deterministic_stride(self):
        decisions = []
        for _ in range(2):
            tracer = Tracer(sample="ratio", ratio=0.3)
            decisions.append(
                [
                    tracer.begin("q") is not NOOP_SPAN
                    for _ in range(20)
                ]
            )
        assert decisions[0] == decisions[1]
        assert sum(decisions[0]) == 6  # floor(20 * 0.3)

    def test_slow_mode_retains_only_slow_roots(self):
        clock = FakeClock()
        tracer = Tracer(sample="slow", slow_ms=50.0, clock=clock)
        fast = tracer.begin("fast-query")
        clock.advance(10)
        tracer.finish(fast)
        slow = tracer.begin("slow-query")
        clock.advance(80)
        tracer.finish(slow)
        retained = tracer.buffer.traces()
        assert [root.name for root in retained] == ["slow-query"]

    def test_context_forces_sampling_even_when_disabled(self):
        tracer = Tracer(sample="never")
        ctx = TraceContext("t9", "s3")
        span = tracer.begin("service.search", ctx=ctx)
        assert span is not NOOP_SPAN
        assert span.trace_id == "t9"
        assert span.attrs["parent_span"] == "s3"

    def test_context_for_round_trips_span_identity(self):
        tracer = Tracer(sample="always")
        span = tracer.begin("cluster.search")
        ctx = tracer.context_for(span)
        assert ctx.trace_id == span.trace_id
        assert ctx.parent_span_id == span.span_id
        assert tracer.context_for(NOOP_SPAN) is None

    def test_rejects_unknown_modes_and_bad_ratios(self):
        with pytest.raises(XRankError):
            Tracer(sample="sometimes")
        with pytest.raises(XRankError):
            Tracer(sample="ratio", ratio=1.5)

    def test_buffer_is_bounded_and_counts_drops(self):
        buffer = TraceBuffer(capacity=2)
        for n in range(5):
            span = Span(f"q{n}", trace_id=f"t{n}")
            span.finish()
            buffer.add(span)
        assert len(buffer) == 2
        assert buffer.dropped == 3 and buffer.retained == 5
        assert [root.name for root in buffer.traces()] == ["q3", "q4"]


# ---------------------------------------------------------------------------
# Canonical export and invariants
# ---------------------------------------------------------------------------

def _sample_tree(clock, shuffle=False, latency=1.0):
    """Two runs of the same logical query, with controllable noise."""
    root = Span("service.search", trace_id="t1", clock=clock, query="alpha")
    root.set("latency_ms", latency)  # nondeterministic; must be stripped
    names = ["cache.lookup", "evaluate"]
    if shuffle:
        names.reverse()
    for name in names:
        child = root.child(name)
        child.event("miss" if name == "cache.lookup" else "evaluator")
        clock.advance(latency)
        child.finish()
    root.finish()
    return root


class TestCanonicalExport:
    def test_structure_is_byte_stable_across_noise(self):
        runs = []
        for shuffle, latency in ((False, 1.0), (True, 37.5)):
            clock = FakeClock()
            runs.append(
                to_canonical_json(
                    _sample_tree(clock, shuffle=shuffle, latency=latency)
                )
            )
        assert runs[0] == runs[1]

    def test_nondeterministic_attrs_are_stripped(self):
        clock = FakeClock()
        root = _sample_tree(clock)
        root.set("port", 54321)
        encoded = to_canonical_json(root)
        for key in ("latency_ms", "port", "span_id", "duration_ms"):
            assert key not in json.loads(encoded).get("attrs", {})
            assert f'"{key}"' not in encoded
        assert NONDETERMINISTIC_ATTRS >= {"latency_ms", "port"}

    def test_traces_canonical_json_covers_a_sequence(self):
        clock = FakeClock()
        doc = traces_canonical_json([_sample_tree(clock), _sample_tree(clock)])
        parsed = json.loads(doc)
        assert len(parsed) == 2 and parsed[0] == parsed[1]

    def test_span_from_dict_round_trips_canonical_structure(self):
        clock = FakeClock()
        root = _sample_tree(clock)
        rebuilt = span_from_dict(to_dict(root))
        assert rebuilt.remote
        assert to_canonical_json(rebuilt) == to_canonical_json(root)
        assert validate_trace(rebuilt) == []

    def test_render_trace_shows_events_io_and_remote_markers(self):
        clock = FakeClock()
        root = _sample_tree(clock)
        root.children[1].attach_io({"page_reads": 7})
        root.children[1].remote = True
        text = render_trace(root)
        assert "trace t1" in text
        assert "* miss" in text
        assert "~ io: page_reads=7" in text
        assert "[remote]" in text


class TestInvariants:
    def test_valid_tree_has_no_problems(self):
        clock = FakeClock()
        assert validate_trace(_sample_tree(clock)) == []

    def test_unfinished_span_is_flagged(self):
        root = Span("root", trace_id="t1")
        root.child("leaked")
        root.finish()
        problems = validate_trace(root)
        assert any("never finished" in p for p in problems)

    def test_missing_trace_id_is_flagged(self):
        root = Span("root")
        root.finish()
        assert any("no trace id" in p for p in validate_trace(root))

    def test_orphaned_parent_link_is_flagged(self):
        root = Span("root", trace_id="t1")
        stray = Span("stray", trace_id="t1")
        stray.finish()
        root.children.append(stray)  # child without the parent link
        root.finish()
        assert any("orphan" in p for p in validate_trace(root))

    def test_sequential_parent_bounds_the_sum_of_children(self):
        clock = FakeClock()
        root = Span("root", trace_id="t1", clock=clock)
        for _ in range(2):
            child = root.child("stage")
            clock.advance(100)
            child.finish()
        root.finish()
        # Fake overlapping children under a sequential parent: shrink the
        # parent's duration below the children's sum.
        root.duration_ms = 120.0
        assert any("sum" in p for p in validate_trace(root))
        # Declaring the fan-out parallel waives exactly that bound.
        root.set("parallel", True)
        assert validate_trace(root) == []

    def test_oversized_single_child_is_flagged_even_in_parallel(self):
        clock = FakeClock()
        root = Span("root", trace_id="t1", clock=clock, parallel=True)
        child = root.child("shard")
        clock.advance(500)
        child.finish()
        root.finish()
        root.duration_ms = 100.0
        assert any("inside parent" in p for p in validate_trace(root))


# ---------------------------------------------------------------------------
# Stage histograms
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_buckets_are_cumulative(self):
        histogram = Histogram()
        for value in (0.5, 3.0, 3.0, 40.0, 9999.0):
            histogram.observe(value)
        snapshot = histogram.as_dict()
        assert snapshot["count"] == 5
        assert snapshot["sum_ms"] == pytest.approx(0.5 + 3 + 3 + 40 + 9999)
        buckets = snapshot["buckets"]
        assert buckets["le_1ms"] == 1
        assert buckets["le_5ms"] == 3
        assert buckets["le_50ms"] == 4
        assert buckets["le_inf"] == 5
        # Cumulative counts never decrease along the bucket ladder.
        values = list(buckets.values())
        assert values == sorted(values)
        assert len(buckets) == len(HISTOGRAM_BUCKETS_MS) + 1


# ---------------------------------------------------------------------------
# The traced single-node serving path
# ---------------------------------------------------------------------------

class TestTracedService:
    def test_traced_search_produces_a_valid_staged_tree(self):
        service = XRankService(build_engine(), tracer=Tracer(sample="always"))
        service.search("alpha beta", m=5)
        (root,) = service.tracer.buffer.traces()
        assert validate_trace(root) == []
        assert root.name == "service.search"
        names = [child.name for child in root.children]
        assert names == ["admission", "cache.lookup", "evaluate"]
        (lookup_event,) = root.children[1].events
        assert lookup_event["name"] == "miss"

    def test_cache_hit_trace_has_no_evaluate_span(self):
        service = XRankService(build_engine(), tracer=Tracer(sample="always"))
        service.search("alpha", m=5)
        service.search("alpha", m=5)
        _, hit_root = service.tracer.buffer.traces()
        names = [child.name for child in hit_root.children]
        assert "evaluate" not in names
        (event,) = hit_root.children[1].events
        assert event["name"] == "hit"
        assert hit_root.attrs["cached"] is True

    def test_stage_histograms_and_degraded_total_in_snapshot(self):
        service = XRankService(build_engine(), tracer=Tracer(sample="always"))
        service.search("alpha beta", m=5)
        snapshot = service.metrics.snapshot()
        assert snapshot["degraded_total"] == snapshot["degraded"] == 0
        stages = snapshot["stages"]
        assert {"admission", "evaluate", "total"} <= set(stages)
        assert stages["total"]["count"] == 1

    def test_untraced_search_still_feeds_stage_histograms(self):
        # Histograms serve /metrics scrapers and must not depend on the
        # trace sampling decision; only span trees are sampled.
        service = XRankService(build_engine())  # default tracer: never
        service.search("alpha", m=5)
        assert len(service.tracer.buffer) == 0
        stages = service.metrics.snapshot()["stages"]
        assert stages["total"]["count"] == 1

    def test_trace_rides_extras_only_when_ctx_given(self):
        service = XRankService(build_engine(), tracer=Tracer(sample="always"))
        plain = service.search("alpha", m=5)
        assert "trace" not in plain.extras
        ctx = TraceContext("t77")
        forced = service.search("beta gamma", m=5, trace_ctx=ctx)
        tree = forced.extras["trace"]
        assert tree["trace_id"] == "t77"
        assert validate_trace(span_from_dict(tree)) == []

    def test_seeded_concurrent_storm_yields_valid_identical_traces(self):
        service = XRankService(
            build_engine(),
            tracer=Tracer(sample="always", buffer_size=256),
        )
        queries = ["alpha beta", "gamma", "alpha", "beta gamma"]
        errors: list = []

        def client(worker: int) -> None:
            try:
                for i in range(8):
                    service.search(queries[(worker + i) % len(queries)], m=5)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors

        traces = service.tracer.buffer.traces()
        assert len(traces) == 32
        by_query = {}
        for root in traces:
            assert validate_trace(root) == [], render_trace(root)
            by_query.setdefault(
                root.attrs["query"], set()
            ).add(to_canonical_json(root))
        # Cache hits and misses legitimately differ in structure, but a
        # given query must produce at most those two shapes — storms may
        # not invent new trees.
        for query, shapes in by_query.items():
            assert len(shapes) <= 2, (query, shapes)
