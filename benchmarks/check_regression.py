"""Compare a fresh benchmark report against a checked-in baseline.

CI's bench-smoke lane runs the benchmarks at ``--tiny`` scale and then
gates the build with this script:

* ``--metric PATH --max-ratio R`` fails when the fresh value exceeds the
  baseline's by more than a factor of ``R`` (lower-is-better metrics such
  as latencies; a generous ratio absorbs noisy shared runners);
* ``--require-true PATH`` fails when the fresh report's value at ``PATH``
  is not ``True`` — used for the parallel build's ``identical`` flag and
  the service bench's ``deadline.degraded``.

``PATH`` is a dotted path into the JSON report; integer segments index
into lists (``parallel.0.speedup``).

Examples::

    python benchmarks/check_regression.py --report fresh.json \\
        --baseline BENCH_service.json --metric cold.p95_ms --max-ratio 3
    python benchmarks/check_regression.py --report fresh.json \\
        --require-true identical
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence


def resolve(report: object, path: str) -> object:
    """Walk a dotted path through nested dicts/lists."""
    node = report
    for segment in path.split("."):
        if isinstance(node, list):
            node = node[int(segment)]
        elif isinstance(node, dict):
            if segment not in node:
                raise KeyError(f"no key {segment!r} while resolving {path!r}")
            node = node[segment]
        else:
            raise KeyError(
                f"cannot descend into {type(node).__name__} at "
                f"{segment!r} while resolving {path!r}"
            )
    return node


def check(
    report: dict,
    baseline: Optional[dict],
    metrics: Sequence[str],
    max_ratio: float,
    require_true: Sequence[str],
) -> List[str]:
    """All gate failures; empty means the report passes."""
    failures: List[str] = []
    for path in require_true:
        try:
            value = resolve(report, path)
        except (KeyError, IndexError, ValueError) as exc:
            failures.append(f"{path}: unresolvable ({exc})")
            continue
        if value is not True:
            failures.append(f"{path}: expected True, got {value!r}")
    if metrics and baseline is None:
        failures.append("--metric given but no --baseline to compare against")
        return failures
    for path in metrics:
        try:
            fresh = float(resolve(report, path))
            base = float(resolve(baseline, path))
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            failures.append(f"{path}: unresolvable ({exc})")
            continue
        if base <= 0:
            # A zero/negative baseline makes the ratio meaningless; only an
            # actual increase from nothing counts as a regression then.
            if fresh > 0:
                failures.append(
                    f"{path}: baseline {base} is non-positive but fresh "
                    f"value is {fresh}"
                )
            continue
        ratio = fresh / base
        if ratio > max_ratio:
            failures.append(
                f"{path}: {fresh} is {ratio:.2f}x the baseline {base} "
                f"(allowed {max_ratio}x)"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", type=Path, required=True, help="fresh benchmark JSON"
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, help="checked-in baseline JSON"
    )
    parser.add_argument(
        "--metric",
        action="append",
        default=[],
        help="dotted path of a lower-is-better metric (repeatable)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=3.0,
        help="allowed fresh/baseline ratio for --metric checks",
    )
    parser.add_argument(
        "--require-true",
        action="append",
        default=[],
        help="dotted path that must be True in the fresh report (repeatable)",
    )
    args = parser.parse_args(argv)

    report = json.loads(args.report.read_text(encoding="utf-8"))
    baseline = (
        json.loads(args.baseline.read_text(encoding="utf-8"))
        if args.baseline
        else None
    )
    failures = check(
        report, baseline, args.metric, args.max_ratio, args.require_true
    )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        checked = len(args.metric) + len(args.require_true)
        print(f"regression gate: ok ({checked} check(s) on {args.report.name})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
