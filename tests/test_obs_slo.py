"""SLO burn-rate monitoring: window semantics, breach logic, config
validation, and the ServiceMetrics forwarding path."""

from __future__ import annotations

import pytest

from repro.config import SLOParams
from repro.errors import QueryError
from repro.obs.slo import SLOMonitor
from repro.service.metrics import ServiceMetrics


def params(**overrides) -> SLOParams:
    base = dict(
        availability_target=0.9,      # budget 0.1
        latency_target_ms=100.0,
        latency_target_fraction=0.9,  # budget 0.1
        fast_window=4,
        slow_window=8,
        fast_burn_threshold=2.0,
        slow_burn_threshold=1.0,
    )
    base.update(overrides)
    return SLOParams(**base)


class TestSLOParams:
    def test_defaults_validate(self):
        SLOParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"availability_target": 0.0},
            {"availability_target": 1.0},
            {"latency_target_fraction": 1.5},
            {"latency_target_ms": 0.0},
            {"fast_window": 0},
            {"fast_window": 16, "slow_window": 8},
        ],
    )
    def test_invalid_params_raise_typed_errors(self, kwargs):
        with pytest.raises(QueryError):
            SLOParams(**kwargs)


class TestSLOMonitor:
    def test_empty_monitor_has_zero_burn_and_no_breach(self):
        snapshot = SLOMonitor(params()).snapshot()
        assert snapshot["availability"]["fast_burn"] == 0.0
        assert snapshot["latency"]["slow_burn"] == 0.0
        assert snapshot["breach"] is False
        assert snapshot["samples"] == 0

    def test_burn_is_bad_fraction_over_budget(self):
        monitor = SLOMonitor(params())
        monitor.record_search(10.0)
        monitor.record_error()
        snapshot = monitor.snapshot()
        # 1 bad of 2 in both windows; availability budget is 0.1.
        assert snapshot["availability"]["fast_burn"] == pytest.approx(5.0)
        assert snapshot["availability"]["slow_burn"] == pytest.approx(5.0)

    def test_degraded_answers_count_as_available(self):
        monitor = SLOMonitor(params())
        # The service records *answered* queries via record_search no
        # matter whether they degraded; only errors/rejections are bad.
        for _ in range(8):
            monitor.record_search(10.0)
        assert monitor.snapshot()["availability"]["slow_burn"] == 0.0

    def test_slow_queries_burn_latency_but_not_availability(self):
        monitor = SLOMonitor(params())
        monitor.record_search(500.0)  # over the 100ms target
        snapshot = monitor.snapshot()
        assert snapshot["availability"]["fast_burn"] == 0.0
        assert snapshot["latency"]["fast_burn"] > 0.0
        assert snapshot["latency"]["bad_total"] == 1

    def test_rejections_are_bad_for_both_slos(self):
        monitor = SLOMonitor(params())
        monitor.record_rejection()
        snapshot = monitor.snapshot()
        assert snapshot["availability"]["bad_total"] == 1
        assert snapshot["latency"]["bad_total"] == 1

    def test_breach_requires_both_windows_over_threshold(self):
        monitor = SLOMonitor(params())
        # Fill the slow window with good queries, then 4 errors: the
        # fast window (size 4) is 100% bad, the slow window (size 8) is
        # 50% bad -> slow burn 5.0 >= 1.0 and fast burn 10.0 >= 2.0.
        for _ in range(8):
            monitor.record_search(10.0)
        assert not monitor.breached()
        for _ in range(4):
            monitor.record_error()
        snapshot = monitor.snapshot()
        assert snapshot["availability"]["breach"] is True
        assert monitor.breached()

    def test_fast_spike_alone_does_not_breach(self):
        # One error in an otherwise-good stream: the fast window burns
        # hot briefly but the slow window stays under threshold.
        monitor = SLOMonitor(
            params(fast_window=1, slow_window=8, slow_burn_threshold=2.0)
        )
        for _ in range(7):
            monitor.record_search(10.0)
        monitor.record_error()
        snapshot = monitor.snapshot()
        assert snapshot["availability"]["fast_burn"] >= 2.0  # spiking
        assert snapshot["availability"]["slow_burn"] < 2.0   # not confirmed
        assert snapshot["breach"] is False

    def test_windows_slide_and_recover(self):
        monitor = SLOMonitor(params())
        for _ in range(8):
            monitor.record_error()
        assert monitor.breached()
        # Good traffic pushes the errors out of both windows.
        for _ in range(8):
            monitor.record_search(10.0)
        snapshot = monitor.snapshot()
        assert snapshot["breach"] is False
        # Lifetime totals keep the history even after recovery.
        assert snapshot["availability"]["bad_total"] == 8
        assert snapshot["samples"] == 16

    def test_default_params_used_when_none_given(self):
        monitor = SLOMonitor()
        assert monitor.params.availability_target == 0.999


class TestMetricsForwarding:
    def test_record_paths_feed_the_monitor(self):
        metrics = ServiceMetrics(slo=SLOMonitor(params()))
        metrics.record_search(10.0, cached=False, degraded=False)
        metrics.record_search(500.0, cached=False, degraded=True)
        metrics.record_error()
        metrics.record_rejection()
        snapshot = metrics.slo_snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["samples"] == 4
        assert snapshot["availability"]["bad_total"] == 2
        assert snapshot["latency"]["bad_total"] == 3

    def test_no_monitor_reports_disabled(self):
        assert ServiceMetrics().slo_snapshot() == {"enabled": False}
