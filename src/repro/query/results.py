"""Query results and the top-m result heap.

A :class:`QueryResult` identifies a result element either by Dewey ID
(Dewey-family indexes) or by flat element id (naive baselines), and carries
the overall rank plus the per-keyword diagnostics the examples display.

:class:`ResultHeap` is the bounded min-heap of Figure 5/7: it retains the m
best results seen so far and exposes ``kth_rank`` — the rank of the m-th
best — which the Threshold Algorithm compares against its threshold.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..obs.profile import active_profile
from ..xmlmodel.dewey import DeweyId


def validate_query(
    keywords: Sequence[str],
    m: int,
    weights: Optional[Sequence[float]] = None,
) -> None:
    """Shared argument validation for every evaluator."""
    if not keywords:
        raise QueryError("a keyword query needs at least one keyword")
    if m < 1:
        raise QueryError("m must be at least 1")
    if weights is not None:
        if len(weights) != len(keywords):
            raise QueryError("one weight per keyword is required")
        if any(w <= 0 for w in weights):
            raise QueryError("keyword weights must be positive")


@dataclass(frozen=True)
class QueryResult:
    """One ranked query result."""

    rank: float
    dewey: Optional[DeweyId] = None
    elem_id: Optional[int] = None
    keyword_ranks: Tuple[float, ...] = ()
    proximity: float = 1.0
    #: per-keyword sorted positions of the relevant occurrences (filled by
    #: the Dewey-family merges; used by XRankEngine.explain)
    position_lists: Tuple[Tuple[int, ...], ...] = ()

    def identifier(self) -> str:
        """Display identifier: dotted Dewey ID or #elem_id."""
        if self.dewey is not None:
            return str(self.dewey)
        return f"#{self.elem_id}"


def result_order_key(result: QueryResult) -> Tuple:
    """Canonical identifier order for tie-breaking: Dewey ID (document
    order), falling back to flat element id for the naive baselines.

    Equal-rank results are ordered by this key ascending, making the
    top-m a pure function of the result *set* rather than of the order in
    which an evaluation strategy happened to discover the results.  That
    total order is what lets a distributed deployment (repro.cluster)
    merge per-shard top-m lists into exactly the single-node answer.
    """
    if result.dewey is not None:
        return result.dewey.components
    return (result.elem_id,)


class _Worse:
    """Heap entry wrapper: compares ``lower = worse`` under the canonical
    result order (higher rank wins, then smaller identifier wins)."""

    __slots__ = ("rank", "order", "result")

    def __init__(self, result: QueryResult):
        self.rank = result.rank
        self.order = result_order_key(result)
        self.result = result

    def __lt__(self, other: "_Worse") -> bool:
        if self.rank != other.rank:
            return self.rank < other.rank
        return self.order > other.order


class ResultHeap:
    """Keeps the top-m results by rank (ties broken by Dewey order).

    Ties at equal rank are resolved by :func:`result_order_key` ascending
    — smaller Dewey IDs (earlier in document order) survive — so the
    retained set and its final order are independent of arrival order.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise QueryError("result capacity must be at least 1")
        self.capacity = capacity
        self._heap: List[_Worse] = []
        # Captured once: heaps are built inside the profiled query, so
        # each add() pays at most one None check for profiling-off.
        self._profile = active_profile()

    def add(self, result: QueryResult) -> bool:
        """Offer a result; returns True when it enters the top-m.

        Identifiers are not deduplicated here: no evaluator offers the
        same element twice, and the cluster merge does its own dedup."""
        entry = _Worse(result)
        profile = self._profile
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            if profile is not None:
                profile.heap_pushes += 1
            return True
        if self._heap[0] < entry:
            heapq.heapreplace(self._heap, entry)
            if profile is not None:
                profile.heap_pushes += 1
                profile.heap_evictions += 1
            return True
        return False

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.capacity

    def kth_rank(self) -> float:
        """Rank of the m-th best result; -inf while fewer than m are held."""
        if not self.full:
            return float("-inf")
        return self._heap[0].rank

    def results(self) -> List[QueryResult]:
        """Contents sorted by descending rank; ties in Dewey order.

        The tiebreak matches the heap's retention rule, so paging with
        different ``m`` values over tied ranks stays consistent."""
        ordered = sorted(self._heap, key=lambda e: (-e.rank, e.order))
        return [entry.result for entry in ordered]
