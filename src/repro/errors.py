"""Exception hierarchy for the XRANK reproduction.

Every error raised by this package derives from :class:`XRankError`, so
callers can catch one type at an API boundary.  Sub-hierarchies mirror the
subsystems: parsing, storage, indexing and querying.
"""

from __future__ import annotations


class XRankError(Exception):
    """Base class for all errors raised by this package."""


class XMLParseError(XRankError):
    """Raised when an XML or HTML document cannot be parsed.

    Carries the byte/character offset and a human-readable reason so that
    corpus-loading code can report which document (and where) failed.
    """

    def __init__(self, message: str, offset: int = -1, line: int = -1):
        self.offset = offset
        self.line = line
        location = ""
        if line >= 0:
            location = f" (line {line})"
        elif offset >= 0:
            location = f" (offset {offset})"
        super().__init__(f"{message}{location}")


class DeweyError(XRankError):
    """Raised for malformed Dewey IDs (bad components, bad encodings)."""


class StorageError(XRankError):
    """Base class for simulated-disk and page-management failures."""


class PageError(StorageError):
    """Raised when a page id is out of range or a page overflows."""


class FaultError(StorageError):
    """Base class for storage faults — injected or detected.

    Everything the fault-injection subsystem (:mod:`repro.faults`) makes
    a layer raise derives from here, so hardened callers (the serving
    layer's circuit breaker, the build pipeline's per-shard retry) can
    catch exactly the failures that model hardware misbehaviour without
    also swallowing programming errors.
    """


class ReadFaultError(FaultError):
    """Raised when a simulated page read fails outright (I/O error).

    Transient by construction: the disk retries the read internally
    (``StorageParams.read_retries``) before letting this escape.
    """

    def __init__(self, page_id: int, message: str = ""):
        self.page_id = page_id
        super().__init__(
            message or f"injected read error on page {page_id}"
        )


class CorruptPageError(FaultError):
    """Raised when a page's checksum does not match its contents.

    Detection, not injection: with ``StorageParams.checksums`` enabled
    every buffer-pool miss verifies the page's CRC32C, so torn writes and
    bit rot surface here instead of flowing into query results.  Carries
    the page id and the owning structure (e.g. ``"dil:xql"``) so
    operators can tell *which* inverted list is rotten.
    """

    def __init__(self, page_id: int, owner: str = ""):
        self.page_id = page_id
        self.owner = owner
        suffix = f" (owned by {owner})" if owner else ""
        super().__init__(
            f"checksum mismatch on page {page_id}{suffix}: "
            "page is torn or bit-rotted"
        )


class CorruptRunError(FaultError):
    """Raised when a build run file fails its per-block CRC32C check."""


class SnapshotError(StorageError):
    """Base class for durable-snapshot failures (repro.durability).

    Everything the snapshot writer and the recovery scan raise derives
    from here, so callers hardened against "persistence went wrong" can
    catch one type and decide between retrying the save and falling back
    to a rebuild.
    """


class SnapshotWriteError(SnapshotError):
    """Raised when a snapshot write fails before any bytes land.

    The injected ``disk.write.error`` site surfaces here: the write
    syscall itself errors out, nothing reaches the platter, and the
    in-progress generation directory is garbage the next recovery scan
    will skip.
    """


class PowerCutError(SnapshotError):
    """Raised when a simulated power cut interrupts a snapshot write.

    Models the machine dying mid-write: bytes not covered by a
    successful fsync are lost, renames not sealed by a directory fsync
    are undone.  Everything after the crash point — including the crash
    simulator itself — refuses further I/O on the dead "volume".
    """


class SnapshotCorruptError(SnapshotError):
    """Raised when a snapshot part fails validation (CRC, size, framing).

    Detection, not injection: every part carries a CRC32C trailer and a
    length-bearing header, so torn writes and truncation surface here
    instead of feeding garbage to the unpickler.  The recovery scan
    treats this as "reject the generation and fall back".
    """


class SnapshotVersionError(SnapshotError):
    """Raised when a snapshot's magic, format version or config digest
    does not match what this build reads.

    A version-skewed snapshot is structurally intact but semantically
    foreign; loading it would unpickle garbage (or worse, silently
    rank with stale config), so it fails loudly instead.
    """


class NoValidSnapshotError(SnapshotError):
    """Raised when the recovery scan finds no fully-intact generation.

    Every generation under the store root was rejected (corrupt,
    truncated, version-skewed, or missing its manifest); the caller must
    rebuild from source rather than serve partial state.
    """


class BTreeError(StorageError):
    """Raised on B+-tree invariant violations (bad fanout, key order)."""


class IndexError_(XRankError):
    """Raised when an index is built or queried inconsistently.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError`` while keeping the obvious name.
    """


class IndexNotBuiltError(IndexError_):
    """Raised when querying an index before :meth:`build` has been called."""


class DocumentNotFoundError(IndexError_):
    """Raised when deleting or fetching a document id that is not indexed."""


class QueryError(XRankError):
    """Raised for malformed queries (empty keyword list, bad parameters)."""


class ConvergenceError(XRankError):
    """Raised when an iterative rank computation fails to converge."""


class BuildError(XRankError):
    """Raised when the parallel build pipeline (repro.build) fails.

    Covers worker-process crashes (the pool is torn down and the partial
    state discarded rather than left hanging), per-document parse failures
    under ``on_parse_error="raise"``, and shard results that fail the
    deterministic-merge verification.
    """


class ServiceError(XRankError):
    """Base class for serving-layer failures (repro.service)."""


class LockUsageError(ServiceError):
    """Raised on lock misuse that would otherwise deadlock.

    The serving layer's :class:`~repro.service.concurrency.ReadWriteLock`
    is not reentrant: a thread nesting ``acquire_read()`` inside its own
    read section deadlocks the moment a writer queues between the two
    acquisitions, and a read->write upgrade always deadlocks.  Both are
    programming errors, so they raise immediately instead of hanging.
    """


class ServiceOverloadedError(ServiceError):
    """Raised when the admission controller's request queue is full.

    The HTTP server maps this to ``503 Service Unavailable``; callers
    should back off and retry.
    """


class ServiceHTTPError(ServiceError):
    """Raised by the service client on a non-2xx HTTP response.

    Carries the status code and the decoded JSON error payload so load
    generators can distinguish overload (503) from bad requests (400).
    """

    def __init__(self, status: int, payload: object = None):
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload}")


class RetryBudgetExhaustedError(ServiceError):
    """Raised when the service client's error budget runs out.

    The client retries transient failures with exponential backoff, but
    only while its per-client error budget lasts; once spent, failures
    surface immediately so a broken backend degrades fast instead of
    multiplying latency across every caller.
    """


#: Alias for the package-level error base, so callers hardened against
#: "any typed repro failure" can write ``except ReproError`` regardless of
#: which historical name they learned first.
ReproError = XRankError


class ClusterError(ServiceError):
    """Base class for distributed-serving failures (repro.cluster)."""


class ShardUnavailableError(ClusterError):
    """Raised when every replica of a shard group is unreachable.

    The coordinator normally *degrades* instead — returning partial
    results flagged with the missing shard ids — so this surfaces only
    when a caller demanded complete results (``allow_partial=False``).
    """


class StatsExchangeError(ClusterError):
    """Raised when the global-statistics exchange cannot cover a shard.

    Per-shard scores are only comparable because every worker ranks with
    ElemRanks computed on the *full* collection graph; a worker asked to
    build without covering statistics must fail loudly rather than fall
    back to shard-local link analysis and silently skew the global
    ordering.
    """
