"""Unit tests for tokenization and the Zipf vocabulary model."""

import random

from hypothesis import given, strategies as st

from repro.text.tokenize import (
    STOPWORDS,
    PositionCounter,
    remove_stopwords,
    tokenize_query,
    words,
)
from repro.text.vocabulary import ZipfVocabulary, synthetic_words


class TestWords:
    def test_basic_tokenization(self):
        assert words("Hello, World! 123") == ["hello", "world", "123"]

    def test_apostrophes_kept_inside_words(self):
        assert words("don't stop") == ["don't", "stop"]

    def test_empty(self):
        assert words("") == []
        assert words("   ...   ") == []

    def test_lowercasing(self):
        assert words("XQL XQuery") == ["xql", "xquery"]

    @given(st.text())
    def test_never_raises_and_always_lowercase(self, text):
        for token in words(text):
            assert token == token.lower()
            assert token


class TestQueryTokenization:
    def test_dedup_preserves_order(self):
        assert tokenize_query("xml search xml") == ["xml", "search"]

    def test_stopwords_kept_by_default(self):
        assert tokenize_query("the xml") == ["the", "xml"]

    def test_stopwords_removed_on_request(self):
        assert tokenize_query("the xml", drop_stopwords=True) == ["xml"]

    def test_remove_stopwords(self):
        assert remove_stopwords(["the", "author", "of"]) == ["author"]
        assert "author" not in STOPWORDS


class TestPositionCounter:
    def test_take_and_assign(self):
        counter = PositionCounter()
        assert counter.take(3) == 0
        assert counter.position == 3
        pairs = counter.assign(["a", "b"])
        assert pairs == [("a", 3), ("b", 4)]
        assert counter.position == 5

    def test_start_offset(self):
        counter = PositionCounter(start=10)
        assert counter.take() == 10


class TestZipfVocabulary:
    def test_synthetic_words_distinct(self):
        vocab_words = synthetic_words(500)
        assert len(set(vocab_words)) == 500

    def test_sampling_deterministic(self):
        vocab = ZipfVocabulary(size=100)
        a = vocab.sample_many(random.Random(1), 50)
        b = vocab.sample_many(random.Random(1), 50)
        assert a == b

    def test_frequency_skew(self):
        vocab = ZipfVocabulary(size=200, exponent=1.2)
        rng = random.Random(3)
        sample = vocab.sample_many(rng, 5000)
        top_word = vocab.words[0]
        rare_word = vocab.words[-1]
        assert sample.count(top_word) > sample.count(rare_word)
        assert sample.count(top_word) > 100

    def test_expected_frequency_monotone(self):
        vocab = ZipfVocabulary(size=50)
        freqs = [vocab.expected_frequency(w) for w in vocab.words]
        assert all(a >= b for a, b in zip(freqs, freqs[1:]))
        assert abs(sum(freqs) - 1.0) < 1e-9

    def test_rank_of_unknown(self):
        vocab = ZipfVocabulary(size=10)
        assert vocab.rank_of("definitely-not-a-word") == -1
        assert vocab.expected_frequency("definitely-not-a-word") == 0.0

    def test_custom_words(self):
        vocab = ZipfVocabulary(words=["x", "y", "z"])
        assert vocab.size == 3
        assert vocab.sample(random.Random(0)) in {"x", "y", "z"}
