"""Posting records: the entries of every inverted-list flavour.

A posting ties a keyword occurrence set to one element (paper Figure 4):
the element's Dewey ID, its ElemRank, and ``posList`` — the sorted global
word positions at which the keyword occurs.  The Dewey-family indexes (DIL,
RDIL, HDIL) store postings only for elements that *directly* contain the
keyword; the naive baselines additionally store a posting for every
ancestor, with the descendants' positions merged in — precisely the
replication that inflates their space in Table 1.

The binary layout is ``dewey || float32 rank || delta-varint posList``,
measured identically across all index flavours so the Table 1 comparison is
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..storage.records import RecordReader, RecordWriter
from ..xmlmodel.dewey import DeweyId
from ..xmlmodel.graph import CollectionGraph


@dataclass(frozen=True)
class Posting:
    """One inverted-list entry."""

    dewey: DeweyId
    elemrank: float
    positions: Tuple[int, ...]

    def encode(self) -> bytes:
        """Serialize as dewey + float32 rank + delta posList."""
        writer = RecordWriter()
        writer.dewey(self.dewey)
        writer.float32(self.elemrank)
        writer.uint_list(list(self.positions))
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Posting":
        reader = RecordReader(data)
        dewey = reader.dewey()
        elemrank = reader.float32()
        positions = tuple(reader.uint_list())
        return cls(dewey, elemrank, positions)

    @classmethod
    def decode_payload(cls, dewey: DeweyId, payload: bytes) -> "Posting":
        """Decode a posting whose Dewey ID is stored separately (B+-trees)."""
        reader = RecordReader(payload)
        elemrank = reader.float32()
        positions = tuple(reader.uint_list())
        return cls(dewey, elemrank, positions)

    def encode_payload(self) -> bytes:
        """Encode rank + posList only (the Dewey ID is the B+-tree key)."""
        writer = RecordWriter()
        writer.float32(self.elemrank)
        writer.uint_list(list(self.positions))
        return writer.getvalue()


#: keyword -> postings sorted by Dewey ID.
PostingMap = Dict[str, List[Posting]]

#: keyword -> (dewey, positions) pairs: a posting skeleton before scores
#: are attached.  This is the unit the parallel build pipeline ships
#: between processes — it depends only on one document's content, never on
#: the global link graph, which is what makes shard outputs order
#: independent and their merge associative.
RawPostingMap = Dict[str, List[Tuple[DeweyId, Tuple[int, ...]]]]


def extract_document_raw_postings(document) -> RawPostingMap:
    """Per-keyword (dewey, positions) skeletons for *one* document.

    Pre-order traversal visits elements in Dewey order, so each keyword's
    list comes out sorted by ID with no extra sort; keyword insertion order
    is first-occurrence order within the document.  Pure per-document
    computation: safe to run in any worker process, in any order.
    """
    raw: RawPostingMap = {}
    for element in document.iter_elements():
        by_word: Dict[str, List[int]] = {}
        for word, position in element.direct_words():
            by_word.setdefault(word, []).append(position)
        if not by_word:
            continue
        for word, positions in by_word.items():
            positions.sort()
            raw.setdefault(word, []).append((element.dewey, tuple(positions)))
    return raw


def merge_raw_postings(
    per_document: List[Tuple[int, RawPostingMap]]
) -> RawPostingMap:
    """Fold per-document skeletons into one map, in ascending doc-id order.

    Concatenation in ascending doc-id order reproduces exactly what a
    single pass over the whole collection would produce (Dewey IDs of
    different documents never interleave), so the merge is associative:
    any shard partition folds to the same result.
    """
    merged: RawPostingMap = {}
    for _doc_id, raw in sorted(per_document, key=lambda pair: pair[0]):
        for word, entries in raw.items():
            merged.setdefault(word, []).extend(entries)
    return merged


def attach_scores(
    raw: RawPostingMap,
    elemranks: Dict[DeweyId, float],
    score_overrides=None,
) -> PostingMap:
    """Turn posting skeletons into scored postings.

    Scores need the *global* link graph (ElemRank) or corpus statistics
    (tf-idf), so this runs once after the merge — never inside a worker.
    ``score_overrides`` optionally maps ``(dewey components, keyword)`` to a
    per-keyword score (e.g. tf-idf weights); where present it replaces the
    element's ElemRank in the posting — the hook Section 4 describes for
    "other ways of ranking XML elements".
    """
    postings: PostingMap = {}
    for word, entries in raw.items():
        scored: List[Posting] = []
        for dewey, positions in entries:
            score = elemranks.get(dewey, 0.0)
            if score_overrides is not None:
                score = score_overrides.get((dewey.components, word), score)
            scored.append(Posting(dewey, score, positions))
        postings[word] = scored
    return postings


def extract_direct_postings(
    graph: CollectionGraph,
    elemranks: Dict[DeweyId, float],
    score_overrides=None,
) -> PostingMap:
    """Build per-keyword postings for elements that *directly* contain them.

    The sequential path through the same two phases the parallel build
    uses: per-document skeleton extraction (in ascending doc-id order, so
    each keyword's posting list comes out Dewey-sorted with no extra sort)
    followed by score attachment.  Keeping one code path is what lets
    ``build(workers=k)`` promise byte-identical output for every ``k``.
    """
    per_document = [
        (document.doc_id, extract_document_raw_postings(document))
        for document in graph.iter_documents()
    ]
    return attach_scores(
        merge_raw_postings(per_document), elemranks, score_overrides
    )


def expand_to_naive_postings(
    direct: PostingMap, elemranks: Dict[DeweyId, float]
) -> PostingMap:
    """Replicate every posting onto all ancestors (the naive index of 4.1).

    For each keyword, every element that directly or indirectly contains it
    receives a posting whose posList merges all descendant occurrences —
    this is the redundancy the Dewey encoding eliminates.
    """
    naive: PostingMap = {}
    for word, posting_list in direct.items():
        merged: Dict[DeweyId, List[int]] = {}
        for posting in posting_list:
            merged.setdefault(posting.dewey, []).extend(posting.positions)
            for ancestor in posting.dewey.ancestors():
                merged.setdefault(ancestor, []).extend(posting.positions)
        entries = []
        for dewey in sorted(merged):
            positions = tuple(sorted(merged[dewey]))
            entries.append(Posting(dewey, elemranks.get(dewey, 0.0), positions))
        naive[word] = entries
    return naive


def rank_order(postings: List[Posting]) -> List[Posting]:
    """Order postings by descending ElemRank, Dewey ID as the tiebreak."""
    return sorted(postings, key=lambda p: (-p.elemrank, p.dewey.components))


def iter_decoded(records: Iterator[bytes]) -> Iterator[Posting]:
    """Decode a raw record stream into postings."""
    for record in records:
        yield Posting.decode(record)
