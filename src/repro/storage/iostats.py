"""I/O accounting and the disk cost model.

The paper's performance results (Figures 10 and 11) are driven by the I/O
pattern of each algorithm: DIL performs *sequential* scans of whole inverted
lists, RDIL performs few-but-*random* B+-tree probes, and the naive variants
scan longer lists.  Our reproduction therefore measures queries primarily in
simulated I/O cost, charging every buffer-pool miss a transfer cost and every
non-sequential miss an additional seek cost.  Wall-clock time is reported by
pytest-benchmark as well, but the cost model is the deterministic,
machine-independent measure that reproduces the paper's *shapes*.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import StorageParams


@dataclass
class IOStats:
    """Mutable counters for one simulated disk."""

    page_reads: int = 0          # misses that touched the "disk"
    sequential_reads: int = 0    # subset of page_reads at last_pid + 1
    random_reads: int = 0        # subset of page_reads elsewhere
    page_writes: int = 0
    cache_hits: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.page_reads = 0
        self.sequential_reads = 0
        self.random_reads = 0
        self.page_writes = 0
        self.cache_hits = 0

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        return IOStats(
            page_reads=self.page_reads,
            sequential_reads=self.sequential_reads,
            random_reads=self.random_reads,
            page_writes=self.page_writes,
            cache_hits=self.cache_hits,
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counter-wise difference ``self - earlier``."""
        return IOStats(
            page_reads=self.page_reads - earlier.page_reads,
            sequential_reads=self.sequential_reads - earlier.sequential_reads,
            random_reads=self.random_reads - earlier.random_reads,
            page_writes=self.page_writes - earlier.page_writes,
            cache_hits=self.cache_hits - earlier.cache_hits,
        )

    def cost_ms(self, params: StorageParams) -> float:
        """Simulated elapsed milliseconds under the given cost model."""
        return (
            self.page_reads * params.transfer_cost_ms
            + self.random_reads * params.seek_cost_ms
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            page_reads=self.page_reads + other.page_reads,
            sequential_reads=self.sequential_reads + other.sequential_reads,
            random_reads=self.random_reads + other.random_reads,
            page_writes=self.page_writes + other.page_writes,
            cache_hits=self.cache_hits + other.cache_hits,
        )
