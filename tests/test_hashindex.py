"""Unit tests for the static disk-resident hash index."""

import random

import pytest

from repro.config import StorageParams
from repro.errors import StorageError
from repro.storage.disk import SimulatedDisk
from repro.storage.hashindex import HashIndex
from repro.xmlmodel.dewey import DeweyId


def make_disk(page_size=256, pool=16):
    return SimulatedDisk(StorageParams(page_size=page_size, buffer_pool_pages=pool))


class TestBuildAndLookup:
    def test_roundtrip(self):
        disk = make_disk()
        entries = [
            (DeweyId((i,)), f"payload-{i}".encode()) for i in range(500)
        ]
        index = HashIndex.build(disk, entries)
        assert index.num_entries == 500
        for key, payload in random.Random(0).sample(entries, 50):
            assert index.lookup(key) == payload

    def test_missing_key(self):
        disk = make_disk()
        index = HashIndex.build(disk, [(DeweyId((1,)), b"x")])
        assert index.lookup(DeweyId((2,))) is None
        assert DeweyId((1,)) in index
        assert DeweyId((9,)) not in index

    def test_multicomponent_keys(self):
        disk = make_disk()
        keys = [DeweyId((1, i, i * 2)) for i in range(100)]
        index = HashIndex.build(disk, [(k, str(k).encode()) for k in keys])
        for key in keys:
            assert index.lookup(key) == str(key).encode()

    def test_duplicate_keys_rejected(self):
        disk = make_disk()
        entries = [(DeweyId((1,)), b"a"), (DeweyId((1,)), b"b")]
        with pytest.raises(StorageError):
            HashIndex.build(disk, entries)

    def test_empty_index(self):
        disk = make_disk()
        index = HashIndex.build(disk, [])
        assert index.lookup(DeweyId((1,))) is None
        assert index.byte_size == 0

    def test_oversized_entry_rejected(self):
        disk = make_disk(page_size=64)
        with pytest.raises(StorageError):
            HashIndex.build(disk, [(DeweyId((1,)), b"x" * 100)])

    def test_bad_fill_factor(self):
        disk = make_disk()
        with pytest.raises(StorageError):
            HashIndex.build(disk, [], fill_factor=0.0)


class TestIOBehavior:
    def test_probe_charges_random_read(self):
        disk = make_disk(pool=4)
        entries = [(DeweyId((i,)), b"p") for i in range(300)]
        index = HashIndex.build(disk, entries)
        disk.reset_stats()
        disk.drop_cache()
        index.lookup(DeweyId((123,)))
        assert disk.stats.random_reads >= 1

    def test_byte_size_positive(self):
        disk = make_disk()
        index = HashIndex.build(disk, [(DeweyId((i,)), b"pp") for i in range(50)])
        assert index.byte_size > 0
