"""Shared fixtures and the brute-force reference implementation.

The reference implementation (:func:`reference_results`) computes the paper's
Section 2.2 result semantics and Section 2.3.2 ranking directly from the
document trees — deliberately simple, quadratic code that is easy to audit.
The index/query tests compare every evaluator against it on handcrafted and
randomized corpora.
"""

from __future__ import annotations

import random
import struct
from typing import Dict, List, Optional, Sequence, Set, Tuple

import pytest

from repro.config import RankingParams
from repro.ranking.proximity import proximity
from repro.xmlmodel.dewey import DeweyId
from repro.xmlmodel.graph import CollectionGraph
from repro.xmlmodel.nodes import Document, Element
from repro.xmlmodel.parser import parse_xml


def float32(value: float) -> float:
    """Round to float32 exactly as posting records store ElemRanks."""
    return struct.unpack("<f", struct.pack("<f", value))[0]


# ---------------------------------------------------------------------------
# Reference semantics (Section 2.2) and ranking (Section 2.3.2)
# ---------------------------------------------------------------------------

def subtree_words(element: Element) -> Set[str]:
    return {word for word, _ in element.all_words()}


def compute_r0(graph: CollectionGraph, keywords: Sequence[str]) -> Set[Tuple[int, ...]]:
    """R0: elements whose subtree contains every query keyword."""
    r0: Set[Tuple[int, ...]] = set()
    for document in graph.iter_documents():
        for element in document.iter_elements():
            words = subtree_words(element)
            if all(k in words for k in keywords):
                r0.add(element.dewey.components)
    return r0


def relevant_occurrences(
    element: Element,
    keyword: str,
    r0: Set[Tuple[int, ...]],
) -> List[Tuple[int, int]]:
    """(depth difference, position) of each relevant occurrence of keyword.

    An occurrence at descendant-or-self ``u`` is relevant for result
    candidate ``v`` unless some element strictly below ``v`` on the path to
    ``u`` (inclusive) is in R0 — those occurrences are "owned" by a more
    specific result.
    """
    out: List[Tuple[int, int]] = []

    def walk(node: Element, depth: int) -> None:
        if depth > 0 and node.dewey.components in r0:
            return
        for word, position in node.direct_words():
            if word == keyword:
                out.append((depth, position))
        for child in node.child_elements():
            walk(child, depth + 1)

    walk(element, 0)
    return out


def reference_results(
    graph: CollectionGraph,
    keywords: Sequence[str],
    elemranks: Dict[DeweyId, float],
    params: Optional[RankingParams] = None,
    deleted_docs: Optional[Set[int]] = None,
) -> Dict[Tuple[int, ...], float]:
    """All Section 2.2 results with their Section 2.3.2 overall ranks."""
    params = params or RankingParams()
    deleted = deleted_docs or set()
    live_docs = [
        d for d in graph.iter_documents() if d.doc_id not in deleted
    ]
    # R0 over live documents only.
    r0: Set[Tuple[int, ...]] = set()
    for document in live_docs:
        for element in document.iter_elements():
            words = subtree_words(element)
            if all(k in words for k in keywords):
                r0.add(element.dewey.components)

    results: Dict[Tuple[int, ...], float] = {}
    for document in live_docs:
        for element in document.iter_elements():
            per_keyword = [
                relevant_occurrences(element, k, r0) for k in keywords
            ]
            if not all(per_keyword):
                continue
            keyword_ranks: List[float] = []
            position_lists: List[List[int]] = []
            for occurrences in per_keyword:
                contributions = [
                    float32(elemranks[_element_at(element, depth, position, graph)])
                    * params.decay**depth
                    for depth, position in occurrences
                ]
                if params.aggregation == "sum":
                    keyword_ranks.append(sum(contributions))
                else:
                    keyword_ranks.append(max(contributions))
                position_lists.append(sorted(p for _, p in occurrences))
            rank = sum(keyword_ranks)
            if params.use_proximity:
                rank *= proximity(position_lists)
            results[element.dewey.components] = rank
    return results


def _element_at(
    root: Element, depth: int, position: int, graph: CollectionGraph
) -> DeweyId:
    """Dewey ID of the descendant element at ``depth`` holding ``position``."""
    if depth == 0:
        return root.dewey
    for child in root.child_elements():
        if any(p == position for _, p in child.all_words()):
            return _element_at(child, depth - 1, position, graph)
    raise AssertionError("occurrence position not found on the expected path")


# ---------------------------------------------------------------------------
# Random corpus generation for property-style comparisons
# ---------------------------------------------------------------------------

VOCAB = ["alpha", "beta", "gamma", "delta", "epsilon"]
TAGS = ["a", "b", "c", "d"]


def random_xml(rng: random.Random, max_depth: int = 4, breadth: int = 3) -> str:
    """A random small XML document over a five-word vocabulary."""

    def element(depth: int) -> str:
        tag = rng.choice(TAGS)
        parts: List[str] = []
        for _ in range(rng.randint(0, breadth)):
            if depth < max_depth and rng.random() < 0.5:
                parts.append(element(depth + 1))
            else:
                words = " ".join(
                    rng.choice(VOCAB) for _ in range(rng.randint(1, 4))
                )
                parts.append(words)
        return f"<{tag}>{''.join(f' {p} ' for p in parts)}</{tag}>"

    return element(0)


def random_graph(
    rng: random.Random, num_docs: int = 3, max_depth: int = 4
) -> CollectionGraph:
    graph = CollectionGraph()
    for doc_id in range(num_docs):
        source = random_xml(rng, max_depth=max_depth)
        graph.add_document(parse_xml(source, doc_id=doc_id, uri=f"doc{doc_id}"))
    graph.finalize()
    return graph


# ---------------------------------------------------------------------------
# Common fixtures
# ---------------------------------------------------------------------------

FIGURE1_XML = """
<workshop date="28 July 2000">
  <title>XML and IR A SIGIR 2000 Workshop</title>
  <editors>David Carmel Yoelle Maarek Aya Soffer</editors>
  <proceedings>
    <paper id="1">
      <title>XQL and Proximal Nodes</title>
      <author>Ricardo Baeza Yates</author>
      <author>Gonzalo Navarro</author>
      <abstract>We consider the recently proposed language XQL</abstract>
      <body>
        <section name="Introduction">Searching on structured text is more important</section>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">At first sight the XQL query language looks</subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
        <cite xlink="/paper/xmlql/">A Query Language for XML</cite>
      </body>
    </paper>
    <paper id="2">
      <title>Querying XML in Xyleme</title>
    </paper>
  </proceedings>
</workshop>
"""


@pytest.fixture(scope="session")
def figure1_document() -> Document:
    return parse_xml(FIGURE1_XML, doc_id=5)


@pytest.fixture()
def figure1_graph(figure1_document) -> CollectionGraph:
    graph = CollectionGraph()
    graph.add_document(figure1_document)
    graph.finalize()
    return graph


@pytest.fixture(scope="session")
def small_corpus_graph() -> CollectionGraph:
    """A deterministic 6-document corpus with citations, reused broadly."""
    graph = CollectionGraph()
    rng = random.Random(42)
    for doc_id in range(6):
        cites = (
            f'<cite xlink="doc{rng.randrange(doc_id)}"/>' if doc_id else ""
        )
        body = random_xml(rng, max_depth=3)
        source = (
            f'<paper id="p{doc_id}"><title>paper {rng.choice(VOCAB)} '
            f"{rng.choice(VOCAB)}</title>{body}{cites}</paper>"
        )
        graph.add_document(parse_xml(source, doc_id=doc_id, uri=f"doc{doc_id}"))
    graph.finalize()
    return graph
