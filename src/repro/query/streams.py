"""Decoded posting streams over on-disk inverted lists.

The merge algorithms consume postings through a peek/next interface; this
module wraps the storage layer's raw-byte cursors with decoding, tombstone
filtering (document-granularity deletes, Section 4.5), and an empty-stream
stand-in for keywords that are missing from the index (a conjunctive query
with an unindexed keyword simply has an exhausted stream).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Set

from ..errors import QueryError
from ..index.postings import Posting
from ..obs.profile import active_profile
from ..storage.listfile import ListCursor


class PostingStream:
    """Peekable stream of :class:`Posting` values."""

    def __init__(
        self,
        source: Optional[Iterable],  # bytes records or decoded Postings
        deleted_docs: Optional[Set[int]] = None,
    ):
        self._iterator: Optional[Iterator] = (
            iter(source) if source is not None else None
        )
        self._deleted = deleted_docs or set()
        self._head: Optional[Posting] = None
        self._eof = self._iterator is None
        # The active profile is captured once at construction (streams
        # are built inside the profiled query) so the per-posting cost
        # of profiling-off is a single None check.
        self._profile = active_profile()
        self._advance()

    @classmethod
    def from_cursor(
        cls, cursor: Optional[ListCursor], deleted_docs: Optional[Set[int]] = None
    ) -> "PostingStream":
        if cursor is None:
            return cls(None, deleted_docs)
        return cls(_cursor_records(cursor), deleted_docs)

    @classmethod
    def from_postings(
        cls,
        postings: Sequence[Posting],
        deleted_docs: Optional[Set[int]] = None,
    ) -> "PostingStream":
        return cls((p.encode() for p in postings), deleted_docs)

    @classmethod
    def from_decoded(
        cls,
        postings: Sequence[Posting],
        deleted_docs: Optional[Set[int]] = None,
    ) -> "PostingStream":
        """Stream over already-decoded postings (no codec round trip).

        Used by the serving layer's posting-list cache: the list is decoded
        once, then every later query iterates the shared ``Posting`` objects
        directly.  Tombstone filtering still happens per stream, so deletes
        that post-date the cached decode are honoured.
        """
        return cls(postings, deleted_docs)

    def _advance(self) -> None:
        if self._iterator is None:
            self._head = None
            return
        profile = self._profile
        for record in self._iterator:
            if isinstance(record, Posting):
                posting = record
                if profile is not None:
                    profile.postings_scanned += 1
            else:
                posting = Posting.decode(record)
                if profile is not None:
                    profile.postings_scanned += 1
                    profile.postings_decoded += 1
            if posting.dewey.doc_id in self._deleted:
                continue
            self._head = posting
            return
        self._head = None
        self._eof = True

    @property
    def eof(self) -> bool:
        return self._eof or self._head is None

    def peek(self) -> Posting:
        """Head posting without consuming it."""
        if self._head is None:
            raise QueryError("peek past end of posting stream")
        return self._head

    def next(self) -> Posting:
        """Consume and return the head posting."""
        posting = self.peek()
        self._advance()
        return posting


def _cursor_records(cursor: ListCursor) -> Iterator[bytes]:
    while not cursor.eof:
        yield cursor.next()


def smallest_head_index(
    streams: List[PostingStream], profile=None
) -> Optional[int]:
    """Index of the live stream whose head has the smallest Dewey ID.

    ``profile`` is the caller's already-captured
    :class:`~repro.obs.profile.QueryProfile` (or None): the merge loop
    calls this once per output posting, so the thread-local lookup is
    hoisted to the caller rather than paid here.
    """
    best: Optional[int] = None
    comparisons = 0
    for i, stream in enumerate(streams):
        if stream.eof:
            continue
        if best is None:
            best = i
            continue
        comparisons += 1
        if stream.peek().dewey < streams[best].peek().dewey:
            best = i
    if profile is not None:
        profile.dewey_comparisons += comparisons
    return best
