"""The in-process query service: engine + locks + caches + admission.

:class:`XRankService` is the composition point of the serving layer.  It
wraps one :class:`~repro.engine.XRankEngine` and provides exactly the
operations the HTTP server (and the load benchmark, which skips HTTP)
needs:

* ``search()`` — admission-controlled, read-locked, result-cached,
  deadline-bounded ranked search returning a :class:`SearchResponse`;
  storage faults (:class:`~repro.errors.FaultError`) are retried once and
  then routed through the per-kind circuit breaker to a fallback index
  (RDIL/HDIL → DIL), producing a *degraded-with-flag* answer rather than
  a silent wrong one — and a typed error when even the fallback fails;
* ``add_xml()`` — write-locked corpus growth, incremental when the
  engine has a ``dil-incremental`` index built, full rebuild otherwise,
  followed by generation-based cache invalidation;
* ``delete()`` / ``stats()`` / ``healthz()`` — the remaining surface.

Lock discipline: queries share a read lock, mutations take the write
lock, and cache generations are only ever bumped while holding the write
lock — so a reader always sees a cache generation consistent with the
index it is querying.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import SLOParams
from ..engine import SearchHit, XRankEngine
from ..errors import FaultError
from ..obs import NOOP_SPAN, Tracer
from ..obs.log import EventLog, bind_trace
from ..obs.profile import ProfileRegistry, QueryProfile, activate
from ..obs.render import to_dict as trace_to_dict
from ..obs.slo import SLOMonitor
from ..obs.trace import TraceContext
from ..storage.iostats import IOStats
from .admission import AdmissionController, Deadline
from .breaker import FALLBACK_KIND, CircuitBreaker
from .cache import MISS, GenerationalLRU
from .concurrency import ReadWriteLock
from .metrics import ServiceMetrics


@dataclass
class SearchResponse:
    """One served query: hits plus serving metadata."""

    hits: List[SearchHit]
    degraded: bool = False      # deadline expired; hits are a partial top-k
    cached: bool = False        # served from the result cache
    latency_ms: float = 0.0
    generation: int = 0         # index generation that produced the hits
    kind: str = "hdil"
    query: str = ""
    m: int = 10
    extras: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view for the HTTP layer."""
        payload: Dict[str, object] = {
            "query": self.query,
            "kind": self.kind,
            "m": self.m,
            "degraded": self.degraded,
            "cached": self.cached,
            "latency_ms": self.latency_ms,
            "generation": self.generation,
            "results": [hit.to_dict() for hit in self.hits],
        }
        payload.update(self.extras)
        return payload


class XRankService:
    """Thread-safe serving facade over one :class:`XRankEngine`."""

    def __init__(
        self,
        engine: XRankEngine,
        kinds: Optional[Sequence[str]] = None,
        default_kind: Optional[str] = None,
        result_cache_size: int = 256,
        list_cache_size: int = 256,
        max_concurrent: int = 8,
        max_queue: int = 64,
        queue_timeout_s: Optional[float] = 10.0,
        default_deadline_ms: Optional[float] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: int = 32,
        tracer: Optional[Tracer] = None,
        snapshot_store=None,
        profile: bool = False,
    ):
        """Args:
            engine: the engine to serve; built here if it has documents
                but no indexes yet.
            kinds: index kinds to (re)build on writes; defaults to the
                engine's currently built kinds, or ``("hdil",)``.
            default_kind: kind served when a request names none.
            result_cache_size: query-result LRU entries (0 disables).
            list_cache_size: decoded posting-list LRU entries (0 disables).
            max_concurrent / max_queue / queue_timeout_s: admission gate.
            default_deadline_ms: per-query budget applied when a request
                does not carry its own (None = unlimited).
            breaker_threshold / breaker_cooldown: consecutive storage
                faults that open a kind's circuit, and the number of
                queries it stays open (query-counted for determinism).
            tracer: per-query trace sampler/buffer; defaults to a
                ``sample="never"`` tracer, so instrumentation costs one
                branch per stage unless sampling is turned on (or a
                remote caller forwards a trace context).
            snapshot_store: optional :class:`~repro.durability.
                SnapshotStore` backing this service; its write/recovery
                counters ride on :meth:`stats` (and therefore
                ``/metrics`` as ``xrank_snapshots_*`` gauges).
            profile: collect per-query cost profiles into a
                :class:`~repro.obs.profile.ProfileRegistry` (served on
                ``/profile``).  Off by default; it can also be enabled
                later by assigning ``service.profiles``.
        """
        self.engine = engine
        self.lock = ReadWriteLock()
        # Structured event log: operational events (admission rejects,
        # breaker transitions, degraded answers, ...) carrying the
        # active query's trace id.  Replaces ad-hoc prints/logging.
        self.events = EventLog()
        self.metrics = ServiceMetrics(
            slo=SLOMonitor(getattr(engine.config, "slo", None) or SLOParams())
        )
        self.tracer = tracer or Tracer()
        self.profiles: Optional[ProfileRegistry] = (
            ProfileRegistry() if profile else None
        )
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold,
            cooldown=breaker_cooldown,
            events=self.events,
        )
        self.admission = AdmissionController(
            max_concurrent=max_concurrent,
            max_queue=max_queue,
            queue_timeout_s=queue_timeout_s,
        )
        self.result_cache = GenerationalLRU(result_cache_size, name="results")
        self.list_cache = GenerationalLRU(list_cache_size, name="posting-lists")
        self.default_deadline_ms = default_deadline_ms
        self.snapshot_store = snapshot_store

        if not engine._indexes and engine.graph.documents:
            engine.build(kinds=tuple(kinds) if kinds else ("hdil",))
        self.kinds = tuple(
            kinds
            if kinds
            else (sorted(engine._indexes) or ["hdil"])
        )
        self.default_kind = default_kind or (
            "hdil" if "hdil" in self.kinds else self.kinds[0]
        )
        self._sync_caches()

    # -- cache wiring ---------------------------------------------------------------

    def _sync_caches(self) -> None:
        """Re-attach the list cache to (possibly rebuilt) evaluators and
        align both caches' generation with the engine.

        Called at construction and after every write, while the write
        lock (or exclusive setup) is held — hence the lock-discipline
        suppressions: the caller owns the exclusive section.
        """
        self.result_cache.bump(self.engine.generation)  # repro: ignore[lock-discipline]
        self.list_cache.bump(self.engine.generation)  # repro: ignore[lock-discipline]
        for evaluator in self.engine._evaluators.values():  # repro: ignore[lock-discipline]
            if hasattr(evaluator, "list_cache"):
                evaluator.list_cache = (
                    self.list_cache if self.list_cache.capacity else None
                )

    # -- serving --------------------------------------------------------------------

    def search(
        self,
        query: str,
        m: int = 10,
        kind: Optional[str] = None,
        mode: str = "and",
        offset: int = 0,
        highlight: bool = False,
        with_context: bool = False,
        deadline_ms: Optional[float] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> SearchResponse:
        """Admission-controlled, cached, deadline-bounded ranked search.

        Storage faults degrade instead of failing where possible: one
        retry on the requested kind, then the circuit breaker's fallback
        kind (flagged ``degraded`` with ``served_kind``/``fault`` extras).
        Fault-degraded answers are never cached.

        A non-None ``trace_ctx`` means an upstream coordinator is tracing
        this query: the request is traced regardless of the local
        sampler, and the finished span tree rides back in
        ``extras["trace"]`` for cross-process grafting.

        Raises:
            ServiceOverloadedError: the admission queue is full.
            QueryError / IndexNotBuiltError: malformed request or the
                requested index kind is not built.
            FaultError: the requested kind and its fallback both failed
                (or there is no fallback) — loud, typed, never silent.
        """
        kind = kind or self.default_kind
        started = time.perf_counter()
        span = self.tracer.begin(
            "service.search",
            ctx=trace_ctx,
            query=query,
            kind=kind,
            m=m,
            mode=mode,
        )
        profile = QueryProfile() if self.profiles is not None else None
        # Bind the trace id for the whole request so every structured
        # event emitted below (admission, breaker, degradation) joins
        # to this query's span tree; unsampled queries bind None.
        with bind_trace(span.trace_id if span.recording else None):
            try:
                with span.child("admission") as admit_span:
                    try:
                        self.admission.acquire()
                    except Exception as exc:
                        admit_span.event("rejected")
                        self.metrics.record_rejection()
                        self.events.emit(
                            "admission_reject",
                            index_kind=kind,
                            error=type(exc).__name__,
                        )
                        raise
                self.metrics.observe_stage(
                    "admission", (time.perf_counter() - started) * 1000.0
                )
                extras: Dict[str, object] = {}
                deadline_expired = False
                try:
                    with self.lock.read():
                        generation = self.engine.generation
                        serve_kind, fault_note = self._route_kind(kind, span)
                        key = (
                            serve_kind, mode, query, m, offset, highlight,
                            with_context,
                        )
                        with span.child("cache.lookup") as cache_span:
                            value = self.result_cache.get(key)
                            cache_span.event(
                                "hit" if value is not MISS else "miss"
                            )
                        if value is not MISS:
                            hits, degraded, cached = value, False, True
                            if profile is not None:
                                profile.result_cache_hits += 1
                        else:
                            cached = False
                            if profile is not None:
                                profile.result_cache_misses += 1
                            budget = (
                                deadline_ms
                                if deadline_ms is not None
                                else self.default_deadline_ms
                            )
                            deadline = Deadline.after_ms(budget)
                            evaluate_started = time.perf_counter()
                            with span.child(
                                "evaluate", kind=serve_kind, mode=mode
                            ) as eval_span:
                                want_io = (
                                    eval_span.recording or profile is not None
                                )
                                io_before = (
                                    self._io_totals_locked().snapshot()
                                    if want_io
                                    else None
                                )
                                churn_before = (
                                    self._cache_churn_locked()
                                    if profile is not None
                                    else 0
                                )
                                cpu_before = (
                                    time.process_time_ns()
                                    if profile is not None
                                    else 0
                                )
                                with activate(profile):
                                    hits, serve_kind, fault_note = (
                                        self._search_hardened(
                                            query,
                                            serve_kind,
                                            fault_note,
                                            deadline,
                                            span=eval_span,
                                            m=m,
                                            mode=mode,
                                            offset=offset,
                                            highlight=highlight,
                                            with_context=with_context,
                                        )
                                    )
                                if io_before is not None:
                                    io_delta = self._io_totals_locked(
                                    ).delta_since(io_before)
                                    if eval_span.recording:
                                        eval_span.attach_io(io_delta)
                                    if profile is not None:
                                        profile.page_reads += (
                                            io_delta.page_reads
                                        )
                                        profile.bytes_read += (
                                            io_delta.page_reads
                                            * self._page_size()
                                        )
                                if profile is not None:
                                    profile.add_cpu(
                                        "evaluate",
                                        time.process_time_ns() - cpu_before,
                                    )
                                    profile.cache_generation_churn += (
                                        self._cache_churn_locked()
                                        - churn_before
                                    )
                                eval_span.set("hits", len(hits))
                            self.metrics.observe_stage(
                                "evaluate",
                                (time.perf_counter() - evaluate_started)
                                * 1000.0,
                            )
                            deadline_expired = deadline.expired
                            degraded = deadline_expired or serve_kind != kind
                            if not degraded:
                                # Partial answers must not be replayed to
                                # clients that did not ask for a tight
                                # deadline, and fault-degraded answers must
                                # not be replayed at all.
                                self.result_cache.put(key, hits)
                        if serve_kind != kind:
                            extras["served_kind"] = serve_kind
                            degraded = True
                        if fault_note is not None:
                            extras["fault"] = fault_note
                        if degraded:
                            reason = (
                                "deadline" if deadline_expired else "fallback"
                            )
                            span.event("degraded", reason=reason)
                            self.events.emit(
                                "degraded_answer",
                                index_kind=kind,
                                served_kind=serve_kind,
                                reason=reason,
                            )
                except Exception as exc:
                    self.metrics.record_error()
                    span.event("error", type=type(exc).__name__)
                    self.events.emit(
                        "query_error",
                        index_kind=kind,
                        error=type(exc).__name__,
                    )
                    raise
                finally:
                    self.admission.release()
            finally:
                span.finish()
                self.tracer.finish(span)
        latency_ms = (time.perf_counter() - started) * 1000.0
        self.metrics.record_search(latency_ms, cached=cached, degraded=degraded)
        self.metrics.observe_stage("total", latency_ms)
        if profile is not None:
            # Aggregate under (evaluator, query shape, result bucket) —
            # the axes the paper's cost analyses slice along.
            self.profiles.record(
                serve_kind,
                f"{mode}:{len(query.split())}kw",
                len(hits),
                profile,
            )
            if span.recording:
                span.set("profile", profile.nonzero())
        if span.recording:
            span.set("cached", cached)
            if trace_ctx is not None:
                # The upstream coordinator stitches this segment into its
                # own trace; ship the finished tree in the payload.
                extras["trace"] = trace_to_dict(span)
        return SearchResponse(
            hits=hits,
            degraded=degraded,
            cached=cached,
            latency_ms=latency_ms,
            generation=generation,
            kind=kind,
            query=query,
            m=m,
            extras=extras,
        )

    def _page_size(self) -> int:
        """The simulated-disk page size (for byte-level I/O attribution)."""
        # Config is frozen at engine construction; reading it needs no lock.
        storage = getattr(self.engine.config, "storage", None)  # repro: ignore[lock-discipline]
        return getattr(storage, "page_size", 4096)

    def _cache_churn_locked(self) -> int:
        """Stale-generation evictions both caches have performed so far.

        Caller holds the read lock.  The delta across one evaluation is
        that query's cache-generation churn — how many stale entries its
        lookups swept out."""
        return (
            self.result_cache.stats()["invalidations"]
            + self.list_cache.stats()["invalidations"]
        )

    def _route_kind(self, kind: str, span=NOOP_SPAN):
        """Pick the serving kind: the breaker may redirect to a fallback.

        Caller holds the read lock.  Returns ``(serve_kind, fault_note)``
        where a non-None note means the response must be flagged degraded.
        """
        if self.breaker.allow(kind):
            return kind, None
        fallback = FALLBACK_KIND.get(kind)
        if fallback is None or fallback not in self.engine._indexes:  # repro: ignore[lock-discipline]
            # Nowhere to go: let the query try the quarantined kind and
            # surface its typed error if the fault persists.
            span.event("breaker_probe", kind=kind)
            return kind, None
        self.metrics.record_fault_fallback()
        span.event("breaker_open", kind=kind, fallback=fallback)
        return fallback, f"circuit open for {kind!r}"

    def _search_hardened(
        self,
        query: str,
        serve_kind: str,
        fault_note,
        deadline,
        span=NOOP_SPAN,
        **options,
    ):
        """One engine search with fault retry + breaker-mediated fallback.

        Caller holds the read lock.  Returns ``(hits, served_kind,
        fault_note)``; raises the second :class:`FaultError` unchanged
        when no healthy fallback exists.
        """
        try:
            hits = self.engine.search(  # repro: ignore[lock-discipline]
                query, kind=serve_kind, deadline=deadline, span=span, **options
            )
        except FaultError as exc:
            self.metrics.record_storage_fault()
            self.breaker.record_failure(serve_kind)
            span.event(
                "storage_fault", kind=serve_kind, error=type(exc).__name__
            )
            fallback = FALLBACK_KIND.get(serve_kind)
            try:
                # Transient faults (injected read errors) often clear on a
                # retry; persistent corruption will fail again immediately.
                span.event("retry", kind=serve_kind)
                hits = self.engine.search(  # repro: ignore[lock-discipline]
                    query, kind=serve_kind, deadline=deadline, span=span,
                    **options,
                )
            except FaultError as retry_exc:
                self.breaker.record_failure(serve_kind)
                if (
                    fallback is None
                    or fallback not in self.engine._indexes  # repro: ignore[lock-discipline]
                ):
                    raise
                self.metrics.record_fault_fallback()
                span.event(
                    "fault_fallback", kind=serve_kind, fallback=fallback
                )
                hits = self.engine.search(  # repro: ignore[lock-discipline]
                    query, kind=fallback, deadline=deadline, span=span,
                    **options,
                )
                return hits, fallback, str(retry_exc)
            self.breaker.record_success(serve_kind)
            return hits, serve_kind, fault_note
        else:
            self.breaker.record_success(serve_kind)
            return hits, serve_kind, fault_note

    # -- mutation -------------------------------------------------------------------

    def add_xml(self, source: str, uri: str = "") -> Dict[str, object]:
        """Add one XML document and make it searchable before returning.

        Uses the engine's incremental index when one is built (cheap
        delta insert); otherwise re-runs the full build over the
        configured kinds.  Either way the caches are invalidated by
        generation bump under the write lock.
        """
        started = time.perf_counter()
        with self.lock.write():
            incremental = "dil-incremental" in self.engine._indexes
            if incremental:
                doc_id = self.engine.add_xml_incremental(source, uri=uri)
            else:
                doc_id = self.engine.add_xml(source, uri=uri)
                self.engine.build(kinds=self.kinds)
            self._sync_caches()
            documents = self.engine.graph.num_documents
            generation = self.engine.generation
        latency_ms = (time.perf_counter() - started) * 1000.0
        self.metrics.record_add(latency_ms)
        return {
            "doc_id": doc_id,
            "documents": documents,
            "incremental": incremental,
            "latency_ms": latency_ms,
            "generation": generation,
        }

    def delete(self, doc_id: int) -> Dict[str, object]:
        """Tombstone one document (write-locked, cache-invalidating)."""
        with self.lock.write():
            self.engine.delete_document(doc_id)
            self._sync_caches()
            documents = self.engine.graph.num_documents
            generation = self.engine.generation
        return {
            "deleted": doc_id,
            "documents": documents,
            "generation": generation,
        }

    def clear_caches(self) -> None:
        """Drop both caches (diagnostics / benchmarking)."""
        self.result_cache.clear()
        self.list_cache.clear()

    # -- introspection ----------------------------------------------------------------

    def io_totals(self) -> IOStats:
        """Summed I/O counters across every built index's simulated disk."""
        with self.lock.read():
            return self._io_totals_locked()

    def _io_totals_locked(self) -> IOStats:
        # Caller holds the (non-reentrant) read lock; see io_totals/stats.
        total = IOStats()
        for index in self.engine._indexes.values():  # repro: ignore[lock-discipline]
            total = total + index.disk.stats
        return total

    def stats(self) -> Dict[str, object]:
        """One JSON-ready dict: serving metrics + caches + engine + I/O."""
        with self.lock.read():
            engine_stats = self.engine.stats()
            io = self._io_totals_locked().as_dict()
            generation = self.engine.generation
        payload = {
            "service": self.metrics.snapshot(queue_depth=self.admission.depth()),
            "tracer": self.tracer.stats(),
            # Top-level key on purpose: promfmt prefixes with "xrank_",
            # so the burn rates scrape as xrank_slo_* gauges.
            "slo": self.metrics.slo_snapshot(),
            "events": self.events.stats(),
            "caches": {
                "results": self.result_cache.stats(),
                "posting_lists": self.list_cache.stats(),
            },
            "lock": self.lock.state(),
            "breaker": self.breaker.state(),
            "io": io,
            "engine": engine_stats,
            "generation": generation,
        }
        if self.snapshot_store is not None:
            # Every numeric leaf becomes an xrank_snapshots_* gauge on
            # /metrics (promfmt walks the payload), so recovery activity
            # is scrapeable without a dedicated endpoint.
            payload["snapshots"] = self.snapshot_store.counters()
        return payload

    def profile_snapshot(self) -> Dict[str, object]:
        """The aggregated per-query cost profiles (``/profile`` payload).

        ``{"enabled": False}`` when profiling is off, so the endpoint
        shape is stable either way."""
        if self.profiles is None:
            return {"enabled": False, "queries": 0, "profiles": []}
        return self.profiles.snapshot()

    def healthz(self) -> Dict[str, object]:
        """Cheap liveness probe (read-locked: counters must be coherent).

        ``degraded`` is true while any kind's circuit is open — load
        balancers can drain a replica that is quarantining indexes.
        ``faults`` surfaces the storage-level detection counters so a
        rotting disk shows up here before queries start failing.
        """
        with self.lock.read():
            io = self._io_totals_locked()
            return {
                "status": "ok" if self.engine._indexes else "empty",
                "degraded": self.breaker.is_open(),
                "documents": self.engine.graph.num_documents,
                "kinds": sorted(self.engine._indexes),
                "generation": self.engine.generation,
                "faults": {
                    "read_errors": io.read_errors,
                    "corrupt_pages": io.corrupt_pages,
                    "retries": io.retries,
                },
            }
