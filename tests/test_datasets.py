"""Tests for the synthetic corpus generators and their planted structure."""

import pytest

from repro.datasets.dblp import generate_dblp
from repro.datasets.textgen import PlantedKeywords, TextGenerator
from repro.datasets.xmark import generate_xmark


def doc_words(document):
    return {w for e in document.iter_elements() for w, _ in e.direct_words()}


class TestTextGenerator:
    def test_deterministic(self):
        a = TextGenerator(seed=1).text_block()
        b = TextGenerator(seed=1).text_block()
        assert a == b

    def test_different_seeds_differ(self):
        assert TextGenerator(seed=1).text_block() != TextGenerator(seed=2).text_block()

    def test_title_word_count(self):
        gen = TextGenerator(seed=3)
        for _ in range(20):
            assert 2 <= len(gen.title(2, 5).split()) <= 5

    def test_names_from_pool(self):
        gen = TextGenerator(seed=4)
        names = {gen.name() for _ in range(50)}
        assert all(len(n.split()) == 2 for n in names)

    def test_correlated_group_injected_together(self):
        plan = PlantedKeywords.default()
        plan.correlated_rate = 1.0
        gen = TextGenerator(seed=5, planted=plan)
        block = gen.text_block()
        for word in plan.correlated_groups[0]:
            assert word in block.split()

    def test_striping_respects_scope(self):
        plan = PlantedKeywords(
            independent_keywords=["u0", "u1"],
            independent_rate=1.0,
            stripes=2,
            cross_rate=0.0,
        )
        gen = TextGenerator(seed=6, planted=plan)
        gen.new_scope()  # scope 1 -> stripe 1 -> only u1
        block = gen.text_block().split()
        assert "u1" in block and "u0" not in block
        gen.new_scope()  # scope 2 -> stripe 0 -> only u0
        block = gen.text_block().split()
        assert "u0" in block and "u1" not in block


class TestDBLP:
    @pytest.fixture(scope="class")
    def corpus(self):
        plan = PlantedKeywords.default()
        plan.correlated_rate = 0.4
        plan.independent_rate = 0.6
        return generate_dblp(num_papers=120, seed=9, planted=plan)

    def test_document_per_paper(self, corpus):
        assert corpus.num_documents == 120

    def test_shallow_depth(self, corpus):
        depths = [e.dewey.depth for e in corpus.graph.elements]
        assert max(depths) <= 5  # "relatively shallow with a depth of about 4"

    def test_interdocument_citations_resolved(self, corpus):
        assert corpus.graph.resolution.xlinks_resolved > 50
        assert len(corpus.graph.hyperlink_edges) > 50

    def test_citation_skew(self, corpus):
        """Preferential attachment: in-degree should be skewed."""
        indeg = {}
        for _, dst in corpus.graph.hyperlink_edges:
            indeg[dst] = indeg.get(dst, 0) + 1
        counts = sorted(indeg.values(), reverse=True)
        assert counts[0] >= 3 * counts[len(counts) // 2]

    def test_correlated_keywords_cooccur(self, corpus):
        plan = corpus.planted
        w0, w1 = plan.correlated_groups[0][:2]
        with_w0 = {d.doc_id for d in corpus.documents if w0 in doc_words(d)}
        with_w1 = {d.doc_id for d in corpus.documents if w1 in doc_words(d)}
        assert with_w0 and with_w0 == with_w1

    def test_independent_keywords_disjoint(self, corpus):
        plan = corpus.planted
        u0, u1 = plan.independent_keywords[:2]
        with_u0 = {d.doc_id for d in corpus.documents if u0 in doc_words(d)}
        with_u1 = {d.doc_id for d in corpus.documents if u1 in doc_words(d)}
        assert with_u0 and with_u1
        overlap = len(with_u0 & with_u1)
        assert overlap <= max(1, len(with_u0) // 10)

    def test_anecdotes_planted(self):
        corpus = generate_dblp(num_papers=60, seed=9, plant_anecdotes=True)
        gray_authors = 0
        gray_titles = 0
        for document in corpus.documents:
            for element in document.iter_elements():
                words = {w for w, _ in element.direct_words()}
                if element.tag == "author" and "gray" in words:
                    gray_authors += 1
                if element.tag == "title" and "gray" in words and "codes" in words:
                    gray_titles += 1
        assert gray_authors >= 3
        assert gray_titles >= 3

    def test_deterministic(self):
        a = generate_dblp(num_papers=30, seed=1)
        b = generate_dblp(num_papers=30, seed=1)
        assert a.num_elements == b.num_elements
        assert len(a.graph.hyperlink_edges) == len(b.graph.hyperlink_edges)


class TestXMark:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_xmark(
            num_items=60, num_people=30, num_auctions=80, seed=10
        )

    def test_single_deep_document(self, corpus):
        assert corpus.num_documents == 1
        depths = [e.dewey.depth for e in corpus.graph.elements]
        assert max(depths) >= 9  # "relatively deep with a depth of 10"

    def test_intradocument_idrefs_resolved(self, corpus):
        resolution = corpus.graph.resolution
        assert resolution.idrefs_resolved > 100
        assert resolution.idrefs_dangling == 0

    def test_schema_skeleton(self, corpus):
        root = corpus.documents[0].root
        assert root.tag == "site"
        top = [e.tag for e in root.child_elements()]
        assert top == [
            "regions", "categories", "people", "open_auctions",
            "closed_auctions",
        ]

    def test_anecdote_item(self):
        corpus = generate_xmark(
            num_items=30, num_auctions=40, seed=2, plant_anecdotes=True
        )
        root = corpus.documents[0].root
        names = [
            e for e in root.iter_elements()
            if e.tag == "name" and "stained" in {w for w, _ in e.direct_words()}
        ]
        assert names
        # Referenced by many auctions.
        item = names[0].parent
        item_id = item.attribute("id")
        refs = [
            e for e in root.iter_elements()
            if e.tag == "itemref" and e.attribute("ref") == item_id
        ]
        assert len(refs) >= 10
