"""The per-shard worker of the parallel build pipeline.

Everything in this module runs inside a worker *process* (it must stay
importable and its task/result types picklable).  A worker receives one
shard of :class:`~repro.build.shard.DocumentSpec`s, parses and tokenizes
each document, extracts that document's posting skeletons, and returns the
parsed documents plus either the in-memory skeletons or — when a spill
directory is configured — the path of the run file it streamed them into
(see :mod:`repro.storage.runfile`).

Workers never see the link graph or ElemRank: scores are a global
computation the parent performs after the merge.  That separation is what
makes shard outputs pure functions of their own documents.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import BuildError, XMLParseError
from ..index.postings import RawPostingMap, extract_document_raw_postings
from ..storage.runfile import RunWriter
from ..xmlmodel.nodes import Document
from .shard import DocumentSpec

#: Fault-injection modes for tests: a worker that dies without cleanup
#: ("crash", exercising the BrokenProcessPool path) or raises ("raise").
FAULT_CRASH = "crash"
FAULT_RAISE = "raise"


@dataclass
class ShardTask:
    """One worker's unit of work: parse + extract a shard of specs."""

    shard_id: int
    specs: List[DocumentSpec]
    spill_dir: Optional[str] = None
    on_parse_error: str = "raise"
    fault: Optional[str] = None


@dataclass
class ShardResult:
    """What a worker sends back to the merge phase."""

    shard_id: int
    documents: List[Document] = field(default_factory=list)
    #: (doc_id, raw postings) per document, ascending doc id — present only
    #: when the shard did not spill.
    raw_postings: List[Tuple[int, RawPostingMap]] = field(default_factory=list)
    #: Run file holding the postings instead, when spilling.
    run_path: Optional[str] = None
    skipped: List[Tuple[str, str]] = field(default_factory=list)
    parse_seconds: float = 0.0
    extract_seconds: float = 0.0
    spilled_bytes: int = 0


def _parse_spec(spec: DocumentSpec) -> Document:
    from ..xmlmodel.html import parse_html
    from ..xmlmodel.parser import parse_xml

    source = spec.source
    if source is None:
        if spec.path is None:
            raise BuildError(
                f"document spec {spec.doc_id} has neither source nor path"
            )
        source = Path(spec.path).read_text(encoding="utf-8", errors="replace")
    if spec.is_html:
        return parse_html(source, doc_id=spec.doc_id, uri=spec.uri)
    return parse_xml(source, doc_id=spec.doc_id, uri=spec.uri)


def process_shard(task: ShardTask) -> ShardResult:
    """Parse, tokenize and extract one shard (worker-process entry point)."""
    if task.fault == FAULT_CRASH:
        # Simulated hard death (OOM-kill / segfault stand-in): no Python
        # teardown, no result — the parent must turn the broken pool into
        # a clean BuildError instead of hanging.
        os._exit(13)
    if task.fault == FAULT_RAISE:
        raise BuildError(f"injected failure in shard {task.shard_id}")

    result = ShardResult(shard_id=task.shard_id)
    writer: Optional[RunWriter] = None
    if task.spill_dir is not None:
        run_path = Path(task.spill_dir) / f"shard-{task.shard_id:04d}.run"
        writer = RunWriter(run_path)
        result.run_path = str(run_path)
    try:
        for spec in task.specs:
            started = time.perf_counter()
            try:
                document = _parse_spec(spec)
            except XMLParseError as exc:
                label = spec.uri or spec.path or f"doc {spec.doc_id}"
                if task.on_parse_error == "skip":
                    result.skipped.append((label, str(exc)))
                    continue
                raise BuildError(
                    f"shard {task.shard_id}: cannot parse {label!r}: {exc}"
                ) from exc
            parsed = time.perf_counter()
            raw = extract_document_raw_postings(document)
            result.extract_seconds += time.perf_counter() - parsed
            result.parse_seconds += parsed - started
            result.documents.append(document)
            if writer is not None:
                writer.append(document.doc_id, raw)
            else:
                result.raw_postings.append((document.doc_id, raw))
    finally:
        if writer is not None:
            writer.close()
            result.spilled_bytes = writer.bytes_written
    return result


# -- extraction-only tasks (documents already parsed in the parent) ---------------

#: Documents inherited by fork()ed workers, keyed by doc id.  The parent
#: sets this immediately before creating a fork-context pool; children see
#: it copy-on-write, so nothing is pickled through the task pipe.
_INHERITED_DOCUMENTS: Optional[Dict[int, Document]] = None


def set_inherited_documents(documents: Optional[Dict[int, Document]]) -> None:
    """Install (or clear) the fork-shared document table."""
    global _INHERITED_DOCUMENTS
    _INHERITED_DOCUMENTS = documents


@dataclass
class ExtractTask:
    """Extraction-only shard: tokenized documents are already in memory.

    ``documents`` is populated only under a spawn-style start method; with
    fork the worker resolves ``doc_ids`` against the inherited table.
    """

    shard_id: int
    doc_ids: List[int]
    documents: Optional[List[Document]] = None
    spill_dir: Optional[str] = None
    fault: Optional[str] = None


def process_extract_shard(task: ExtractTask) -> ShardResult:
    """Extract posting skeletons for already-parsed documents."""
    if task.fault == FAULT_CRASH:
        os._exit(13)
    if task.fault == FAULT_RAISE:
        raise BuildError(f"injected failure in shard {task.shard_id}")
    if task.documents is not None:
        documents = task.documents
    else:
        table = _INHERITED_DOCUMENTS
        if table is None:
            raise BuildError(
                f"shard {task.shard_id}: no documents supplied and no "
                "fork-inherited table present"
            )
        documents = [table[doc_id] for doc_id in task.doc_ids]

    result = ShardResult(shard_id=task.shard_id)
    writer: Optional[RunWriter] = None
    if task.spill_dir is not None:
        run_path = Path(task.spill_dir) / f"shard-{task.shard_id:04d}.run"
        writer = RunWriter(run_path)
        result.run_path = str(run_path)
    try:
        for document in sorted(documents, key=lambda d: d.doc_id):
            started = time.perf_counter()
            raw = extract_document_raw_postings(document)
            result.extract_seconds += time.perf_counter() - started
            if writer is not None:
                writer.append(document.doc_id, raw)
            else:
                result.raw_postings.append((document.doc_id, raw))
    finally:
        if writer is not None:
            writer.close()
            result.spilled_bytes = writer.bytes_written
    return result
