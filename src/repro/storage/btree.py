"""A disk-resident B+-tree keyed on Dewey IDs (paper Sections 4.3-4.4).

The paper rejected commercial B+-trees because their APIs could not express
the *longest-common-prefix* probe RDIL needs, and because two space
optimizations were impossible:

1. storing several B+-trees over short inverted lists on one shared disk
   page (Section 4.3.1) — supported here through :class:`SharedPageWriter`;
2. reusing a Dewey-ordered inverted list as the tree's leaf level so HDIL
   only pays for internal nodes (Section 4.4.1) — supported through
   *external leaves*: the tree is bulk-loaded over existing list pages and
   a decoder callback turns a raw list page back into (key, record) pairs.

Keys are :class:`DeweyId` values compared component-wise (document order).
All node accesses go through the simulated disk, so probes are charged as
random reads — the cost RDIL pays for skipping list entries.

Supported operations: :meth:`ceiling` (smallest entry >= key),
:meth:`predecessor` (largest entry < key), :meth:`longest_common_prefix`
(the RDIL probe: deepest ancestor of ``key`` with a descendant in the tree),
:meth:`range_scan` and :meth:`scan_subtree`.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterator, List, Optional, Tuple

from ..errors import BTreeError
from ..xmlmodel.dewey import DeweyId
from .disk import SimulatedDisk
from .records import RecordReader, RecordWriter

#: Decodes one external leaf page into sorted (key, record) pairs.
LeafDecoder = Callable[[bytes], List[Tuple[DeweyId, bytes]]]

_LEAF = 0
_INTERNAL = 1
_NO_PAGE = 0  # page-id + 1 encoding, 0 means "none"


def _encode_leaf(
    entries: List[Tuple[DeweyId, bytes]], prev_page: int, next_page: int
) -> bytes:
    writer = RecordWriter()
    writer.uint(_LEAF)
    writer.uint(prev_page + 1)
    writer.uint(next_page + 1)
    writer.uint(len(entries))
    for key, payload in entries:
        writer.dewey(key)
        writer.bytes_field(payload)
    return writer.getvalue()


def _decode_leaf(page: bytes) -> Tuple[int, int, List[Tuple[DeweyId, bytes]]]:
    reader = RecordReader(page)
    flag = reader.uint()
    if flag != _LEAF:
        raise BTreeError("expected a leaf page")
    prev_page = reader.uint() - 1
    next_page = reader.uint() - 1
    count = reader.uint()
    entries = [(reader.dewey(), reader.bytes_field()) for _ in range(count)]
    return prev_page, next_page, entries


def _encode_internal(entries: List[Tuple[DeweyId, int]]) -> bytes:
    writer = RecordWriter()
    writer.uint(_INTERNAL)
    writer.uint(len(entries))
    for key, child in entries:
        writer.dewey(key)
        writer.uint(child)
    return writer.getvalue()


def _decode_internal(page: bytes) -> List[Tuple[DeweyId, int]]:
    reader = RecordReader(page)
    flag = reader.uint()
    if flag != _INTERNAL:
        raise BTreeError("expected an internal page")
    count = reader.uint()
    return [(reader.dewey(), reader.uint()) for _ in range(count)]


class BTree:
    """Read-only (bulk-loaded) B+-tree over one inverted list."""

    def __init__(
        self,
        disk: SimulatedDisk,
        root_page: int,
        height: int,
        num_entries: int,
        internal_bytes: int,
        leaf_bytes: int,
        leaf_pages: List[int],
        leaf_decoder: Optional[LeafDecoder] = None,
        shared_leaf: bool = False,
    ):
        self.disk = disk
        self.root_page = root_page
        self.height = height  # 1 = root is a leaf
        self.num_entries = num_entries
        self.internal_bytes = internal_bytes
        self.leaf_bytes = leaf_bytes
        self.leaf_pages = leaf_pages
        self.leaf_decoder = leaf_decoder
        self.shared_leaf = shared_leaf

    # -- construction -----------------------------------------------------------

    @classmethod
    def bulk_load(
        cls, disk: SimulatedDisk, entries: List[Tuple[DeweyId, bytes]]
    ) -> "BTree":
        """Build a tree that owns its leaves, from sorted (key, payload) pairs."""
        _check_sorted(entries)
        if not entries:
            root = disk.allocate(_encode_leaf([], -1, -1))
            return cls(disk, root, 1, 0, 0, len(disk.pages[root]), [root])

        page_size = disk.page_size
        # Greedily pack leaves, respecting the page size.
        leaf_groups: List[List[Tuple[DeweyId, bytes]]] = []
        current: List[Tuple[DeweyId, bytes]] = []
        current_size = 16  # header slack
        for key, payload in entries:
            entry_size = key.encoded_size() + len(payload) + 5
            if entry_size + 16 > page_size:
                raise BTreeError(
                    f"entry of {entry_size} bytes cannot fit one page"
                )
            if current and current_size + entry_size > page_size:
                leaf_groups.append(current)
                current = []
                current_size = 16
            current.append((key, payload))
            current_size += entry_size
        if current:
            leaf_groups.append(current)

        # Allocate leaf pages consecutively, then patch sibling pointers.
        leaf_ids = [disk.allocate(b"") for _ in leaf_groups]
        leaf_bytes = 0
        for i, group in enumerate(leaf_groups):
            prev_page = leaf_ids[i - 1] if i > 0 else -1
            next_page = leaf_ids[i + 1] if i + 1 < len(leaf_ids) else -1
            encoded = _encode_leaf(group, prev_page, next_page)
            disk.write(leaf_ids[i], encoded)
            leaf_bytes += len(encoded)

        index = [(group[0][0], page_id) for group, page_id in zip(leaf_groups, leaf_ids)]
        root, height, internal_bytes = _build_internal_levels(disk, index)
        return cls(
            disk,
            root,
            height,
            len(entries),
            internal_bytes,
            leaf_bytes,
            leaf_ids,
        )

    @classmethod
    def build_over_pages(
        cls,
        disk: SimulatedDisk,
        page_index: List[Tuple[DeweyId, int]],
        leaf_decoder: LeafDecoder,
        num_entries: int,
    ) -> "BTree":
        """Build internal levels over *existing* list pages (HDIL mode).

        ``page_index`` maps the smallest key on each list page to its page
        id; pages must be in key order.  Leaf bytes are not counted against
        this tree — the inverted list already pays for them.
        """
        if not page_index:
            raise BTreeError("cannot build a tree over zero pages")
        keys = [key for key, _ in page_index]
        if any(b < a for a, b in zip(keys, keys[1:])):
            raise BTreeError("page index keys must be sorted")
        root, height, internal_bytes = _build_internal_levels(disk, page_index)
        return cls(
            disk,
            root,
            height,
            num_entries,
            internal_bytes,
            leaf_bytes=0,
            leaf_pages=[page_id for _, page_id in page_index],
            leaf_decoder=leaf_decoder,
        )

    # -- leaf access ----------------------------------------------------------------

    def _leaf_entries(self, page_id: int) -> List[Tuple[DeweyId, bytes]]:
        page = self.disk.read(page_id)
        if self.leaf_decoder is not None:
            return self.leaf_decoder(page)
        _, _, entries = _decode_leaf(page)
        return entries

    def _leaf_neighbors(self, page_id: int) -> Tuple[int, int]:
        """(prev, next) page ids, -1 when absent."""
        if self.leaf_decoder is not None:
            # External leaves are consecutive list pages.
            position = self.leaf_pages.index(page_id)
            prev_page = self.leaf_pages[position - 1] if position > 0 else -1
            next_page = (
                self.leaf_pages[position + 1]
                if position + 1 < len(self.leaf_pages)
                else -1
            )
            return prev_page, next_page
        page = self.disk.read(page_id)
        prev_page, next_page, _ = _decode_leaf(page)
        return prev_page, next_page

    def _descend(self, key: DeweyId) -> int:
        """Page id of the leaf that would contain ``key``."""
        page_id = self.root_page
        for _ in range(self.height - 1):
            children = _decode_internal(self.disk.read(page_id))
            keys = [k for k, _ in children]
            # Last child whose separator <= key; first child when below all.
            position = bisect.bisect_right(keys, key) - 1
            if position < 0:
                position = 0
            page_id = children[position][1]
        return page_id

    # -- queries -----------------------------------------------------------------------

    def ceiling(self, key: DeweyId) -> Optional[Tuple[DeweyId, bytes]]:
        """Smallest entry with entry key >= ``key``."""
        page_id = self._descend(key)
        while page_id != -1:
            entries = self._leaf_entries(page_id)
            keys = [k for k, _ in entries]
            position = bisect.bisect_left(keys, key)
            if position < len(entries):
                return entries[position]
            _, page_id = self._leaf_neighbors(page_id)
        return None

    def strictly_greater(self, key: DeweyId) -> Optional[Tuple[DeweyId, bytes]]:
        """Smallest entry with entry key > ``key``."""
        page_id = self._descend(key)
        while page_id != -1:
            entries = self._leaf_entries(page_id)
            keys = [k for k, _ in entries]
            position = bisect.bisect_right(keys, key)
            if position < len(entries):
                return entries[position]
            _, page_id = self._leaf_neighbors(page_id)
        return None

    def predecessor(self, key: DeweyId) -> Optional[Tuple[DeweyId, bytes]]:
        """Largest entry with entry key < ``key``."""
        page_id = self._descend(key)
        while page_id != -1:
            entries = self._leaf_entries(page_id)
            keys = [k for k, _ in entries]
            position = bisect.bisect_left(keys, key)
            if position > 0:
                return entries[position - 1]
            page_id, _ = self._leaf_neighbors(page_id)
        return None

    def longest_common_prefix(self, key: DeweyId) -> int:
        """Length of the longest prefix of ``key`` shared with any tree key.

        This is the paper's Section 4.3.2 probe: the smallest stored ID
        >= ``key`` and its predecessor are the only candidates for the
        longest shared prefix, because the leaves are in Dewey order.
        """
        best = 0
        after = self.ceiling(key)
        if after is not None:
            best = max(best, key.common_prefix_length(after[0]))
        before = self.predecessor(key)
        if before is not None:
            best = max(best, key.common_prefix_length(before[0]))
        return best

    def range_scan(
        self, low: DeweyId, high_exclusive: Optional[DeweyId] = None
    ) -> Iterator[Tuple[DeweyId, bytes]]:
        """Entries with low <= key < high_exclusive, in order."""
        page_id = self._descend(low)
        while page_id != -1:
            entries = self._leaf_entries(page_id)
            for key, payload in entries:
                if key < low:
                    continue
                if high_exclusive is not None and key >= high_exclusive:
                    return
                yield key, payload
            _, page_id = self._leaf_neighbors(page_id)

    def scan_subtree(self, prefix: DeweyId) -> Iterator[Tuple[DeweyId, bytes]]:
        """All entries whose key has ``prefix`` as a (non-strict) prefix."""
        return self.range_scan(prefix, prefix.successor_sibling())

    # -- space accounting -----------------------------------------------------------------

    @property
    def index_bytes(self) -> int:
        """Bytes attributable to this tree (internal nodes; own leaves too)."""
        return self.internal_bytes + self.leaf_bytes


def _check_sorted(entries: List[Tuple[DeweyId, bytes]]) -> None:
    for (a, _), (b, _) in zip(entries, entries[1:]):
        if b < a:
            raise BTreeError("bulk-load input must be sorted by key")
        if a == b:
            raise BTreeError(f"duplicate key {a} in bulk-load input")


def _build_internal_levels(
    disk: SimulatedDisk, index: List[Tuple[DeweyId, int]]
) -> Tuple[int, int, int]:
    """Build internal nodes over (min_key, child_page) pairs.

    Returns (root_page, height, internal_bytes); height counts the leaf
    level, so a tree whose root sits directly on the leaves has height 2 and
    a single-leaf tree has height 1.
    """
    if len(index) == 1:
        return index[0][1], 1, 0

    internal_bytes = 0
    height = 1
    page_size = disk.page_size
    level = index
    while len(level) > 1:
        next_level: List[Tuple[DeweyId, int]] = []
        current: List[Tuple[DeweyId, int]] = []
        current_size = 8
        groups: List[List[Tuple[DeweyId, int]]] = []
        for key, child in level:
            entry_size = key.encoded_size() + 5
            if current and current_size + entry_size > page_size:
                groups.append(current)
                current = []
                current_size = 8
            current.append((key, child))
            current_size += entry_size
        if current:
            groups.append(current)
        for group in groups:
            encoded = _encode_internal(group)
            page_id = disk.allocate(encoded)
            internal_bytes += len(encoded)
            next_level.append((group[0][0], page_id))
        level = next_level
        height += 1
    return level[0][1], height, internal_bytes


class SharedPageWriter:
    """Packs multiple small blobs (tiny B+-trees) onto shared disk pages.

    The paper's Section 4.3.1 optimization: "we store multiple B+-trees
    (over short inverted lists) on the same disk page".  Callers hand in a
    blob and get back the page id holding it; blobs never span pages.  Space
    accounting can then charge each index only for the bytes it occupies
    rather than a whole page.
    """

    def __init__(self, disk: SimulatedDisk):
        self.disk = disk
        self._open_page: int = -1
        self._used = 0

    def place(self, blob: bytes) -> int:
        """Pack a blob onto the open shared page; returns its page id."""
        if len(blob) > self.disk.page_size:
            raise BTreeError("blob larger than one page cannot be shared")
        if self._open_page < 0 or self._used + len(blob) > self.disk.page_size:
            self._open_page = self.disk.allocate(b"")
            self._used = 0
        self._used += len(blob)
        return self._open_page


class MutableBTree:
    """A read-write B+-tree sharing the on-disk node format of :class:`BTree`.

    The bulk-loaded :class:`BTree` covers XRANK's query path (indexes are
    rebuilt offline, Figure 2); this mutable variant completes the substrate
    for element-granularity maintenance experiments: point ``insert`` with
    node splits, ``delete`` with lazy underflow (nodes may become sparse but
    never violate ordering — the compaction story is a bulk rebuild, same as
    the paper's), plus the same lookup surface.

    Nodes are serialized pages exactly like :class:`BTree`'s, so a mutable
    tree can be snapshotted into a read-only one by reusing its pages.
    """

    def __init__(self, disk: SimulatedDisk):
        self.disk = disk
        self.root_page = disk.allocate(_encode_leaf([], -1, -1))
        self.height = 1
        self.num_entries = 0

    # -- lookups (shared shape with BTree) -----------------------------------------

    def _descend_with_path(self, key: DeweyId):
        """Leaf page id for ``key`` plus the (page, child-slot) path."""
        path = []
        page_id = self.root_page
        for _ in range(self.height - 1):
            children = _decode_internal(self.disk.read(page_id))
            keys = [k for k, _ in children]
            position = bisect.bisect_right(keys, key) - 1
            if position < 0:
                position = 0
            path.append((page_id, position))
            page_id = children[position][1]
        return page_id, path

    def search(self, key: DeweyId) -> Optional[bytes]:
        """Payload stored under ``key``, or None."""
        leaf_page, _ = self._descend_with_path(key)
        _, _, entries = _decode_leaf(self.disk.read(leaf_page))
        for entry_key, payload in entries:
            if entry_key == key:
                return payload
        return None

    def items(self) -> Iterator[Tuple[DeweyId, bytes]]:
        """All entries in key order."""
        page_id = self.root_page
        for _ in range(self.height - 1):
            children = _decode_internal(self.disk.read(page_id))
            page_id = children[0][1]
        while page_id != -1:
            _, next_page, entries = _decode_leaf(self.disk.read(page_id))
            yield from entries
            page_id = next_page

    # -- insertion -------------------------------------------------------------------

    def insert(self, key: DeweyId, payload: bytes) -> None:
        """Insert or overwrite one entry, splitting full nodes as needed."""
        entry_size = key.encoded_size() + len(payload) + 5
        if entry_size + 16 > self.disk.page_size:
            raise BTreeError(f"entry of {entry_size} bytes cannot fit one page")
        leaf_page, path = self._descend_with_path(key)
        prev_page, next_page, entries = _decode_leaf(self.disk.read(leaf_page))
        keys = [k for k, _ in entries]
        position = bisect.bisect_left(keys, key)
        replaced = position < len(entries) and entries[position][0] == key
        if replaced:
            entries[position] = (key, payload)
        else:
            entries.insert(position, (key, payload))
            self.num_entries += 1

        encoded = _encode_leaf(entries, prev_page, next_page)
        if len(encoded) <= self.disk.page_size:
            self.disk.write(leaf_page, encoded)
            return

        # Split the leaf: left half stays on leaf_page (so parents and the
        # previous sibling's next-pointer remain valid).
        middle = len(entries) // 2
        left, right = entries[:middle], entries[middle:]
        right_page = self.disk.allocate(b"")
        self.disk.write(
            right_page, _encode_leaf(right, leaf_page, next_page)
        )
        self.disk.write(leaf_page, _encode_leaf(left, prev_page, right_page))
        if next_page != -1:
            old_prev, old_next, old_entries = _decode_leaf(
                self.disk.read(next_page)
            )
            self.disk.write(
                next_page, _encode_leaf(old_entries, right_page, old_next)
            )
        self._insert_separator(path, right[0][0], right_page)

    def _insert_separator(self, path, separator: DeweyId, child_page: int) -> None:
        """Propagate a split upward, growing a new root if necessary."""
        while path:
            parent_page, slot = path.pop()
            children = _decode_internal(self.disk.read(parent_page))
            children.insert(slot + 1, (separator, child_page))
            encoded = _encode_internal(children)
            if len(encoded) <= self.disk.page_size:
                self.disk.write(parent_page, encoded)
                return
            middle = len(children) // 2
            left, right = children[:middle], children[middle:]
            right_page = self.disk.allocate(_encode_internal(right))
            self.disk.write(parent_page, _encode_internal(left))
            separator, child_page = right[0][0], right_page
        # Split reached the root: grow one level.
        new_root = self.disk.allocate(
            _encode_internal(
                [(self._smallest_key(), self.root_page), (separator, child_page)]
            )
        )
        self.root_page = new_root
        self.height += 1

    def _smallest_key(self) -> DeweyId:
        page_id = self.root_page
        for _ in range(self.height - 1):
            children = _decode_internal(self.disk.read(page_id))
            page_id = children[0][1]
        _, _, entries = _decode_leaf(self.disk.read(page_id))
        if entries:
            return entries[0][0]
        return DeweyId((0,))

    # -- deletion ---------------------------------------------------------------------

    def delete(self, key: DeweyId) -> bool:
        """Remove one entry; returns False when the key is absent.

        Underflow is handled lazily: leaves may become sparse (even empty)
        but stay linked and ordered, so lookups and scans remain correct;
        space is reclaimed by a bulk rebuild, mirroring the index layer's
        merge-compaction strategy.
        """
        leaf_page, _ = self._descend_with_path(key)
        prev_page, next_page, entries = _decode_leaf(self.disk.read(leaf_page))
        keys = [k for k, _ in entries]
        position = bisect.bisect_left(keys, key)
        if position >= len(entries) or entries[position][0] != key:
            return False
        del entries[position]
        self.num_entries -= 1
        self.disk.write(
            leaf_page, _encode_leaf(entries, prev_page, next_page)
        )
        return True

    # -- conversion ----------------------------------------------------------------------

    def ceiling(self, key: DeweyId) -> Optional[Tuple[DeweyId, bytes]]:
        """Smallest entry with entry key >= ``key`` (same as BTree)."""
        leaf_page, _ = self._descend_with_path(key)
        page_id = leaf_page
        while page_id != -1:
            _, next_page, entries = _decode_leaf(self.disk.read(page_id))
            keys = [k for k, _ in entries]
            position = bisect.bisect_left(keys, key)
            if position < len(entries):
                return entries[position]
            page_id = next_page
        return None
