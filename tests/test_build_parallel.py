"""Tests for the parallel sharded build pipeline (repro.build).

The contract under test is *byte identity*: for any shard count and any
worker count, the parallel pipeline must produce exactly the posting map
(keyword insertion order included), ElemRank vector and search results of
the sequential build.  Alongside identity: LPT shard balancing, the spill
path, worker-crash containment, and parse-error policy.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.build.merge import merge_shard_results
from repro.build.pipeline import (
    build_corpus,
    extract_all_raw_postings,
    specs_from_sources,
)
from repro.build.shard import DocumentSpec, shard_specs
from repro.build.verify import compare_engines, default_probe_queries
from repro.build.worker import (
    FAULT_CRASH,
    FAULT_RAISE,
    ShardTask,
    process_shard,
)
from repro.engine import XRankEngine
from repro.errors import BuildError

#: A small corpus with cross-document hyperlinks (ElemRank edges), shared
#: keywords (multi-document posting lists) and varied sizes (LPT has
#: something to balance).
CORPUS = [
    (
        '<workshop xmlns:xlink="http://www.w3.org/1999/xlink">'
        "<title>XML Retrieval Workshop</title>"
        "<paper><title>Ranked Keyword Search</title>"
        "<body>ranked keyword search over xml element trees needs "
        "inverted lists and dewey identifiers</body>"
        '<cite xlink:href="survey.xml"/></paper></workshop>',
        "workshop.xml",
    ),
    (
        "<survey><title>Query Languages Survey</title>"
        "<chapter>the xql language and pattern matching over trees</chapter>"
        "<chapter>ranked retrieval and keyword proximity</chapter></survey>",
        "survey.xml",
    ),
    (
        '<notes xmlns:xlink="http://www.w3.org/1999/xlink">'
        "<note>reading the workshop paper on keyword search</note>"
        '<ref xlink:href="workshop.xml"/></notes>',
        "notes.xml",
    ),
    (
        "<glossary><entry>dewey identifiers encode element ancestry"
        "</entry><entry>inverted lists map keyword to element</entry>"
        "</glossary>",
        "glossary.xml",
    ),
    (
        "<memo><line>xml search</line></memo>",
        "memo.xml",
    ),
]


def _engine(workers: int, spill_dir=None) -> XRankEngine:
    engine = XRankEngine()
    engine.build(
        kinds=["hdil"], corpus=list(CORPUS), workers=workers,
        spill_dir=spill_dir,
    )
    return engine


class TestShardSpecs:
    def _specs(self, costs):
        return [
            DocumentSpec(doc_id=i, uri=f"d{i}", source="x", cost=cost)
            for i, cost in enumerate(costs)
        ]

    def test_deterministic_and_complete(self):
        specs = self._specs([50, 10, 40, 10, 30, 20])
        first = shard_specs(specs, 3)
        second = shard_specs(specs, 3)
        assert first == second
        covered = sorted(spec.doc_id for shard in first for spec in shard)
        assert covered == [0, 1, 2, 3, 4, 5]

    def test_shards_sorted_by_doc_id_internally(self):
        specs = self._specs([50, 10, 40, 10, 30, 20])
        for shard in shard_specs(specs, 3):
            doc_ids = [spec.doc_id for spec in shard]
            assert doc_ids == sorted(doc_ids)

    def test_lpt_balances_by_cost(self):
        # One huge document must not drag neighbours onto its shard.
        specs = self._specs([1000, 10, 10, 10])
        shards = shard_specs(specs, 2)
        loads = sorted(
            sum(spec.cost_estimate() for spec in shard) for shard in shards
        )
        assert loads == [30, 1000]

    def test_more_shards_than_specs_drops_empties(self):
        shards = shard_specs(self._specs([5, 5]), 8)
        assert len(shards) == 2
        assert all(shard for shard in shards)


class TestParallelIdentity:
    @pytest.fixture(scope="class")
    def sequential(self):
        return _engine(workers=1)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_workers_match_sequential(self, sequential, workers):
        parallel = _engine(workers=workers)
        queries = default_probe_queries(sequential, count=3)
        assert compare_engines(sequential, parallel, queries=queries) == []

    def test_ci_matrix_worker_count(self, sequential):
        """Honors the CI matrix's worker-count dimension when present."""
        workers = int(os.environ.get("REPRO_BUILD_WORKERS", "2"))
        parallel = _engine(workers=max(workers, 1))
        queries = default_probe_queries(sequential, count=3)
        assert compare_engines(sequential, parallel, queries=queries) == []

    def test_spill_path_matches_in_memory(self, sequential, tmp_path):
        spilled = _engine(workers=2, spill_dir=str(tmp_path))
        queries = default_probe_queries(sequential, count=3)
        assert compare_engines(sequential, spilled, queries=queries) == []
        # The private run directory is cleaned up after the merge.
        assert list(tmp_path.iterdir()) == []

    def test_build_stats_recorded(self):
        engine = _engine(workers=2)
        stats = engine.last_build_stats
        assert stats is not None
        assert stats.workers == 2
        assert stats.documents == len(CORPUS)
        assert stats.shards >= 2

    def test_extraction_only_path_matches(self, sequential):
        documents = list(sequential.graph.documents.values())
        reference, _ = extract_all_raw_postings(documents, workers=1)
        parallel, stats = extract_all_raw_postings(documents, workers=2)
        assert list(reference) == list(parallel)
        assert reference == parallel
        assert stats.workers == 2


class TestFaults:
    def _specs(self):
        return specs_from_sources(list(CORPUS))

    def test_worker_crash_surfaces_build_error(self):
        # A worker dying mid-shard (os._exit) breaks the pool; the parent
        # must convert that into BuildError instead of hanging.
        with pytest.raises(BuildError, match="worker process died"):
            build_corpus(self._specs(), workers=2, _fault=(0, FAULT_CRASH))

    def test_worker_exception_surfaces_build_error(self):
        with pytest.raises(BuildError, match="injected failure"):
            build_corpus(self._specs(), workers=2, _fault=(0, FAULT_RAISE))

    def test_parse_error_raise_policy(self):
        specs = specs_from_sources(["<broken", *[s for s, _ in CORPUS]])
        with pytest.raises(BuildError, match="cannot parse"):
            build_corpus(specs, workers=2)

    def test_parse_error_skip_policy(self):
        sources = [CORPUS[0], ("<broken", "broken.xml"), CORPUS[1]]
        result = build_corpus(
            specs_from_sources(sources), workers=2, on_parse_error="skip"
        )
        assert [doc.uri for doc in result.documents] == [
            "workshop.xml",
            "survey.xml",
        ]
        assert len(result.skipped) == 1
        assert result.skipped[0][0] == "broken.xml"


# -- property-based determinism ----------------------------------------------------

_WORDS = st.sampled_from(
    "ranked keyword search xml element tree dewey list query language "
    "proximity index workshop survey".split()
)
_DOC = st.lists(_WORDS, min_size=1, max_size=12)
_CORPUS_STRATEGY = st.lists(_DOC, min_size=1, max_size=8)


def _to_sources(word_lists):
    return [
        (
            "<doc><body>" + " ".join(words) + "</body></doc>",
            f"doc{i}.xml",
        )
        for i, words in enumerate(word_lists)
    ]


class TestShardMergeProperty:
    @given(word_lists=_CORPUS_STRATEGY, num_shards=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_any_sharding_merges_to_sequential_order(
        self, word_lists, num_shards
    ):
        """Shard+merge is a pure function of the corpus, not the sharding.

        Runs the real worker entry point in-process per shard (no pool —
        that keeps hypothesis fast) and checks the merged posting map is
        exactly the one-shard result: same keywords, same insertion order,
        same skeletons.
        """
        specs = specs_from_sources(_to_sources(word_lists))
        reference = merge_shard_results(
            [process_shard(ShardTask(shard_id=0, specs=list(specs)))]
        )
        shards = shard_specs(list(specs), num_shards)
        results = [
            process_shard(ShardTask(shard_id=i, specs=shard))
            for i, shard in enumerate(shards)
        ]
        merged = merge_shard_results(results)
        assert list(merged) == list(reference)
        assert merged == reference

    @pytest.mark.slow
    @given(word_lists=_CORPUS_STRATEGY, workers=st.integers(2, 4))
    @settings(max_examples=5, deadline=None)
    def test_full_engine_identity_with_real_processes(
        self, word_lists, workers
    ):
        """End-to-end identity with actual worker processes (slow lane)."""
        sources = _to_sources(word_lists)
        sequential = XRankEngine()
        sequential.build(kinds=["hdil"], corpus=list(sources), workers=1)
        parallel = XRankEngine()
        parallel.build(kinds=["hdil"], corpus=list(sources), workers=workers)
        queries = default_probe_queries(sequential, count=3)
        assert compare_engines(sequential, parallel, queries=queries) == []
