"""ElemRank: element-granularity link analysis (paper Section 3).

The paper derives its final formula as three refinements of PageRank; all
four formulations are implemented so the refinement chain can be tested and
ablated:

* ``E1_PAGERANK`` — the direct adaptation: map every element to a node and
  every edge (hyperlink *and* forward containment) to a hyperlink, then run
  PageRank.  Problem: no reverse flow along containment.

* ``E2_BIDIRECTIONAL`` — adds reverse containment edges; every node splits
  its navigation mass uniformly over hyperlinks, children and parent
  (the denominator ``N_h(u) + N_c(u) + 1``).  Problem: hyperlinks and
  containment compete for the same mass.

* ``E3_DISCRIMINATED`` — separate probabilities for hyperlinks (``d1``) and
  containment in either direction (``d2 + d3`` here), the latter split
  uniformly over children and parent (``N_c(u) + 1``).  Problem: forward and
  reverse containment weighted alike, so a parent's rank is *averaged* over
  children rather than aggregated.

* ``E4_FINAL`` — the paper's formula: hyperlink mass ``d1 / N_h(u)`` per
  link, forward containment ``d2 / N_c(u)`` per child, reverse containment
  ``d3`` undivided to the parent (aggregate semantics), and the random jump
  scaled per document (``1 / (N_d * N_de(v))``) so reverse propagation is
  not biased toward large documents.

Whenever a node lacks some edge type (no hyperlinks, a leaf, a root), the
total navigation probability is *proportionally re-split among the
available alternatives*, exactly as Section 3.1 prescribes; a node with no
outgoing options at all redistributes its mass through the random-jump
distribution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..config import ElemRankParams
from ..errors import ConvergenceError
from ..xmlmodel.dewey import DeweyId
from ..xmlmodel.graph import CollectionGraph


class ElemRankVariant(Enum):
    """The four formulations of Section 3.1's refinement chain."""

    E1_PAGERANK = "e1-pagerank"
    E2_BIDIRECTIONAL = "e2-bidirectional"
    E3_DISCRIMINATED = "e3-discriminated"
    E4_FINAL = "e4-final"


@dataclass
class ElemRankResult:
    """Converged element scores plus convergence diagnostics."""

    scores: np.ndarray
    iterations: int
    converged: bool
    residual: float
    elapsed_seconds: float
    variant: ElemRankVariant

    def score_of(self, graph: CollectionGraph, dewey: DeweyId) -> float:
        """Score of one element by Dewey ID."""
        index = graph.index_of.get(dewey)
        if index is None:
            raise KeyError(f"no element with Dewey ID {dewey}")
        return float(self.scores[index])

    def as_mapping(self, graph: CollectionGraph) -> Dict[DeweyId, float]:
        """Dense scores as a DeweyId -> float mapping."""
        return {
            element.dewey: float(self.scores[i])
            for i, element in enumerate(graph.elements)
        }


@dataclass
class LinkGraph:
    """The flat link-graph arrays ElemRank actually iterates over.

    Decouples the power iteration from :class:`CollectionGraph` (and hence
    from per-document parsing): the parallel build pipeline assembles one
    of these from merged shard outputs and runs ElemRank on it directly,
    while the sequential path converts a finalized collection graph via
    :meth:`from_collection`.  Either way the iteration sees identical
    arrays, which is part of the parallel build's byte-identity argument.
    """

    parent_index: List[int]
    children_count: List[int]
    doc_element_count: List[int]
    hyperlink_edges: List[Tuple[int, int]]
    num_documents: int
    out_hyperlink_count: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.out_hyperlink_count:
            counts = [0] * len(self.parent_index)
            for src, _dst in self.hyperlink_edges:
                counts[src] += 1
            self.out_hyperlink_count = counts

    @classmethod
    def from_collection(cls, graph: CollectionGraph) -> "LinkGraph":
        """Snapshot a finalized collection graph's edge arrays."""
        if not graph.finalized:
            graph.finalize()
        return cls(
            parent_index=graph.parent_index,
            children_count=graph.children_count,
            doc_element_count=graph.doc_element_count,
            hyperlink_edges=graph.hyperlink_edges,
            num_documents=graph.num_documents,
            out_hyperlink_count=graph.out_hyperlink_count,
        )


class _Arrays:
    """Flat edge arrays extracted once from a link graph."""

    def __init__(self, graph: LinkGraph):
        n = len(graph.parent_index)
        self.n = n
        self.parent = np.asarray(graph.parent_index, dtype=np.int64)
        self.num_children = np.asarray(graph.children_count, dtype=np.float64)
        self.num_hyperlinks = np.asarray(
            graph.out_hyperlink_count, dtype=np.float64
        )
        self.doc_elements = np.asarray(graph.doc_element_count, dtype=np.float64)
        self.num_documents = max(graph.num_documents, 1)
        if graph.hyperlink_edges:
            self.he_src = np.asarray(
                [s for s, _ in graph.hyperlink_edges], dtype=np.int64
            )
            self.he_dst = np.asarray(
                [t for _, t in graph.hyperlink_edges], dtype=np.int64
            )
        else:
            self.he_src = np.zeros(0, dtype=np.int64)
            self.he_dst = np.zeros(0, dtype=np.int64)
        self.nonroot = np.nonzero(self.parent >= 0)[0]
        self.nonroot_parent = self.parent[self.nonroot]
        self.has_parent = (self.parent >= 0).astype(np.float64)
        self.has_children = (self.num_children > 0).astype(np.float64)
        self.has_hyperlinks = (self.num_hyperlinks > 0).astype(np.float64)


def _navigation_weights(
    arrays: _Arrays, d_hyper: float, d_child: float, d_parent: float
) -> tuple:
    """Per-node (w_h, w_c, w_p) after proportional re-splitting.

    ``w_h + w_c + w_p`` equals the total navigation probability for every
    node that has at least one available alternative, and 0 otherwise.
    """
    total = d_hyper + d_child + d_parent
    available = (
        d_hyper * arrays.has_hyperlinks
        + d_child * arrays.has_children
        + d_parent * arrays.has_parent
    )
    scale = np.where(available > 0, total / np.where(available > 0, available, 1.0), 0.0)
    w_h = d_hyper * arrays.has_hyperlinks * scale
    w_c = d_child * arrays.has_children * scale
    w_p = d_parent * arrays.has_parent * scale
    return w_h, w_c, w_p


def compute_elemrank(
    graph: Union[CollectionGraph, LinkGraph],
    params: Optional[ElemRankParams] = None,
    variant: ElemRankVariant = ElemRankVariant.E4_FINAL,
    raise_on_divergence: bool = False,
) -> ElemRankResult:
    """Run the ElemRank power iteration over a link graph.

    Accepts either a finalized :class:`CollectionGraph` (finalizing it if
    needed) or pre-assembled :class:`LinkGraph` arrays — the latter is how
    the parallel build pipeline runs the single global iteration over the
    merged shard outputs.

    Parameter interpretation per variant: E1 and E2 use a single damping
    probability ``d = d1 + d2 + d3`` (0.85 with the defaults, matching
    PageRank); E3 uses ``d1`` for hyperlinks and ``d2 + d3`` for containment;
    E4 uses all three separately.
    """
    params = params or ElemRankParams()
    if isinstance(graph, CollectionGraph):
        graph = LinkGraph.from_collection(graph)
    arrays = _Arrays(graph)
    n = arrays.n
    started = time.perf_counter()
    if n == 0:
        return ElemRankResult(np.zeros(0), 0, True, 0.0, 0.0, variant)

    if variant is ElemRankVariant.E1_PAGERANK:
        d = params.d1 + params.d2 + params.d3
        w_h, w_c, w_p = _split_uniform(arrays, d, include_parent=False)
        base = np.full(n, (1.0 - d) / n)
        jump = np.full(n, 1.0 / n)
    elif variant is ElemRankVariant.E2_BIDIRECTIONAL:
        d = params.d1 + params.d2 + params.d3
        w_h, w_c, w_p = _split_uniform(arrays, d, include_parent=True)
        base = np.full(n, (1.0 - d) / n)
        jump = np.full(n, 1.0 / n)
    elif variant is ElemRankVariant.E3_DISCRIMINATED:
        d_containment = params.d2 + params.d3
        w_h, w_c, w_p = _split_e3(arrays, params.d1, d_containment)
        base = np.full(n, (1.0 - params.d1 - d_containment) / n)
        jump = np.full(n, 1.0 / n)
    elif variant is ElemRankVariant.E4_FINAL:
        w_h, w_c, w_p = _navigation_weights(
            arrays, params.d1, params.d2, params.d3
        )
        jump = 1.0 / (arrays.num_documents * arrays.doc_elements)
        base = params.random_jump * jump
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown variant {variant}")

    total_nav = w_h + w_c + w_p
    dangling = total_nav <= 0
    nav_probability = params.d1 + params.d2 + params.d3

    safe_hyperlinks = np.where(arrays.num_hyperlinks > 0, arrays.num_hyperlinks, 1.0)
    safe_children = np.where(arrays.num_children > 0, arrays.num_children, 1.0)

    scores = jump.copy()
    residual = 0.0
    for iteration in range(1, params.max_iterations + 1):
        new_scores = base.copy()
        if len(arrays.he_src):
            per_link = (scores * w_h / safe_hyperlinks)[arrays.he_src]
            np.add.at(new_scores, arrays.he_dst, per_link)
        if len(arrays.nonroot):
            # Forward containment: each child receives its parent's share.
            per_child = scores * w_c / safe_children
            new_scores[arrays.nonroot] += per_child[arrays.nonroot_parent]
            # Reverse containment: each child pushes w_p * score to parent.
            np.add.at(
                new_scores,
                arrays.nonroot_parent,
                (scores * w_p)[arrays.nonroot],
            )
        dangling_mass = float(scores[dangling].sum()) * nav_probability
        if dangling_mass > 0:
            new_scores += dangling_mass * jump
        residual = float(np.abs(new_scores - scores).sum())
        scores = new_scores
        if residual < params.threshold:
            elapsed = time.perf_counter() - started
            return ElemRankResult(scores, iteration, True, residual, elapsed, variant)
    if raise_on_divergence:
        raise ConvergenceError(
            f"ElemRank({variant.value}) did not converge in "
            f"{params.max_iterations} iterations (residual {residual:.2e})"
        )
    elapsed = time.perf_counter() - started
    return ElemRankResult(
        scores, params.max_iterations, False, residual, elapsed, variant
    )


def _split_uniform(arrays: _Arrays, d: float, include_parent: bool) -> tuple:
    """E1/E2 weights: mass split uniformly over all out-edges.

    Out-degree is ``N_h + N_c`` (E1) or ``N_h + N_c + [has parent]`` (E2);
    each edge type's share is proportional to its edge count.
    """
    degree = arrays.num_hyperlinks + arrays.num_children
    if include_parent:
        degree = degree + arrays.has_parent
    safe = np.where(degree > 0, degree, 1.0)
    w_h = d * arrays.num_hyperlinks / safe
    w_c = d * arrays.num_children / safe
    w_p = (d * arrays.has_parent / safe) if include_parent else np.zeros(arrays.n)
    return w_h, w_c, w_p


def _split_e3(arrays: _Arrays, d_hyper: float, d_containment: float) -> tuple:
    """E3 weights: d1 over hyperlinks; d2 over children + parent uniformly.

    Missing edge types re-split proportionally, mirroring Section 3.1.
    """
    containment_degree = arrays.num_children + arrays.has_parent
    available = (
        d_hyper * arrays.has_hyperlinks
        + d_containment * (containment_degree > 0).astype(np.float64)
    )
    total = d_hyper + d_containment
    scale = np.where(available > 0, total / np.where(available > 0, available, 1.0), 0.0)
    safe_containment = np.where(containment_degree > 0, containment_degree, 1.0)
    w_h = d_hyper * arrays.has_hyperlinks * scale
    w_containment = (
        d_containment
        * (containment_degree > 0).astype(np.float64)
        * scale
    )
    w_c = w_containment * arrays.num_children / safe_containment
    w_p = w_containment * arrays.has_parent / safe_containment
    return w_h, w_c, w_p
