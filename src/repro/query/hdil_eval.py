"""HDIL adaptive query processing (paper Section 4.4.2).

Start in RDIL mode over the small rank-ordered heads, periodically estimate
RDIL's remaining time, and switch to a DIL scan of the full Dewey-ordered
lists when RDIL looks like losing.  Following the paper:

* after ``r`` results have risen above the threshold in ``t`` simulated
  milliseconds, RDIL's remaining time is estimated as ``(m - r) * t / r``;
* DIL's expected time is computed *a priori* from the lists' page counts
  (one sequential pass: a seek per list plus a transfer per page), which is
  possible "because it mainly depends on the number of query keywords, and
  the size of each query keyword inverted list";
* while ``r = 0`` the ratio estimate is undefined; we keep RDIL running
  until its sunk cost alone exceeds DIL's full expected cost — permissive
  enough that correlated queries (which surface results quickly) stay in
  RDIL mode, matching Figure 10.

RDIL mode also ends when a truncated ranked head is exhausted before the
Threshold Algorithm stop condition holds — the head no longer bounds unseen
ranks, so only a full DIL pass can guarantee the top-m.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import HDILParams, RankingParams
from ..index.hdil import HDILIndex
from ..index.postings import Posting
from ..obs import NOOP_SPAN
from ..xmlmodel.dewey import DeweyId
from .dil_eval import _drain_cursor, _profiled_get_or_load
from .merge import conjunctive_merge
from .rdil_eval import ProbeLoopState, RankedProbeLoop
from .results import QueryResult, ResultHeap, validate_query
from .streams import PostingStream


@dataclass
class HDILTrace:
    """Diagnostics of one HDIL evaluation (which mode won, and why)."""

    started_in_rdil: bool = True
    switched_to_dil: bool = False
    switch_reason: str = ""
    rdil_entries_read: int = 0
    rdil_cost_ms: float = 0.0
    dil_expected_ms: float = 0.0


def _full_record_decoder(_key: DeweyId, record: bytes) -> Posting:
    """HDIL's external B+-tree leaves hold complete posting records."""
    return Posting.decode(record)


class HDILEvaluator:
    """Evaluates conjunctive keyword queries against an :class:`HDILIndex`."""

    def __init__(
        self,
        index: HDILIndex,
        params: Optional[RankingParams] = None,
        hdil_params: Optional[HDILParams] = None,
    ):
        self.index = index
        self.params = params or RankingParams()
        self.hdil_params = hdil_params or index.params
        self.last_trace = HDILTrace()
        #: optional decoded-posting-list cache attached by repro.service
        self.list_cache = None

    def _full_stream(self, keyword: str) -> PostingStream:
        if self.list_cache is not None:
            postings = _profiled_get_or_load(
                self.list_cache,
                (self.index.kind, "full", keyword),
                lambda: _drain_cursor(self.index.full_cursor(keyword)),
            )
            return PostingStream.from_decoded(postings, self.index.deleted_docs)
        return PostingStream.from_cursor(
            self.index.full_cursor(keyword), self.index.deleted_docs
        )

    def _ranked_stream(self, keyword: str) -> PostingStream:
        if self.list_cache is not None:
            postings = _profiled_get_or_load(
                self.list_cache,
                (self.index.kind, "ranked", keyword),
                lambda: _drain_cursor(self.index.ranked_cursor(keyword)),
            )
            return PostingStream.from_decoded(postings, self.index.deleted_docs)
        return PostingStream.from_cursor(
            self.index.ranked_cursor(keyword), self.index.deleted_docs
        )

    def evaluate(
        self,
        keywords: Sequence[str],
        m: int = 10,
        weights: Optional[Sequence[float]] = None,
        deadline=None,
        span=None,
    ) -> List[QueryResult]:
        """Top-m conjunctive results via adaptive RDIL-then-DIL."""
        validate_query(keywords, m, weights)
        self.index._require_built()
        self.last_trace = HDILTrace()
        span = span or NOOP_SPAN

        if any(not self.index.has_keyword(k) for k in keywords):
            return []
        if len(keywords) == 1:
            scale = weights[0] if weights else 1.0
            return self._evaluate_single(keywords[0], m, scale, deadline)

        dil_expected = self._expected_dil_cost_ms(keywords)
        self.last_trace.dil_expected_ms = dil_expected

        with span.child("rdil_probe", keywords=len(keywords)) as rdil_span:
            results = self._evaluate_rdil_mode(
                keywords, m, weights, deadline, rdil_span
            )
        if results is not None:
            return results
        with span.child("dil_scan", keywords=len(keywords)) as dil_span:
            before = (
                self.index.disk.stats.snapshot()
                if dil_span.recording
                else None
            )
            results = self._evaluate_dil_mode(keywords, m, weights, deadline)
            if before is not None:
                dil_span.attach_io(
                    self.index.disk.stats.delta_since(before)
                )
        return results

    def _evaluate_rdil_mode(
        self,
        keywords: Sequence[str],
        m: int,
        weights: Optional[Sequence[float]],
        deadline,
        span=NOOP_SPAN,
    ) -> Optional[List[QueryResult]]:
        """The RDIL probe phase; None means "switch to a full DIL scan"."""
        dil_expected = self.last_trace.dil_expected_ms

        streams = [self._ranked_stream(keyword) for keyword in keywords]
        btrees = [self.index.btree(keyword) for keyword in keywords]
        if any(tree is None for tree in btrees):
            span.event("no_btree")
            return None

        loop = RankedProbeLoop(
            streams,
            btrees,
            entry_decoder=_full_record_decoder,
            params=self.params,
            deleted_docs=self.index.deleted_docs,
            truncated_streams=True,
            weights=list(weights) if weights else None,
        )
        start_stats = self.index.disk.stats.snapshot()
        interval = self.hdil_params.monitor_interval
        # State for the threshold-slope estimator: (entries, threshold)
        # samples at the last two monitor points.
        slope_samples: List[tuple] = []

        def estimate_paper(state: ProbeLoopState, elapsed: float) -> Optional[str]:
            """Section 4.4.2: remaining = (m - r) * t / r."""
            r = state.results_above_threshold
            if r > 0:
                estimated_remaining = (m - r) * elapsed / r
                if estimated_remaining > dil_expected:
                    return (
                        f"estimated remaining {estimated_remaining:.1f}ms "
                        f"> DIL expected {dil_expected:.1f}ms"
                    )
            elif elapsed > dil_expected:
                return (
                    f"no results above threshold after {elapsed:.1f}ms "
                    f"(DIL expected {dil_expected:.1f}ms)"
                )
            return None

        def estimate_slope(state: ProbeLoopState, elapsed: float) -> Optional[str]:
            """Extrapolate threshold decay: RDIL stops once the threshold
            falls to the m-th result's rank, so the per-entry decay rate
            predicts the remaining entries (and hence cost) directly."""
            slope_samples.append((state.entries_read, state.threshold))
            if len(slope_samples) < 2:
                return estimate_paper(state, elapsed)
            (entries0, threshold0), (entries1, threshold1) = slope_samples[-2:]
            decay_per_entry = (threshold0 - threshold1) / max(
                1, entries1 - entries0
            )
            heap = state.heap
            target = heap.kth_rank() if heap is not None else float("-inf")
            if target == float("-inf"):
                # No full heap yet: fall back to the sunk-cost guard.
                return estimate_paper(state, elapsed)
            if decay_per_entry <= 0:
                # Threshold is not falling: RDIL will not terminate soon.
                if elapsed > dil_expected:
                    return (
                        f"threshold stalled at {state.threshold:.4f} after "
                        f"{elapsed:.1f}ms (DIL expected {dil_expected:.1f}ms)"
                    )
                return None
            remaining_entries = (state.threshold - target) / decay_per_entry
            cost_per_entry = elapsed / max(1, state.entries_read)
            estimated_remaining = remaining_entries * cost_per_entry
            if estimated_remaining > dil_expected:
                return (
                    f"threshold-slope estimate {estimated_remaining:.1f}ms "
                    f"> DIL expected {dil_expected:.1f}ms"
                )
            return None

        estimate = (
            estimate_slope
            if self.hdil_params.estimator == "threshold-slope"
            else estimate_paper
        )

        def monitor(state: ProbeLoopState) -> bool:
            if state.entries_read % interval != 0:
                return True
            delta = self.index.disk.stats.delta_since(start_stats)
            elapsed = delta.cost_ms(self.index.disk.params)
            reason = estimate(state, elapsed)
            if reason is not None:
                self.last_trace.switch_reason = reason
                return False
            return True

        results, completed = loop.run(
            m, monitor=monitor, exhaustion_is_complete=False, deadline=deadline
        )
        delta = self.index.disk.stats.delta_since(start_stats)
        self.last_trace.rdil_cost_ms = delta.cost_ms(self.index.disk.params)
        self.last_trace.rdil_entries_read = loop.state.entries_read
        span.set("entries_read", loop.state.entries_read)
        span.attach_io(delta)
        if completed:
            return results
        if not self.last_trace.switch_reason:
            self.last_trace.switch_reason = "ranked heads exhausted"
        self.last_trace.switched_to_dil = True
        # The switch is reported structurally (span event here, the
        # service's "degraded"/profile machinery above) — no module
        # logger: the span event is the log line.
        span.event("switch_to_dil", reason=self.last_trace.switch_reason)
        return None

    # -- DIL fallback -----------------------------------------------------------------

    def _evaluate_dil_mode(
        self,
        keywords: Sequence[str],
        m: int,
        weights: Optional[Sequence[float]] = None,
        deadline=None,
    ) -> List[QueryResult]:
        streams = [self._full_stream(keyword) for keyword in keywords]
        heap = ResultHeap(m)
        for result in conjunctive_merge(
            streams,
            self.params,
            list(weights) if weights else None,
            deadline=deadline,
        ):
            heap.add(result)
        return heap.results()

    def _evaluate_single(
        self, keyword: str, m: int, scale: float = 1.0, deadline=None
    ) -> List[QueryResult]:
        """One keyword: the ranked head serves the top-m directly."""
        stream = self._ranked_stream(keyword)
        results: List[QueryResult] = []
        while not stream.eof and len(results) < m:
            if deadline is not None and deadline.poll():
                return results
            posting = stream.next()
            results.append(
                QueryResult(
                    rank=posting.elemrank * scale,
                    dewey=posting.dewey,
                    keyword_ranks=(posting.elemrank,),
                )
            )
        if len(results) == m or self.index.head_length(keyword) == self.index.list_length(keyword):
            return results
        # The truncated head could not fill m results: fall back to a full
        # scan (rare: m larger than the replicated fraction).
        self.last_trace.switched_to_dil = True
        self.last_trace.switch_reason = "ranked head shorter than m"
        full = self._full_stream(keyword)
        heap = ResultHeap(m)
        while not full.eof:
            if deadline is not None and deadline.poll():
                break
            posting = full.next()
            heap.add(
                QueryResult(
                    rank=posting.elemrank * scale,
                    dewey=posting.dewey,
                    keyword_ranks=(posting.elemrank,),
                )
            )
        return heap.results()

    # -- cost estimation --------------------------------------------------------------------

    def _expected_dil_cost_ms(self, keywords: Sequence[str]) -> float:
        """A-priori DIL cost: one seek per list + one transfer per page."""
        params = self.index.disk.params
        pages = self.index.total_full_pages(keywords)
        return pages * params.transfer_cost_ms + len(keywords) * params.seek_cost_ms
