"""Tests for disjunctive ("or") semantics and weighted keywords."""

import random

import pytest

from repro.config import RankingParams
from repro.engine import XRankEngine
from repro.errors import QueryError
from repro.index.builder import IndexBuilder
from repro.query.dil_eval import DILEvaluator
from repro.query.disjunctive import DisjunctiveEvaluator
from repro.query.hdil_eval import HDILEvaluator
from repro.query.rdil_eval import RDILEvaluator

from conftest import VOCAB, random_graph


def build(graph):
    builder = IndexBuilder(graph)
    return builder, builder.build_dil()


class TestDisjunctiveSemantics:
    def test_results_are_direct_containers_of_any_keyword(self):
        rng = random.Random(1)
        graph = random_graph(rng, num_docs=3, max_depth=4)
        builder, dil = build(graph)
        evaluator = DisjunctiveEvaluator(dil)
        results = evaluator.evaluate(["alpha", "beta"], m=100_000)
        expected = {
            element.dewey.components
            for element in graph.elements
            if {"alpha", "beta"}
            & {w for w, _ in element.direct_words()}
        }
        assert {r.dewey.components for r in results} == expected

    def test_superset_of_single_keyword_queries(self):
        rng = random.Random(2)
        graph = random_graph(rng, num_docs=3, max_depth=4)
        builder, dil = build(graph)
        disjunctive = DisjunctiveEvaluator(dil)
        conjunctive = DILEvaluator(dil)
        union = {
            str(r.dewey)
            for keyword in ("alpha", "beta")
            for r in conjunctive.evaluate([keyword], m=100_000)
        }
        either = {
            str(r.dewey)
            for r in disjunctive.evaluate(["alpha", "beta"], m=100_000)
        }
        assert either == union

    def test_element_with_both_keywords_scores_higher(self):
        from repro.xmlmodel.graph import CollectionGraph
        from repro.xmlmodel.parser import parse_xml

        graph = CollectionGraph()
        graph.add_document(
            parse_xml("<r><a>alpha beta</a><b>alpha</b><c>beta</c></r>", doc_id=0)
        )
        graph.finalize()
        _, dil = build(graph)
        results = DisjunctiveEvaluator(dil).evaluate(["alpha", "beta"], m=10)
        top = results[0]
        assert graph.elements[graph.index_of[top.dewey]].tag == "a"
        assert sum(1 for r in top.keyword_ranks if r > 0) == 2

    def test_single_keyword_missing_ok(self):
        rng = random.Random(3)
        graph = random_graph(rng, num_docs=2, max_depth=3)
        _, dil = build(graph)
        evaluator = DisjunctiveEvaluator(dil)
        some = evaluator.evaluate(["alpha", "wordthatneverappears"], m=50)
        only = evaluator.evaluate(["alpha"], m=50)
        assert {str(r.dewey) for r in some} == {str(r.dewey) for r in only}

    def test_requires_dewey_ordered_index(self, figure1_graph):
        builder = IndexBuilder(figure1_graph)
        rdil = builder.build_rdil()
        with pytest.raises(QueryError):
            DisjunctiveEvaluator(rdil)

    def test_validation(self, figure1_graph):
        _, dil = build(figure1_graph)
        evaluator = DisjunctiveEvaluator(dil)
        with pytest.raises(QueryError):
            evaluator.evaluate([], m=5)
        with pytest.raises(QueryError):
            evaluator.evaluate(["x"], m=0)
        with pytest.raises(QueryError):
            evaluator.evaluate(["x", "y"], m=5, weights=[1.0])


class TestWeightedKeywords:
    def test_weights_scale_ranks_linearly(self, figure1_graph):
        builder = IndexBuilder(figure1_graph)
        evaluator = DILEvaluator(builder.build_dil())
        plain = evaluator.evaluate(["xql", "language"], m=10)
        doubled = evaluator.evaluate(
            ["xql", "language"], m=10, weights=[2.0, 2.0]
        )
        assert [r.rank * 2 for r in plain] == pytest.approx(
            [r.rank for r in doubled], rel=1e-6
        )

    def test_weights_can_reorder_results(self):
        from repro.xmlmodel.graph import CollectionGraph
        from repro.xmlmodel.parser import parse_xml

        graph = CollectionGraph()
        # Two results: one strong on alpha, one strong on beta.
        graph.add_document(
            parse_xml(
                "<r>"
                "<x><d>alpha</d> alpha beta</x>"
                "<y><d>beta</d> beta alpha</y>"
                "</r>",
                doc_id=0,
            )
        )
        graph.finalize()
        builder = IndexBuilder(graph)
        evaluator = DILEvaluator(
            builder.build_dil(), RankingParams(use_proximity=False, aggregation="sum")
        )
        favour_alpha = evaluator.evaluate(
            ["alpha", "beta"], m=2, weights=[10.0, 1.0]
        )
        favour_beta = evaluator.evaluate(
            ["alpha", "beta"], m=2, weights=[1.0, 10.0]
        )
        assert favour_alpha[0].dewey != favour_beta[0].dewey

    @pytest.mark.parametrize("seed", range(5))
    def test_weighted_agreement_across_evaluators(self, seed):
        rng = random.Random(400 + seed)
        graph = random_graph(rng, num_docs=3, max_depth=4)
        builder = IndexBuilder(graph)
        weights = [rng.uniform(0.5, 3.0), rng.uniform(0.5, 3.0)]
        dil = DILEvaluator(builder.build_dil())
        rdil = RDILEvaluator(builder.build_rdil())
        hdil = HDILEvaluator(builder.build_hdil())
        keywords = ["alpha", "beta"]
        reference = [
            round(r.rank, 8) for r in dil.evaluate(keywords, m=5, weights=weights)
        ]
        for other in (rdil, hdil):
            got = [
                round(r.rank, 8)
                for r in other.evaluate(keywords, m=5, weights=weights)
            ]
            assert got == pytest.approx(reference, rel=1e-5)

    def test_negative_weight_rejected(self, figure1_graph):
        builder = IndexBuilder(figure1_graph)
        evaluator = DILEvaluator(builder.build_dil())
        with pytest.raises(QueryError):
            evaluator.evaluate(["xql", "language"], m=5, weights=[1.0, -1.0])


class TestEngineModes:
    @pytest.fixture()
    def engine(self):
        e = XRankEngine()
        e.add_xml(
            "<r><a>alpha beta</a><b>alpha only here</b><c>beta only here</c></r>"
        )
        e.build(kinds=["hdil", "dil", "rdil"])
        return e

    def test_or_mode_returns_more(self, engine):
        conjunctive = engine.search("alpha beta", mode="and", kind="dil")
        disjunctive = engine.search("alpha beta", mode="or", kind="dil")
        assert len(disjunctive) > len(conjunctive)

    def test_or_mode_on_hdil(self, engine):
        assert engine.search("alpha beta", mode="or", kind="hdil")

    def test_or_mode_rejected_for_rank_ordered_index(self, engine):
        with pytest.raises(QueryError):
            engine.search("alpha beta", mode="or", kind="rdil")

    def test_unknown_mode(self, engine):
        with pytest.raises(QueryError):
            engine.search("alpha", mode="xor")

    def test_engine_weights(self, engine):
        favour_b = engine.search(
            "alpha beta", mode="or", kind="dil", weights={"alpha": 5.0}
        )
        assert favour_b
