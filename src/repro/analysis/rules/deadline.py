"""deadline-discipline: stream-advancing loops must honour the deadline.

PR 1's cooperative deadlines only work if every loop that can consume an
unbounded amount of posting data checks (or forwards) the budget.  A
single unpolled loop — e.g. an RDIL candidate qualification range-scan —
reintroduces the exact hang the ``Deadline`` machinery exists to bound.

A loop *advances a posting stream* when its body calls ``.next()`` on a
cursor/stream, or when it is a ``for`` over ``conjunctive_merge`` /
``disjunctive_merge``.  Such a loop is compliant when its enclosing
function takes a ``deadline`` parameter and the loop either calls
``deadline.poll()`` or forwards ``deadline`` into a callee (including the
``for`` iterable itself, since the merge generators poll internally).

Generator functions are exempt: their consumer controls the pacing, so
the discipline applies at the consuming loop instead.  Helpers that are
genuinely unbounded-by-design (cache loaders that must drain a full list)
carry a ``# repro: ignore[deadline-discipline]`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple, Union

from ..linter import LintRule, Violation
from .common import is_generator, iter_functions, param_names, walk_within

_MERGE_NAMES = {"conjunctive_merge", "disjunctive_merge"}
_LOOP_NODES = (ast.For, ast.While)

Loop = Union[ast.For, ast.While]


class DeadlineDisciplineRule(LintRule):
    rule_id = "deadline-discipline"
    description = (
        "query/ loops that advance a posting stream must poll or forward "
        "the cooperative deadline"
    )
    scopes = ("query/",)

    def check(self, tree: ast.Module, source: str, path: str) -> List[Violation]:
        violations: List[Violation] = []
        for func in iter_functions(tree):
            if is_generator(func):
                continue
            has_deadline = "deadline" in param_names(func)
            for loop in _own_loops(func):
                if not _advances_stream(loop):
                    continue
                if not has_deadline:
                    violations.append(
                        self.violation(
                            path,
                            loop,
                            f"loop in {func.name}() advances a posting stream "
                            "but the function takes no `deadline` parameter",
                        )
                    )
                elif not _polls_or_forwards(loop):
                    violations.append(
                        self.violation(
                            path,
                            loop,
                            f"stream-advancing loop in {func.name}() never "
                            "polls or forwards `deadline`",
                        )
                    )
        return violations


def _own_loops(func: ast.AST) -> Iterator[Loop]:
    for node in walk_within(func):
        if isinstance(node, _LOOP_NODES):
            yield node


def _advances_stream(loop: Loop) -> bool:
    """Whether this loop *directly* consumes posting data.

    ``.next()`` calls are attributed to their nearest enclosing loop, so
    an outer loop is not blamed for an inner loop's stream advances.
    """
    if isinstance(loop, ast.For) and _calls_merge(loop.iter):
        return True
    for node in _body_without_nested_loops(loop):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "next"
            and not _is_deadline_receiver(node.func.value)
        ):
            return True
    return False


def _calls_merge(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in _MERGE_NAMES:
                return True
    return False


def _is_deadline_receiver(node: ast.AST) -> bool:
    return (isinstance(node, ast.Name) and node.id == "deadline") or (
        isinstance(node, ast.Attribute) and node.attr == "deadline"
    )


def _body_without_nested_loops(loop: Loop) -> Iterator[ast.AST]:
    stack: List[ast.AST] = list(loop.body) + list(loop.orelse)
    while stack:
        node = stack.pop()
        if isinstance(node, _LOOP_NODES + (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _polls_or_forwards(loop: Loop) -> bool:
    """poll() call or a `deadline` hand-off anywhere in the loop.

    The ``for`` iterable counts: ``for r in conjunctive_merge(...,
    deadline=deadline)`` delegates polling to the merge generator.
    """
    roots: List[ast.AST] = list(loop.body) + list(loop.orelse)
    if isinstance(loop, ast.For):
        roots.append(loop.iter)
    else:
        roots.append(loop.test)
    for root in roots:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr == "poll":
                return True
            if any(
                isinstance(arg, ast.Name) and arg.id == "deadline"
                for arg in node.args
            ):
                return True
            if any(kw.arg == "deadline" for kw in node.keywords):
                return True
    return False
