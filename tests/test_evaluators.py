"""Cross-evaluator agreement: DIL, RDIL and HDIL must return the same
top-m results (the paper's three structures answer identical queries), and
DIL must match the brute-force reference."""

import itertools
import random

import pytest

from repro.config import HDILParams, RankingParams
from repro.errors import QueryError
from repro.index.builder import IndexBuilder
from repro.query.dil_eval import DILEvaluator
from repro.query.hdil_eval import HDILEvaluator
from repro.query.rdil_eval import RDILEvaluator

from conftest import VOCAB, random_graph, reference_results


def build_evaluators(graph, ranking=None, hdil_params=None):
    ranking = ranking or RankingParams()
    builder = IndexBuilder(graph)
    return {
        "dil": DILEvaluator(builder.build_dil(), ranking),
        "rdil": RDILEvaluator(builder.build_rdil(), ranking),
        "hdil": HDILEvaluator(
            builder.build_hdil(hdil_params), ranking, hdil_params
        ),
    }, builder


def top_ranks(results):
    return [round(r.rank, 9) for r in results]


def assert_same_topm(evaluators, keywords, m):
    outcomes = {
        name: evaluator.evaluate(keywords, m=m)
        for name, evaluator in evaluators.items()
    }
    dil = outcomes["dil"]
    for name in ("rdil", "hdil"):
        other = outcomes[name]
        assert top_ranks(other) == pytest.approx(top_ranks(dil), rel=1e-5), (
            f"{name} top-{m} ranks diverge from DIL for {keywords}"
        )
        # Results strictly above the m-th rank must be identical elements.
        if dil:
            cutoff = dil[-1].rank
            dil_strict = {str(r.dewey) for r in dil if r.rank > cutoff}
            other_strict = {str(r.dewey) for r in other if r.rank > cutoff}
            assert dil_strict == other_strict


class TestAgreementOnFigure1:
    @pytest.mark.parametrize(
        "keywords",
        [["xql"], ["xql", "language"], ["xml", "workshop"], ["soffer", "xql"]],
    )
    def test_all_evaluators_agree(self, figure1_graph, keywords):
        evaluators, _ = build_evaluators(figure1_graph)
        assert_same_topm(evaluators, keywords, m=10)


class TestAgreementRandomized:
    @pytest.mark.parametrize("seed", range(10))
    def test_two_keyword_queries(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, num_docs=4, max_depth=4)
        evaluators, _ = build_evaluators(graph)
        for keywords in itertools.combinations(VOCAB[:4], 2):
            for m in (1, 3, 10):
                assert_same_topm(evaluators, list(keywords), m)

    @pytest.mark.parametrize("seed", range(5))
    def test_three_keyword_queries(self, seed):
        rng = random.Random(50 + seed)
        graph = random_graph(rng, num_docs=3, max_depth=4)
        evaluators, _ = build_evaluators(graph)
        assert_same_topm(evaluators, ["alpha", "beta", "gamma"], m=5)

    @pytest.mark.parametrize("seed", range(5))
    def test_single_keyword(self, seed):
        rng = random.Random(80 + seed)
        graph = random_graph(rng, num_docs=3, max_depth=3)
        evaluators, _ = build_evaluators(graph)
        assert_same_topm(evaluators, ["alpha"], m=5)

    def test_dil_matches_reference_topm(self):
        rng = random.Random(7)
        graph = random_graph(rng, num_docs=4, max_depth=4)
        evaluators, builder = build_evaluators(graph)
        expected = reference_results(
            graph, ["alpha", "beta"], builder.elemranks
        )
        got = evaluators["dil"].evaluate(["alpha", "beta"], m=1000)
        assert {r.dewey.components for r in got} == set(expected)
        for result in got:
            assert result.rank == pytest.approx(
                expected[result.dewey.components], rel=1e-4, abs=1e-12
            )


class TestHDILSpecifics:
    def test_tiny_head_forces_dil_fallback(self):
        """With a 1-entry ranked head HDIL must still answer correctly."""
        rng = random.Random(3)
        graph = random_graph(rng, num_docs=4, max_depth=4)
        params = HDILParams(rank_fraction=0.01, min_rank_entries=1,
                            monitor_interval=1)
        evaluators, _ = build_evaluators(graph, hdil_params=params)
        assert_same_topm(evaluators, ["alpha", "beta"], m=10)

    def test_full_head_stays_in_rdil_mode(self):
        rng = random.Random(4)
        graph = random_graph(rng, num_docs=3, max_depth=3)
        params = HDILParams(rank_fraction=1.0, min_rank_entries=1)
        evaluators, _ = build_evaluators(graph, hdil_params=params)
        assert_same_topm(evaluators, ["alpha", "beta"], m=3)

    def test_trace_populated(self):
        rng = random.Random(5)
        graph = random_graph(rng, num_docs=3, max_depth=3)
        evaluators, _ = build_evaluators(graph)
        hdil = evaluators["hdil"]
        hdil.evaluate(["alpha", "beta"], m=3)
        assert hdil.last_trace.dil_expected_ms > 0

    def test_single_keyword_head_shorter_than_m(self):
        rng = random.Random(6)
        graph = random_graph(rng, num_docs=4, max_depth=4)
        params = HDILParams(rank_fraction=0.01, min_rank_entries=1)
        evaluators, _ = build_evaluators(graph, hdil_params=params)
        dil = evaluators["dil"].evaluate(["alpha"], m=50)
        hdil = evaluators["hdil"].evaluate(["alpha"], m=50)
        assert top_ranks(hdil) == pytest.approx(top_ranks(dil), rel=1e-6)


class TestValidation:
    def test_empty_query_rejected(self, figure1_graph):
        evaluators, _ = build_evaluators(figure1_graph)
        for evaluator in evaluators.values():
            with pytest.raises(QueryError):
                evaluator.evaluate([], m=5)

    def test_bad_m_rejected(self, figure1_graph):
        evaluators, _ = build_evaluators(figure1_graph)
        for evaluator in evaluators.values():
            with pytest.raises(QueryError):
                evaluator.evaluate(["xql"], m=0)

    def test_unknown_keyword_empty_result(self, figure1_graph):
        evaluators, _ = build_evaluators(figure1_graph)
        for evaluator in evaluators.values():
            assert evaluator.evaluate(["zzzz", "xql"], m=5) == []


class TestHDILEstimators:
    @pytest.mark.parametrize("estimator", ["paper", "threshold-slope"])
    def test_both_estimators_return_correct_topm(self, estimator):
        rng = random.Random(9)
        graph = random_graph(rng, num_docs=4, max_depth=4)
        params = HDILParams(estimator=estimator, monitor_interval=2)
        evaluators, _ = build_evaluators(graph, hdil_params=params)
        assert_same_topm(evaluators, ["alpha", "beta"], m=5)

    def test_bad_estimator_rejected(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            HDILParams(estimator="crystal-ball")
