"""DIL query processing (paper Section 4.2.2, Figure 5).

A single sequential pass over the query keywords' Dewey-ordered inverted
lists: merge by Dewey ID, maintain the Dewey stack, and keep the top-m
results in a bounded heap.  Cost is dominated by the full sequential scan of
every keyword's list — flat in the number of requested results ``m`` and in
keyword correlation, which is exactly why DIL wins on uncorrelated keywords
(Figure 11) and loses to RDIL on correlated ones (Figure 10).

The single-keyword query is the paper's "(simple) special case": every
posting is its own most-specific result with rank ``ElemRank`` (proximity of
one keyword is 1), so the pass reduces to a top-m selection over the list.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import RankingParams
from ..index.dil import DILIndex
from ..obs import NOOP_SPAN
from ..obs.profile import active_profile
from .merge import conjunctive_merge
from .results import QueryResult, ResultHeap, validate_query
from .streams import PostingStream


class DILEvaluator:
    """Evaluates conjunctive keyword queries against a :class:`DILIndex`.

    ``list_cache`` (optional, attached by the serving layer) is a
    :class:`repro.service.cache.GenerationalLRU` holding decoded posting
    lists; when present, hot lists are decoded once and reused across
    queries instead of being re-read from the simulated disk.
    """

    def __init__(self, index: DILIndex, params: Optional[RankingParams] = None):
        self.index = index
        self.params = params or RankingParams()
        self.list_cache = None

    def _stream(self, keyword: str) -> PostingStream:
        if self.list_cache is not None:
            postings = _profiled_get_or_load(
                self.list_cache,
                (self.index.kind, "full", keyword),
                lambda: _drain_cursor(self.index.cursor(keyword)),
            )
            return PostingStream.from_decoded(postings, self.index.deleted_docs)
        return PostingStream.from_cursor(
            self.index.cursor(keyword), self.index.deleted_docs
        )

    def _traced_stream(self, keyword: str, span) -> PostingStream:
        """One keyword's stream, reporting its load I/O into ``span``.

        With a list cache attached, ``get_or_load`` decodes the whole
        list eagerly, so the I/O delta captured here is the real cost of
        a cache miss (and an empty delta *is* the cache hit); without a
        cache, cursors read lazily during the merge and the per-list
        span records structure only.
        """
        with span.child("postings", keyword=keyword) as list_span:
            before = (
                self.index.disk.stats.snapshot()
                if list_span.recording
                else None
            )
            stream = self._stream(keyword)
            if before is not None:
                list_span.attach_io(
                    self.index.disk.stats.delta_since(before)
                )
        return stream

    def evaluate(
        self,
        keywords: Sequence[str],
        m: int = 10,
        weights: Optional[Sequence[float]] = None,
        deadline=None,
        span=None,
    ) -> List[QueryResult]:
        """Top-m results for the conjunctive query ``keywords``.

        ``weights`` optionally scales each keyword's contribution to the
        overall rank (one positive weight per keyword).  ``deadline`` is an
        optional ``poll() -> bool`` object; on expiry the partial top-m
        found so far is returned (the serving layer flags it degraded).
        ``span`` (optional) receives per-posting-list child spans.
        """
        validate_query(keywords, m, weights)
        self.index._require_built()
        span = span or NOOP_SPAN

        if len(keywords) == 1:
            scale = weights[0] if weights else 1.0
            return self._evaluate_single(
                keywords[0], m, scale, deadline, span=span
            )

        streams = [
            self._traced_stream(keyword, span) for keyword in keywords
        ]
        heap = ResultHeap(m)
        for result in conjunctive_merge(
            streams,
            self.params,
            list(weights) if weights else None,
            deadline=deadline,
        ):
            heap.add(result)
        return heap.results()

    def _evaluate_single(
        self, keyword: str, m: int, scale: float = 1.0, deadline=None,
        span=NOOP_SPAN,
    ) -> List[QueryResult]:
        stream = self._traced_stream(keyword, span)
        heap = ResultHeap(m)
        while not stream.eof:
            if deadline is not None and deadline.poll():
                break
            posting = stream.next()
            heap.add(
                QueryResult(
                    rank=posting.elemrank * scale,
                    dewey=posting.dewey,
                    keyword_ranks=(posting.elemrank,),
                )
            )
        return heap.results()


def _profiled_get_or_load(cache, key, loader):
    """``cache.get_or_load`` with per-query hit/miss attribution.

    The generational cache's own counters are cumulative across every
    query and thread; the active :class:`~repro.obs.profile.
    QueryProfile` wants *this* query's share, so the miss is detected by
    observing whether the loader actually ran.
    """
    profile = active_profile()
    if profile is None:
        return cache.get_or_load(key, loader)
    loaded = []

    def counting_loader():
        loaded.append(True)
        return loader()

    value = cache.get_or_load(key, counting_loader)
    if loaded:
        profile.list_cache_misses += 1
    else:
        profile.list_cache_hits += 1
    return value


def _drain_cursor(cursor) -> List:
    """Decode a whole inverted list (the posting-list cache's loader).

    Deliberately deadline-free: a partially drained list must never land
    in the generational cache (later queries would silently see a
    truncated index), so the loader runs to completion and the *consumer*
    of the cached list polls the deadline instead.
    """
    from ..index.postings import Posting

    postings: List = []
    if cursor is None:
        return postings
    while not cursor.eof:  # repro: ignore[deadline-discipline]
        postings.append(Posting.decode(cursor.next()))
    return postings
