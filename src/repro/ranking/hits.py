"""HITS hubs-and-authorities over the element graph (paper Section 3.1 fn 1).

The paper's footnote notes that its containment-edge refinements "also work
for query-dependent algorithms like HITS [24]": authority flows along edges
in one direction and hub value along the reverse.  This module provides

* :func:`hits` — classic Kleinberg HITS on an arbitrary directed graph, and
* :func:`element_hits` — HITS over a collection's combined edge set
  (hyperlinks plus, optionally, containment edges in both directions, the
  paper's bidirectional-coupling argument applied to HITS).

Scores are L2-normalized per iteration, the standard formulation; the
authority vector can be plugged into :class:`repro.index.IndexBuilder`
through ``extract_direct_postings``'s score hook if a query-dependent
pipeline materializes per-query subgraphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConvergenceError
from ..xmlmodel.graph import CollectionGraph


@dataclass
class HITSResult:
    authorities: np.ndarray
    hubs: np.ndarray
    iterations: int
    converged: bool
    residual: float


def hits(
    num_nodes: int,
    edges: Sequence[Tuple[int, int]],
    threshold: float = 1e-8,
    max_iterations: int = 200,
    raise_on_divergence: bool = False,
) -> HITSResult:
    """Kleinberg's HITS by alternating power iteration."""
    if num_nodes == 0:
        empty = np.zeros(0)
        return HITSResult(empty, empty, 0, True, 0.0)
    sources = np.fromiter((s for s, _ in edges), dtype=np.int64, count=len(edges))
    targets = np.fromiter((t for _, t in edges), dtype=np.int64, count=len(edges))

    authorities = np.full(num_nodes, 1.0 / np.sqrt(num_nodes))
    hubs = authorities.copy()
    residual = 0.0
    for iteration in range(1, max_iterations + 1):
        new_authorities = np.zeros(num_nodes)
        if len(sources):
            np.add.at(new_authorities, targets, hubs[sources])
        norm = np.linalg.norm(new_authorities)
        if norm > 0:
            new_authorities /= norm

        new_hubs = np.zeros(num_nodes)
        if len(sources):
            np.add.at(new_hubs, sources, new_authorities[targets])
        norm = np.linalg.norm(new_hubs)
        if norm > 0:
            new_hubs /= norm

        residual = float(
            np.abs(new_authorities - authorities).sum()
            + np.abs(new_hubs - hubs).sum()
        )
        authorities, hubs = new_authorities, new_hubs
        if residual < threshold:
            return HITSResult(authorities, hubs, iteration, True, residual)
    if raise_on_divergence:
        raise ConvergenceError(
            f"HITS did not converge in {max_iterations} iterations"
        )
    return HITSResult(authorities, hubs, max_iterations, False, residual)


def element_hits(
    graph: CollectionGraph,
    include_containment: bool = True,
    threshold: float = 1e-8,
    max_iterations: int = 200,
) -> HITSResult:
    """HITS over a collection's elements.

    With ``include_containment`` the edge set is ``HE ∪ CE ∪ CE^-1`` — the
    bidirectional containment coupling of Section 3.1 carried over to HITS;
    without it, only hyperlink edges participate (pure Kleinberg on the
    element graph).
    """
    if not graph.finalized:
        graph.finalize()
    edges: List[Tuple[int, int]] = list(graph.hyperlink_edges)
    if include_containment:
        for child_index, parent_index in enumerate(graph.parent_index):
            if parent_index >= 0:
                edges.append((parent_index, child_index))
                edges.append((child_index, parent_index))
    return hits(len(graph.elements), edges, threshold, max_iterations)
