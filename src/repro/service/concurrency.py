"""A writer-preference reader-writer lock for the serving layer.

``XRankEngine`` is plain single-threaded Python: two concurrent
``search()`` calls share cursor state on one simulated disk, and a
``search()`` racing an ``add_document()`` can observe half-built indexes.
The service therefore brackets every query in a *read* lock and every
corpus/index mutation in a *write* lock: any number of readers proceed
concurrently, writers are exclusive.

Writer preference — readers arriving while a writer waits queue behind
it — keeps update latency bounded under heavy query traffic (a steady
stream of readers can otherwise starve writers forever).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """Many concurrent readers / one exclusive writer, writer preference."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- read side -------------------------------------------------------------

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then enter."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self):
        """``with lock.read(): ...`` — shared access."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    # -- write side ------------------------------------------------------------

    def acquire_write(self) -> None:
        """Block until all readers drain and no other writer holds the lock."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write(self):
        """``with lock.write(): ...`` — exclusive access."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # -- introspection -----------------------------------------------------------

    def state(self) -> dict:
        """Snapshot for /stats: active readers, writer, waiting writers."""
        with self._cond:
            return {
                "active_readers": self._readers,
                "writer_active": self._writer_active,
                "writers_waiting": self._writers_waiting,
            }
