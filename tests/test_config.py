"""Validation tests for every configuration dataclass."""

import pytest

from repro.config import (
    ElemRankParams,
    HDILParams,
    RankingParams,
    StorageParams,
    XRankConfig,
)
from repro.errors import QueryError


class TestElemRankParams:
    def test_defaults_are_the_papers(self):
        params = ElemRankParams()
        assert (params.d1, params.d2, params.d3) == (0.35, 0.25, 0.25)
        assert params.threshold == 2e-5
        assert params.random_jump == pytest.approx(0.15)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"d1": 1.0},
            {"d1": -0.01},
            {"d1": 0.5, "d2": 0.5, "d3": 0.1},
            {"d1": 0.0, "d2": 0.0, "d3": 0.0},
            {"threshold": 0.0},
            {"threshold": -1.0},
            {"max_iterations": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(QueryError):
            ElemRankParams(**kwargs)

    def test_frozen(self):
        params = ElemRankParams()
        with pytest.raises(AttributeError):
            params.d1 = 0.5


class TestRankingParams:
    def test_defaults(self):
        params = RankingParams()
        assert params.decay == 0.75
        assert params.aggregation == "max"
        assert params.use_proximity

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"decay": 0.0},
            {"decay": -0.5},
            {"decay": 1.0001},
            {"aggregation": "mean"},
            {"aggregation": ""},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(QueryError):
            RankingParams(**kwargs)

    def test_decay_one_allowed(self):
        assert RankingParams(decay=1.0).decay == 1.0

    def test_sum_aggregation_allowed(self):
        assert RankingParams(aggregation="sum").aggregation == "sum"


class TestStorageParams:
    def test_defaults(self):
        params = StorageParams()
        assert params.page_size == 4096
        assert params.buffer_pool_pages == 256

    @pytest.mark.parametrize(
        "kwargs", [{"page_size": 32}, {"buffer_pool_pages": 0}]
    )
    def test_invalid(self, kwargs):
        with pytest.raises(QueryError):
            StorageParams(**kwargs)


class TestHDILParams:
    def test_defaults(self):
        params = HDILParams()
        assert 0 < params.rank_fraction <= 1
        assert params.min_rank_entries >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank_fraction": 0.0},
            {"rank_fraction": 1.5},
            {"min_rank_entries": 0},
            {"monitor_interval": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(QueryError):
            HDILParams(**kwargs)


class TestXRankConfig:
    def test_bundles_defaults(self):
        config = XRankConfig()
        assert isinstance(config.elemrank, ElemRankParams)
        assert isinstance(config.ranking, RankingParams)
        assert isinstance(config.storage, StorageParams)
        assert isinstance(config.hdil, HDILParams)

    def test_custom_components(self):
        config = XRankConfig(ranking=RankingParams(decay=0.5))
        assert config.ranking.decay == 0.5
        assert config.elemrank.d1 == 0.35
