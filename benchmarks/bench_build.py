"""Parallel index-construction benchmark.

Builds the same generated DBLP corpus twice — sequentially and through the
sharded multi-process pipeline (:mod:`repro.build`) at increasing worker
counts — and reports wall-clock, docs/sec, speedup and peak RSS, plus the
result of the byte-identity battery (:mod:`repro.build.verify`) for every
parallel run.  Results go to ``BENCH_build.json`` at the repository root.

Honesty note: the speedup numbers are only meaningful when the machine
actually has spare cores.  The report records ``cpus`` (the scheduler
affinity count, not just ``os.cpu_count()``), and the speedup acceptance
assertion is gated on it — on a single-core box the parallel runs *cannot*
beat sequential and the benchmark only asserts identity, which must hold
everywhere.

Run standalone (as CI's bench-smoke lane does)::

    PYTHONPATH=src python benchmarks/bench_build.py --tiny --out BENCH_build.json
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.build.verify import compare_engines, default_probe_queries
from repro.datasets.dblp import generate_dblp
from repro.engine import XRankEngine

NUM_PAPERS = 300
WORKER_COUNTS = (2, 4)
TINY_PAPERS = 40
TINY_WORKER_COUNTS = (2,)
#: Required speedup at the highest worker count — asserted only when the
#: box has at least that many usable cores.
SPEEDUP_TARGET = 1.7
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_build.json"


def usable_cpus() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _peak_rss_kb() -> int:
    """High-water RSS of this process plus all reaped children, in KiB."""
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(max(own, kids))


def _corpus_sources(num_papers: int) -> List[Tuple[str, str]]:
    corpus = generate_dblp(num_papers=num_papers, seed=17)
    return [
        (source, document.uri)
        for source, document in zip(corpus.sources, corpus.documents)
    ]


def _timed_build(
    sources: Sequence[Tuple[str, str]], workers: int
) -> Tuple[XRankEngine, Dict[str, object]]:
    engine = XRankEngine()
    started = time.perf_counter()
    engine.build(kinds=["hdil"], corpus=list(sources), workers=workers)
    elapsed = time.perf_counter() - started
    stats = engine.last_build_stats
    run = {
        "workers": workers,
        "elapsed_s": round(elapsed, 4),
        "docs_per_s": round(len(sources) / elapsed, 2) if elapsed else None,
        "peak_rss_kb": _peak_rss_kb(),
    }
    if stats is not None:
        run["shards"] = stats.shards
        run["parse_s"] = round(stats.parse_seconds, 4)
        run["extract_s"] = round(stats.extract_seconds, 4)
        run["merge_s"] = round(stats.merge_seconds, 4)
    return engine, run


def run_benchmark(
    num_papers: int = NUM_PAPERS,
    worker_counts: Sequence[int] = WORKER_COUNTS,
) -> Dict[str, object]:
    """Build sequentially and at each worker count; return the report."""
    sources = _corpus_sources(num_papers)
    cpus = usable_cpus()

    sequential_engine, sequential = _timed_build(sources, workers=1)
    queries = default_probe_queries(sequential_engine, count=3)

    parallel_runs: List[Dict[str, object]] = []
    for workers in worker_counts:
        engine, run = _timed_build(sources, workers=workers)
        problems = compare_engines(sequential_engine, engine, queries=queries)
        run["identical"] = not problems
        if problems:
            run["identity_problems"] = problems
        elapsed = run["elapsed_s"]
        run["speedup"] = (
            round(sequential["elapsed_s"] / elapsed, 2) if elapsed else None
        )
        parallel_runs.append(run)

    best_speedup = max(
        (run["speedup"] for run in parallel_runs if run["speedup"]),
        default=None,
    )
    max_workers = max(worker_counts) if worker_counts else 1
    return {
        "benchmark": "parallel_build",
        "corpus": {"kind": "dblp", "papers": num_papers, "index": "hdil"},
        "cpus": cpus,
        "probe_queries": queries,
        "sequential": sequential,
        "parallel": parallel_runs,
        "best_speedup": best_speedup,
        "identical": all(run["identical"] for run in parallel_runs),
        "speedup_target": SPEEDUP_TARGET,
        #: Speedup is a pass/fail criterion only when the cores exist.
        "speedup_gated": cpus < max_workers,
    }


def check_report(report: Dict[str, object]) -> List[str]:
    """Acceptance failures for a report; empty means the benchmark passed."""
    failures: List[str] = []
    if not report["identical"]:
        for run in report["parallel"]:
            for problem in run.get("identity_problems", []):
                failures.append(f"workers={run['workers']}: {problem}")
    if not report["speedup_gated"]:
        best = report["best_speedup"] or 0.0
        if best < SPEEDUP_TARGET:
            failures.append(
                f"best speedup {best} < target {SPEEDUP_TARGET} despite "
                f"{report['cpus']} usable cores"
            )
    return failures


def _summary_line(report: Dict[str, object]) -> str:
    sequential = report["sequential"]
    runs = ", ".join(
        f"w{run['workers']}: {run['docs_per_s']} docs/s "
        f"(x{run['speedup']}, {'ok' if run['identical'] else 'DIFFERS'})"
        for run in report["parallel"]
    )
    gate = " [speedup gate off: too few cores]" if report["speedup_gated"] else ""
    return (
        f"build bench on {report['cpus']} cpu(s): sequential "
        f"{sequential['docs_per_s']} docs/s; {runs}{gate}"
    )


# -- pytest entry point ------------------------------------------------------------


def test_parallel_build_benchmark(capsys):
    import pytest

    _ = pytest  # collected under the benchmarks suite; plain assert API
    report = run_benchmark()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    with capsys.disabled():
        print(f"\n{_summary_line(report)} -> {OUTPUT.name}")
    failures = check_report(report)
    assert not failures, failures


# -- standalone entry point (CI bench-smoke) ---------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help=f"smoke-test scale ({TINY_PAPERS} papers, workers "
        f"{list(TINY_WORKER_COUNTS)})",
    )
    parser.add_argument(
        "--papers", type=int, default=None, help="override corpus size"
    )
    parser.add_argument(
        "--workers",
        type=str,
        default=None,
        help="comma-separated parallel worker counts (default: 2,4)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT, help="report destination"
    )
    args = parser.parse_args(argv)

    papers = args.papers or (TINY_PAPERS if args.tiny else NUM_PAPERS)
    if args.workers:
        worker_counts = tuple(
            int(part) for part in args.workers.split(",") if part.strip()
        )
    else:
        worker_counts = TINY_WORKER_COUNTS if args.tiny else WORKER_COUNTS

    report = run_benchmark(num_papers=papers, worker_counts=worker_counts)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(_summary_line(report))
    print(f"wrote {args.out}")
    failures = check_report(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
