"""Cross-module integration tests: full pipeline on realistic corpora,
cold vs warm cache, deletes across index kinds, paper-shape sanity."""

import pytest

from repro.bench.harness import IndexedCorpus
from repro.config import RankingParams, StorageParams
from repro.datasets.dblp import generate_dblp
from repro.datasets.textgen import PlantedKeywords
from repro.datasets.xmark import generate_xmark
from repro.engine import XRankEngine


@pytest.fixture(scope="module")
def dblp_indexed():
    plan = PlantedKeywords.default()
    plan.correlated_rate = 0.5
    plan.independent_rate = 0.7
    corpus = generate_dblp(num_papers=300, seed=21, planted=plan)
    return IndexedCorpus(
        corpus,
        storage=StorageParams(page_size=1024, buffer_pool_pages=32),
    ), plan


@pytest.mark.slow
class TestCrossIndexAgreement:
    def test_dewey_family_agrees_on_real_corpus(self, dblp_indexed):
        indexed, plan = dblp_indexed
        queries = [
            plan.correlated_groups[0][:2],
            plan.correlated_groups[1][:3],
            ["article", plan.correlated_groups[0][0]],
        ]
        for query in queries:
            dil = indexed.evaluators["dil"].evaluate(query, m=10)
            rdil = indexed.evaluators["rdil"].evaluate(query, m=10)
            hdil = indexed.evaluators["hdil"].evaluate(query, m=10)
            dil_ranks = [round(r.rank, 8) for r in dil]
            assert [round(r.rank, 8) for r in rdil] == pytest.approx(dil_ranks, rel=1e-5)
            assert [round(r.rank, 8) for r in hdil] == pytest.approx(dil_ranks, rel=1e-5)

    def test_naive_superset_of_dewey_results(self, dblp_indexed):
        indexed, plan = dblp_indexed
        query = plan.correlated_groups[0][:2]
        dewey_hits = indexed.evaluators["dil"].evaluate(query, m=1000)
        naive_hits = indexed.evaluators["naive-id"].evaluate(query, m=100000)
        graph = indexed.corpus.graph
        naive_ids = {r.elem_id for r in naive_hits}
        for hit in dewey_hits:
            assert graph.index_of[hit.dewey] in naive_ids


class TestCacheBehaviour:
    def test_warm_cache_cheaper_than_cold(self, dblp_indexed):
        indexed, plan = dblp_indexed
        query = plan.correlated_groups[0][:2]
        cold = indexed.measure("rdil", query, m=10).cost_ms
        # Re-run without dropping the cache.
        index = indexed.indexes["rdil"]
        index.disk.reset_stats()
        indexed.evaluators["rdil"].evaluate(list(query), m=10)
        warm = index.io_cost_ms()
        assert warm < cold

    def test_dil_scan_mostly_sequential(self, dblp_indexed):
        indexed, plan = dblp_indexed
        query = plan.correlated_groups[0][:2]
        measurement = indexed.measure("dil", query, m=10)
        assert measurement.io.sequential_reads > measurement.io.random_reads

    def test_rdil_mostly_random(self, dblp_indexed):
        indexed, plan = dblp_indexed
        query = plan.correlated_groups[0][:2]
        measurement = indexed.measure("rdil", query, m=10)
        assert measurement.io.random_reads >= measurement.io.sequential_reads


class TestEndToEndEngine:
    def test_engine_over_generated_corpora(self):
        engine = XRankEngine()
        dblp = generate_dblp(num_papers=40, seed=31, plant_anecdotes=True)
        for document in dblp.documents:
            engine.add_document(document)
        engine.build(kinds=["hdil"])
        hits = engine.search("gray", m=5)
        assert hits
        assert all(hits[i].rank >= hits[i + 1].rank for i in range(len(hits) - 1))

    def test_engine_over_xmark(self):
        engine = XRankEngine()
        corpus = generate_xmark(
            num_items=30, num_auctions=40, seed=8, plant_anecdotes=True
        )
        for document in corpus.documents:
            engine.add_document(document)
        engine.build(kinds=["dil"])
        hits = engine.search("stained mirror", kind="dil")
        assert hits
        assert hits[0].tag == "item"

    def test_delete_then_rebuild_reclaims(self):
        engine = XRankEngine()
        first = engine.add_xml("<a>unique-alpha</a>")
        engine.add_xml("<b>unique-beta</b>")
        engine.build(kinds=["dil"])
        engine.delete_document(first)
        assert engine.search("unique alpha", kind="dil") == []
        # Rebuild drops the tombstone and the deleted document's postings.
        engine.graph.remove_document(first)
        engine.build(kinds=["dil"])
        assert engine.search("unique alpha", kind="dil") == []
        assert engine.search("unique beta", kind="dil")


class TestRankingShape:
    def test_specific_results_rank_above_shallow(self, dblp_indexed):
        """Two keywords inside one small element should produce results
        whose top hit is deep (specific), not a document root."""
        indexed, plan = dblp_indexed
        query = plan.correlated_groups[0][:2]
        hits = indexed.evaluators["dil"].evaluate(query, m=5)
        assert hits[0].dewey.depth >= 1

    def test_sum_aggregation_not_below_max(self, dblp_indexed):
        indexed, plan = dblp_indexed
        query = plan.correlated_groups[0][:2]
        from repro.query.dil_eval import DILEvaluator

        max_eval = DILEvaluator(
            indexed.indexes["dil"], RankingParams(aggregation="max")
        )
        sum_eval = DILEvaluator(
            indexed.indexes["dil"], RankingParams(aggregation="sum")
        )
        best_max = max_eval.evaluate(query, m=1)[0]
        best_sum = sum_eval.evaluate(query, m=1)[0]
        assert best_sum.rank >= best_max.rank - 1e-12
