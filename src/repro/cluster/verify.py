"""Cluster vs single-node identity: the distribution-correctness gate.

The cluster's contract is that distribution is *invisible* in the
answers: for any shard count, a fault-free cluster returns bit-for-bit
the ranked results a single-node engine over the same corpus returns —
same Dewey IDs, same float ranks, same order, same snippets.  This
module is the one place that contract is checked, in the style of
:mod:`repro.build.verify`: it runs a seeded DBLP corpus and workload
through real HTTP workers at shard counts {1, 2, 4} and diffs every
response against the oracle.  ``repro cluster --check`` and
``repro check --strict`` both call :func:`verify_cluster_identity`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..build.shard import DocumentSpec
from ..config import XRankConfig
from ..datasets.dblp import generate_dblp
from ..datasets.workloads import random_queries
from ..engine import XRankEngine
from ..service.core import XRankService
from .local import LocalCluster
from .worker import DEFAULT_CLUSTER_KINDS, parse_spec

#: The battery's shard counts: trivial (1 = pure overhead check), even
#: split, and more shards than some corpora have large documents.
DEFAULT_SHARD_COUNTS = (1, 2, 4)


def default_cluster_corpus(
    num_papers: int = 36, seed: int = 23, num_queries: int = 6
) -> Tuple[List[DocumentSpec], List[str]]:
    """Seeded DBLP corpus + mixed-selectivity keyword workload."""
    corpus = generate_dblp(num_papers, seed=seed)
    specs = [
        DocumentSpec(doc_id=document.doc_id, uri=document.uri, source=source)
        for document, source in zip(corpus.documents, corpus.sources)
    ]
    queries: List[str] = []
    for band in ("high", "medium"):
        workload = random_queries(
            corpus.graph,
            num_keywords=2,
            num_queries=max(1, num_queries // 2),
            selectivity_band=band,
            seed=seed * 7 + len(band),
        )
        queries.extend(" ".join(keywords) for keywords in workload)
    return specs, queries


def single_node_oracle(
    specs: Sequence[DocumentSpec],
    kinds: Sequence[str] = DEFAULT_CLUSTER_KINDS,
    config: Optional[XRankConfig] = None,
) -> XRankService:
    """One engine over the whole corpus, parsed exactly as workers parse.

    Built through the same ``parse_spec`` the shard workers use (same doc
    ids, same URIs) and the normal full-graph ElemRank path — the answers
    every cluster topology must reproduce.
    """
    engine = XRankEngine(config=config)
    for spec in sorted(specs, key=lambda s: s.doc_id):
        engine.add_document(parse_spec(spec))
    engine.build(kinds=kinds)
    return XRankService(engine, kinds=kinds)


def compare_responses(
    oracle_payload: dict, cluster_payload: dict, context: str
) -> List[str]:
    """Bit-for-bit comparison of two serialized ``results`` lists."""
    problems: List[str] = []
    oracle_hits = oracle_payload["results"]
    cluster_hits = cluster_payload["results"]
    if len(oracle_hits) != len(cluster_hits):
        return [
            f"{context}: {len(oracle_hits)} oracle hits vs "
            f"{len(cluster_hits)} cluster hits"
        ]
    for position, (expected, actual) in enumerate(
        zip(oracle_hits, cluster_hits)
    ):
        if expected != actual:
            keys = [
                key
                for key in expected
                if expected.get(key) != actual.get(key)
            ]
            problems.append(
                f"{context}: hit {position} differs on {keys} "
                f"(oracle {expected.get('dewey')}@{expected.get('rank')!r}, "
                f"cluster {actual.get('dewey')}@{actual.get('rank')!r})"
            )
            break
    return problems


def verify_cluster_identity(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    replicas: int = 1,
    kinds: Sequence[str] = DEFAULT_CLUSTER_KINDS,
    m: int = 10,
    num_papers: int = 36,
    seed: int = 23,
    specs: Optional[Sequence[DocumentSpec]] = None,
    queries: Optional[Sequence[str]] = None,
    config: Optional[XRankConfig] = None,
) -> List[str]:
    """Run the full identity battery; an empty list means identical.

    For every shard count and index kind, every workload query's cluster
    response must equal the single-node oracle's — including a paging
    probe (``offset=m//2``) and an OR-mode probe, and the fault-free
    cluster must never flag ``degraded`` or report missing shards.
    """
    if specs is None or queries is None:
        default_specs, default_queries = default_cluster_corpus(
            num_papers, seed
        )
        specs = specs if specs is not None else default_specs
        queries = queries if queries is not None else default_queries
    oracle = single_node_oracle(specs, kinds=kinds, config=config)

    problems: List[str] = []
    for num_shards in shard_counts:
        with LocalCluster(
            specs,
            num_shards=num_shards,
            replicas=replicas,
            kinds=kinds,
            config=config,
        ) as cluster:
            for kind in kinds:
                for number, query in enumerate(queries):
                    probes = [dict(m=m, kind=kind)]
                    if number == 0:
                        probes.append(dict(m=m, kind=kind, offset=m // 2))
                        probes.append(dict(m=m, kind=kind, mode="or"))
                    for options in probes:
                        context = (
                            f"shards={num_shards} kind={kind} "
                            f"query={query!r} options={options}"
                        )
                        expected = oracle.search(query, **options).to_dict()
                        actual = cluster.search(query, **options).to_dict()
                        if actual["degraded"]:
                            problems.append(
                                f"{context}: fault-free cluster flagged "
                                "degraded"
                            )
                        if actual["cluster"]["missing_shards"]:
                            problems.append(
                                f"{context}: fault-free cluster missing "
                                f"shards {actual['cluster']['missing_shards']}"
                            )
                        problems.extend(
                            compare_responses(expected, actual, context)
                        )
                        if len(problems) >= 10:
                            problems.append(
                                "... (further differences suppressed)"
                            )
                            return problems
    return problems
