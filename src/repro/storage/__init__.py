"""Storage substrate: simulated page-oriented disk, LRU buffer pool, I/O
cost model, inverted-list files, disk-resident B+-trees and hash indexes.

The paper implemented "our own inverted list and index structures" after
finding commercial B+-trees could not express longest-common-prefix probes
or the space optimizations of Sections 4.3.1 and 4.4.1; this package is the
equivalent substrate, instrumented so queries can be measured in simulated
I/O cost independent of the host machine.
"""

from .btree import BTree, MutableBTree, SharedPageWriter
from .disk import BufferPool, SimulatedDisk
from .hashindex import HashIndex
from .iostats import IOStats
from .listfile import ListCursor, ListFile, frame_record
from .records import RecordReader, RecordWriter, pack_into_pages, unpack_page

__all__ = [
    "BTree",
    "BufferPool",
    "MutableBTree",
    "HashIndex",
    "IOStats",
    "ListCursor",
    "ListFile",
    "RecordReader",
    "RecordWriter",
    "SharedPageWriter",
    "SimulatedDisk",
    "frame_record",
    "pack_into_pages",
    "unpack_page",
]
