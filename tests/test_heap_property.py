"""Property tests for the bounded result heap."""

from hypothesis import given, strategies as st

from repro.query.results import QueryResult, ResultHeap
from repro.xmlmodel.dewey import DeweyId


def make_results(ranks):
    return [
        QueryResult(rank=rank, dewey=DeweyId((i,)))
        for i, rank in enumerate(ranks)
    ]


@given(
    st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=60),
    st.integers(min_value=1, max_value=10),
)
def test_heap_keeps_exactly_the_topm(ranks, capacity):
    heap = ResultHeap(capacity)
    results = make_results(ranks)
    for result in results:
        heap.add(result)
    got = [r.rank for r in heap.results()]
    expected = sorted(ranks, reverse=True)[:capacity]
    assert got == expected


@given(
    st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=60),
    st.integers(min_value=1, max_value=10),
)
def test_results_descending_and_kth_rank(ranks, capacity):
    heap = ResultHeap(capacity)
    for result in make_results(ranks):
        heap.add(result)
    got = heap.results()
    assert all(a.rank >= b.rank for a, b in zip(got, got[1:]))
    if len(ranks) >= capacity:
        assert heap.full
        assert heap.kth_rank() == got[-1].rank
    else:
        assert heap.kth_rank() == float("-inf")


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=30))
def test_tie_handling_consistent_across_capacities(capacity, count):
    """With all-equal ranks, the surviving set must be the earliest arrivals
    and presentation must match arrival order — the invariant pagination
    relies on."""
    results = make_results([1.0] * count)
    heap = ResultHeap(capacity)
    for result in results:
        heap.add(result)
    got_ids = [r.dewey.components[0] for r in heap.results()]
    assert got_ids == list(range(min(capacity, count)))


def test_add_reports_whether_entered():
    heap = ResultHeap(2)
    assert heap.add(make_results([5.0])[0])
    assert heap.add(make_results([7.0])[0])
    low = QueryResult(rank=1.0, dewey=DeweyId((9,)))
    assert not heap.add(low)
    high = QueryResult(rank=9.0, dewey=DeweyId((8,)))
    assert heap.add(high)
    assert [r.rank for r in heap.results()] == [9.0, 7.0]
