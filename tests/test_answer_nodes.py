"""Tests for answer-node filtering and ancestor context navigation."""

from repro.config import RankingParams
from repro.index.builder import IndexBuilder
from repro.query.answer_nodes import AnswerNodeFilter, ancestor_context
from repro.query.dil_eval import DILEvaluator
from repro.query.results import QueryResult
from repro.xmlmodel.graph import CollectionGraph
from repro.xmlmodel.html import parse_html
from repro.xmlmodel.parser import parse_xml


def search(graph, keywords, m=20):
    builder = IndexBuilder(graph)
    return DILEvaluator(builder.build_dil()).evaluate(keywords, m=m)


class TestAncestorContext:
    def test_chain(self, figure1_graph):
        subsection = figure1_graph.documents[5].root.find_first("subsection")
        chain = ancestor_context(figure1_graph, subsection.dewey)
        assert [tag for _, tag in chain] == [
            "section", "body", "paper", "proceedings", "workshop",
        ]

    def test_missing_element(self, figure1_graph):
        from repro.xmlmodel.dewey import DeweyId

        assert ancestor_context(figure1_graph, DeweyId.parse("5.99.99")) == []


class TestAnswerNodeFilter:
    def test_drop_mode(self, figure1_graph):
        results = search(figure1_graph, ["xql", "language"])
        filtered = AnswerNodeFilter(answer_tags={"subsection"}).apply(
            results, figure1_graph, promote=False
        )
        tags = {
            figure1_graph.element_by_dewey(r.dewey).tag for r in filtered
        }
        assert tags == {"subsection"}

    def test_promotion_to_nearest_answer_ancestor(self, figure1_graph):
        results = search(figure1_graph, ["xql", "language"])
        filtered = AnswerNodeFilter(
            answer_tags={"workshop", "section", "subsection"}
        ).apply(results, figure1_graph, RankingParams())
        tags = [figure1_graph.element_by_dewey(r.dewey).tag for r in filtered]
        # The abstract result promotes up to <workshop>; subsection stays.
        assert "subsection" in tags
        assert "workshop" in tags

    def test_promotion_decays_rank(self, figure1_graph):
        results = search(figure1_graph, ["xql", "language"])
        params = RankingParams(decay=0.5)
        answer_filter = AnswerNodeFilter(answer_tags={"workshop"})
        promoted = answer_filter.apply(results, figure1_graph, params)
        original_best = max(r.rank for r in results)
        assert all(r.rank < original_best for r in promoted)

    def test_duplicate_promotions_keep_best(self, figure1_graph):
        results = search(figure1_graph, ["xql", "language"])
        answer_filter = AnswerNodeFilter(answer_tags={"workshop"})
        promoted = answer_filter.apply(results, figure1_graph, RankingParams())
        deweys = [str(r.dewey) for r in promoted]
        assert len(deweys) == len(set(deweys)) == 1

    def test_all_tags_allowed_by_default(self, figure1_graph):
        results = search(figure1_graph, ["xql", "language"])
        passthrough = AnswerNodeFilter().apply(results, figure1_graph)
        assert len(passthrough) == len(results)

    def test_predicate(self, figure1_graph):
        results = search(figure1_graph, ["xql", "language"])
        answer_filter = AnswerNodeFilter(
            predicate=lambda e: e.dewey.depth <= 4
        )
        filtered = answer_filter.apply(results, figure1_graph, promote=False)
        assert all(r.dewey.depth <= 4 for r in filtered)


class TestHTMLRootOnly:
    def test_html_results_forced_to_root(self):
        graph = CollectionGraph()
        graph.add_document(
            parse_html("<p>alpha</p><p>beta</p>", doc_id=0, uri="page")
        )
        graph.finalize()
        results = search(graph, ["alpha", "beta"])
        answer_filter = AnswerNodeFilter()
        filtered = answer_filter.apply(results, graph)
        assert len(filtered) == 1
        assert filtered[0].dewey.components == (0,)

    def test_xml_unaffected_by_html_rule(self, figure1_graph):
        results = search(figure1_graph, ["xql", "language"])
        filtered = AnswerNodeFilter().apply(results, figure1_graph)
        assert {str(r.dewey) for r in filtered} == {
            str(r.dewey) for r in results
        }

    def test_naive_results_without_dewey_skipped(self, figure1_graph):
        answer_filter = AnswerNodeFilter()
        results = [QueryResult(rank=1.0, elem_id=3)]
        assert answer_filter.apply(results, figure1_graph) == []
