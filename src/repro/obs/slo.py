"""SLO burn-rate monitoring over query-counted windows.

Classic multi-window burn-rate alerting (a fast window that reacts
quickly, a slow window that filters blips; both must burn hot to
page), adapted to this repo's determinism discipline: windows are
counted in *queries*, not seconds, so a seeded workload always produces
the same burn rates and ``repro slo --check`` is a reproducible gate
rather than a flaky timer.

Two SLOs are tracked:

* **availability** — a query is bad if it errored or was rejected at
  admission.  Degraded-but-answered queries count as available: the
  whole point of the hardening tier is that a partial answer is better
  than none, and the SLO should not punish the fallback for working.
* **latency** — an answered query is bad if it took longer than the
  configured target; errors and rejections count as latency-bad too
  (the user got no timely answer either way).

Burn rate is ``bad_fraction / error_budget`` where the budget is
``1 - target``: burn 1.0 means "exactly spending the budget", higher
means the budget exhausts early.  :meth:`SLOMonitor.breached` fires
only when *both* windows exceed their thresholds, per the multi-window
recipe.

Targets and thresholds live in :class:`repro.config.SLOParams`; the
monitor is wired into :class:`repro.service.metrics.ServiceMetrics`
record paths and surfaces as ``xrank_slo_*`` gauges on ``/metrics``.

Layering note: plain ``threading.Lock``, same as the rest of obs.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Optional


class SLOMonitor:
    """Query-counted fast/slow burn-rate windows for two SLOs."""

    def __init__(self, params: Optional[object] = None):
        if params is None:
            from ..config import SLOParams

            params = SLOParams()
        self.params = params
        # Plain Lock by design: obs sits below service in the import
        # graph and must not depend on service.concurrency.
        self._lock = threading.Lock()
        # Each entry is (available, on_time) for one finished request.
        self._fast: deque = deque(maxlen=params.fast_window)
        self._slow: deque = deque(maxlen=params.slow_window)
        self._total = 0
        self._bad_availability = 0
        self._bad_latency = 0

    # -- recording -------------------------------------------------------------------

    def record_search(self, latency_ms: float) -> None:
        """One answered query (degraded or not — it *was* answered)."""
        self._record(True, latency_ms <= self.params.latency_target_ms)

    def record_error(self) -> None:
        """One query that raised out of the serving path."""
        self._record(False, False)

    def record_rejection(self) -> None:
        """One query turned away at admission."""
        self._record(False, False)

    def _record(self, available: bool, on_time: bool) -> None:
        entry = (available, on_time)
        with self._lock:
            self._total += 1
            if not available:
                self._bad_availability += 1
            if not on_time:
                self._bad_latency += 1
            self._fast.append(entry)
            self._slow.append(entry)

    # -- reading ---------------------------------------------------------------------

    @staticmethod
    def _burn(window: deque, index: int, budget: float) -> float:
        if not window:
            return 0.0
        bad = sum(1 for entry in window if not entry[index])
        return (bad / len(window)) / budget

    def snapshot(self) -> Dict[str, object]:
        """Burn rates, breach flags, and lifetime totals for /stats."""
        params = self.params
        availability_budget = 1.0 - params.availability_target
        latency_budget = 1.0 - params.latency_target_fraction
        with self._lock:
            fast_n, slow_n = len(self._fast), len(self._slow)
            availability = {
                "target": params.availability_target,
                "fast_burn": self._burn(self._fast, 0, availability_budget),
                "slow_burn": self._burn(self._slow, 0, availability_budget),
                "bad_total": self._bad_availability,
            }
            latency = {
                "target_ms": params.latency_target_ms,
                "target": params.latency_target_fraction,
                "fast_burn": self._burn(self._fast, 1, latency_budget),
                "slow_burn": self._burn(self._slow, 1, latency_budget),
                "bad_total": self._bad_latency,
            }
            total = self._total
        for slo in (availability, latency):
            slo["breach"] = (
                slo["fast_burn"] >= params.fast_burn_threshold
                and slo["slow_burn"] >= params.slow_burn_threshold
            )
        return {
            "availability": availability,
            "latency": latency,
            "windows": {"fast": fast_n, "slow": slow_n},
            "thresholds": {
                "fast_burn": params.fast_burn_threshold,
                "slow_burn": params.slow_burn_threshold,
            },
            "samples": total,
            "breach": availability["breach"] or latency["breach"],
        }

    def breached(self) -> bool:
        """Whether either SLO's fast *and* slow windows both burn hot."""
        return bool(self.snapshot()["breach"])
