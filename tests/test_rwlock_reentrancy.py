"""ReadWriteLock re-entrancy hazard detection (PR 2 satellite fix).

Writer preference makes same-thread lock nesting a deadlock, not a
convenience; the lock now raises :class:`LockUsageError` for every such
pattern instead of hanging the process.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import LockUsageError
from repro.service.concurrency import ReadWriteLock


def test_nested_read_same_thread_raises():
    lock = ReadWriteLock()
    with lock.read():
        with pytest.raises(LockUsageError, match="nested acquire_read"):
            lock.acquire_read()
    assert lock.state()["active_readers"] == 0


def test_read_write_upgrade_raises():
    lock = ReadWriteLock()
    with lock.read():
        with pytest.raises(LockUsageError, match="upgrade"):
            lock.acquire_write()
    # The failed upgrade must not leave a phantom waiting writer.
    assert lock.state()["writers_waiting"] == 0


def test_write_read_downgrade_raises():
    lock = ReadWriteLock()
    with lock.write():
        with pytest.raises(LockUsageError, match="write lock"):
            lock.acquire_read()
    assert lock.state()["writer_active"] is False


def test_nested_write_same_thread_raises():
    lock = ReadWriteLock()
    with lock.write():
        with pytest.raises(LockUsageError, match="not reentrant"):
            lock.acquire_write()
    assert lock.state()["writer_active"] is False


def test_sequential_reacquisition_is_fine():
    lock = ReadWriteLock()
    for _ in range(3):
        with lock.read():
            pass
        with lock.write():
            pass
    state = lock.state()
    assert state == {
        "active_readers": 0,
        "writer_active": False,
        "writers_waiting": 0,
    }


def test_concurrent_readers_still_share():
    lock = ReadWriteLock()
    inside = threading.Barrier(3, timeout=10)

    def reader():
        with lock.read():
            inside.wait()  # all three readers are inside simultaneously

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    assert all(not thread.is_alive() for thread in threads)


def test_writer_exclusion_preserved():
    lock = ReadWriteLock()
    log = []

    def writer():
        with lock.write():
            log.append("w")

    with lock.read():
        thread = threading.Thread(target=writer)
        thread.start()
        thread.join(timeout=0.2)
        assert log == []  # writer blocked by the active reader
    thread.join(timeout=10)
    assert log == ["w"]


def test_reader_on_other_thread_not_mistaken_for_reentry():
    lock = ReadWriteLock()
    first_in = threading.Event()
    release = threading.Event()
    errors = []

    def holder():
        try:
            with lock.read():
                first_in.set()
                release.wait(timeout=10)
        except LockUsageError as exc:  # would be a false positive
            errors.append(exc)

    thread = threading.Thread(target=holder)
    thread.start()
    assert first_in.wait(timeout=10)
    with lock.read():  # different thread: legitimately shares the lock
        pass
    release.set()
    thread.join(timeout=10)
    assert errors == []


def test_failed_acquire_does_not_leak_hold_state():
    lock = ReadWriteLock()
    with lock.read():
        with pytest.raises(LockUsageError):
            lock.acquire_read()
    # A writer must be able to take the lock afterwards — the refused
    # acquisition left no phantom reader behind.
    acquired = []

    def writer():
        with lock.write():
            acquired.append(True)

    thread = threading.Thread(target=writer)
    thread.start()
    thread.join(timeout=10)
    assert acquired == [True]
