"""Round-trip tests for the XML serializer."""

import random

from repro.xmlmodel.nodes import Element
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import document_to_xml, escape_attribute, escape_text

from conftest import random_xml


def structures_equal(left: Element, right: Element) -> bool:
    """Compare tag structure, attributes and text, ignoring whitespace."""
    if left.tag != right.tag:
        return False
    left_children = list(left.child_elements())
    right_children = list(right.child_elements())
    if len(left_children) != len(right_children):
        return False
    left_text = " ".join(v.text for v in left.value_children()).split()
    right_text = " ".join(v.text for v in right.value_children()).split()
    if left_text != right_text:
        return False
    return all(
        structures_equal(a, b) for a, b in zip(left_children, right_children)
    )


class TestRoundTrip:
    def test_simple(self):
        doc = parse_xml('<a x="1"><b>text</b><c/></a>', doc_id=0)
        reparsed = parse_xml(document_to_xml(doc), doc_id=0)
        assert structures_equal(doc.root, reparsed.root)

    def test_figure1(self, figure1_document):
        text = document_to_xml(figure1_document)
        reparsed = parse_xml(text, doc_id=5)
        assert structures_equal(figure1_document.root, reparsed.root)

    def test_random_documents(self):
        rng = random.Random(7)
        for i in range(20):
            source = random_xml(rng)
            doc = parse_xml(source, doc_id=i)
            reparsed = parse_xml(document_to_xml(doc), doc_id=i)
            assert structures_equal(doc.root, reparsed.root)

    def test_special_characters_escaped(self):
        doc = parse_xml("<a k=\"x &amp; &quot;y&quot;\">&lt;tag&gt; &amp; more</a>", doc_id=0)
        text = document_to_xml(doc)
        reparsed = parse_xml(text, doc_id=0)
        assert structures_equal(doc.root, reparsed.root)


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_escape_attribute(self):
        assert escape_attribute('say "hi" & <go>') == "say &quot;hi&quot; &amp; &lt;go&gt;"
