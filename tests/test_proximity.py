"""Unit and property tests for the smallest-window proximity measure."""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.ranking.proximity import proximity, smallest_window


def brute_force_window(position_lists):
    """O(product) reference: try every combination of one position per list."""
    if not position_lists or any(not pl for pl in position_lists):
        return None
    best = None
    for combo in itertools.product(*position_lists):
        window = max(combo) - min(combo) + 1
        if best is None or window < best:
            best = window
    return best


class TestSmallestWindow:
    def test_adjacent(self):
        assert smallest_window([[3], [4]]) == 2

    def test_single_list(self):
        assert smallest_window([[10, 20, 30]]) == 1

    def test_interleaved(self):
        assert smallest_window([[1, 100], [99]]) == 2

    def test_three_lists(self):
        assert smallest_window([[1, 50], [2, 60], [3, 70]]) == 3

    def test_empty_inputs(self):
        assert smallest_window([]) is None
        assert smallest_window([[1], []]) is None

    def test_same_position_twice(self):
        # Two keywords at the same position: window of 1.
        assert smallest_window([[5], [5]]) == 1

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 60), min_size=1, max_size=6),
            min_size=1,
            max_size=4,
        )
    )
    def test_matches_bruteforce(self, lists):
        sorted_lists = [sorted(pl) for pl in lists]
        assert smallest_window(sorted_lists) == brute_force_window(sorted_lists)

    def test_large_inputs_fast(self):
        rng = random.Random(0)
        lists = [sorted(rng.sample(range(100_000), 2000)) for _ in range(4)]
        assert smallest_window(lists) is not None


class TestProximityFactor:
    def test_adjacent_keywords_give_one(self):
        assert proximity([[10], [11], [12]]) == 1.0

    def test_single_keyword_is_one(self):
        assert proximity([[5, 9]]) == 1.0

    def test_far_apart_approaches_zero(self):
        value = proximity([[0], [10_000]])
        assert 0 < value < 0.001

    def test_missing_keyword_is_zero(self):
        assert proximity([[1], []]) == 0.0
        assert proximity([]) == 0.0

    def test_never_exceeds_one(self):
        assert proximity([[5], [5]]) == 1.0

    def test_monotone_in_window(self):
        near = proximity([[0], [3]])
        far = proximity([[0], [30]])
        assert near > far
