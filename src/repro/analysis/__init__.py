"""Project-specific correctness tooling (``repro check``).

PR 1 made the reproduction concurrent, and with concurrency came three
disciplines that nothing in the language enforces:

* every evaluator loop that advances a posting stream must poll its
  cooperative :class:`~repro.service.admission.Deadline`, or a slow query
  blocks a worker forever;
* service code may only touch the engine while holding the
  reader-writer lock, or a query races an index rebuild;
* every engine mutation must bump the generation counter, or the
  generational caches serve results computed against a dead index.

This package machine-checks them, plus the paper's own structural
guarantees (Dewey-sorted inverted lists, B+-tree integrity, ElemRank
convergence):

* :mod:`repro.analysis.linter` + :mod:`repro.analysis.rules` — an AST
  lint framework with project rules (deadline-discipline,
  lock-discipline, cache-generation) and general hygiene rules;
* :mod:`repro.analysis.locktrace` — opt-in runtime lock instrumentation
  that builds an acquisition-order graph and reports cycles (potential
  ABBA deadlocks) and same-thread read re-entry (the self-deadlock
  hazard of a writer-preference lock);
* :mod:`repro.analysis.invariants` — deep validators for the built
  index structures;
* :mod:`repro.analysis.check` — the ``repro check`` driver wiring all
  three into one CLI subcommand / CI gate.
"""

from .invariants import InvariantViolation, check_engine
from .linter import LintConfig, Linter, LintRule, Violation, load_lint_config
from .locktrace import LockOrderReport, LockTracer
from .rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "InvariantViolation",
    "LintConfig",
    "Linter",
    "LintRule",
    "LockOrderReport",
    "LockTracer",
    "Violation",
    "check_engine",
    "default_rules",
    "load_lint_config",
]
