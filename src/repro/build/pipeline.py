"""Orchestration of the parallel build: shard → workers → deterministic merge.

:func:`build_corpus` is the parse-from-source pipeline (used by
``engine.build(corpus=..., workers=N)``, the ``repro build`` CLI and the
build benchmark); :func:`extract_all_raw_postings` is the extraction-only
variant for documents the engine has already parsed in-process.  Both run
the exact same per-document code the sequential build runs — ``workers=1``
simply executes the single shard inline, with no pool — so every worker
count folds to byte-identical output.

Process management notes:

* the start method prefers ``fork`` (cheap on Linux; lets extraction-only
  workers inherit parsed documents copy-on-write instead of pickling them
  through the task pipe) and falls back to ``spawn`` elsewhere;
* a worker that raises, a worker that *dies* (OOM-kill, segfault — breaks
  the pool), and a spilled run file that fails its checksum scan are all
  handled per shard: the shard is retried up to :data:`MAX_SHARD_ATTEMPTS`
  times (recreating the pool after a crash) before the pipeline gives up
  with a clean :class:`~repro.errors.BuildError` — transient faults cost
  retries (counted in ``BuildStats.retries``), not whole builds, and the
  pipeline never leaves the caller hanging on a dead pool;
* injected faults (:mod:`repro.faults`) are decided in the *parent* —
  plan state is not shared with worker processes — and delivered through
  the tasks' ``fault`` hook; spilled run files are corrupted parent-side
  after the worker returns;
* spilled run files live in a private temporary directory under the
  caller's ``spill_dir`` and are removed once merged; each is checksum-
  validated (:func:`~repro.storage.runfile.verify_run`) before the merge
  consumes it.
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import BuildError, CorruptRunError
from ..faults import SITE_RUNFILE_CORRUPT, SITE_WORKER_CRASH, FaultPlan
from ..index.postings import RawPostingMap
from ..storage.runfile import verify_run
from ..xmlmodel.nodes import Document
from .merge import merge_shard_results
from .shard import DocumentSpec, shard_specs
from .worker import (
    FAULT_CRASH,
    FAULT_RAISE,
    ExtractTask,
    ShardResult,
    ShardTask,
    process_extract_shard,
    process_shard,
    set_inherited_documents,
)

_XML_SUFFIXES = {".xml"}
_HTML_SUFFIXES = {".html", ".htm"}

#: Attempts per shard (initial + retries) before the build gives up.
MAX_SHARD_ATTEMPTS = 3


@dataclass
class BuildStats:
    """Timings and counters from one pipeline run (for benchmarks/CLI)."""

    workers: int = 1
    shards: int = 0
    documents: int = 0
    skipped: int = 0
    parse_seconds: float = 0.0
    extract_seconds: float = 0.0
    merge_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    spilled_bytes: int = 0
    keywords: int = 0
    #: Shard attempts beyond the first (worker crash / raise / corrupt run).
    retries: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "shards": self.shards,
            "documents": self.documents,
            "skipped": self.skipped,
            "parse_seconds": round(self.parse_seconds, 4),
            "extract_seconds": round(self.extract_seconds, 4),
            "merge_seconds": round(self.merge_seconds, 4),
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "spilled_bytes": self.spilled_bytes,
            "keywords": self.keywords,
            "retries": self.retries,
        }


@dataclass
class CorpusBuildResult:
    """Parsed documents plus the merged posting skeletons for the corpus."""

    documents: List[Document] = field(default_factory=list)
    raw_postings: RawPostingMap = field(default_factory=dict)
    skipped: List[Tuple[str, str]] = field(default_factory=list)
    stats: BuildStats = field(default_factory=BuildStats)


def specs_from_sources(
    sources: Iterable[Union[str, Tuple[str, str], DocumentSpec]],
    start_doc_id: int = 0,
) -> List[DocumentSpec]:
    """Coerce raw XML strings / (source, uri) pairs into document specs.

    Doc ids are assigned in input order starting at ``start_doc_id`` —
    before any sharding, so identifiers never depend on worker scheduling.
    """
    specs: List[DocumentSpec] = []
    next_id = start_doc_id
    for item in sources:
        if isinstance(item, DocumentSpec):
            specs.append(item)
            next_id = max(next_id, item.doc_id + 1)
            continue
        if isinstance(item, tuple):
            source, uri = item
        else:
            source, uri = item, ""
        specs.append(DocumentSpec(doc_id=next_id, uri=uri, source=source))
        next_id += 1
    return specs


def specs_from_paths(
    files: Sequence[Union[str, Path]],
    uris: Optional[Sequence[str]] = None,
    start_doc_id: int = 0,
) -> List[DocumentSpec]:
    """Specs for on-disk files; workers read them, so I/O is parallel too."""
    specs: List[DocumentSpec] = []
    for offset, file_path in enumerate(files):
        path = Path(file_path)
        uri = uris[offset] if uris is not None else path.name
        specs.append(
            DocumentSpec(
                doc_id=start_doc_id + offset,
                uri=uri,
                path=str(path),
                is_html=path.suffix.lower() in _HTML_SUFFIXES,
            )
        )
    return specs


def _mp_context(name: Optional[str] = None):
    """The preferred multiprocessing context (fork where available)."""
    if name is None:
        name = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
    return multiprocessing.get_context(name)


def _corrupt_run_file(path: str, plan: FaultPlan) -> None:
    """Parent-side fault injection: flip one byte of a spilled run file."""
    file_path = Path(path)
    data = bytearray(file_path.read_bytes())
    if not data:
        return
    position = plan.choose(SITE_RUNFILE_CORRUPT, len(data))
    data[position] ^= 0xFF
    file_path.write_bytes(bytes(data))


def _post_process_shard(
    result: ShardResult, fault_plan: Optional[FaultPlan]
) -> None:
    """Inject run-file corruption (if armed), then checksum-scan the run.

    Raises :class:`CorruptRunError` when the spilled run fails validation —
    the caller treats that exactly like a worker failure and retries the
    shard (the rewrite truncates, so a retried shard starts clean).
    """
    if result.run_path is None:
        return
    if fault_plan is not None and fault_plan.should_fire(SITE_RUNFILE_CORRUPT):
        _corrupt_run_file(result.run_path, fault_plan)
    verify_run(result.run_path)


def _execute_shards(
    tasks,
    worker_fn,
    workers: int,
    context,
    fault_plan: Optional[FaultPlan] = None,
) -> Tuple[List[ShardResult], int]:
    """Run shard tasks with per-shard retries; fail cleanly, never hang.

    Worker raises, worker deaths (broken pool — recreated before the next
    round), and corrupt spilled run files each cost the affected shard one
    attempt, up to :data:`MAX_SHARD_ATTEMPTS`; only shards that failed are
    resubmitted.  Injected crash decisions are made here, in the parent,
    because plan state is not shared with worker processes.  Returns the
    results ordered by shard id plus the number of retries spent.
    """
    inline = workers == 1
    original_fault = {task.shard_id: task.fault for task in tasks}
    pending = {task.shard_id: task for task in tasks}
    attempts = {task.shard_id: 0 for task in tasks}
    results: Dict[int, ShardResult] = {}
    retries = 0
    while pending:
        for shard_id in sorted(pending):
            task = pending[shard_id]
            task.fault = original_fault[shard_id]
            if (
                task.fault is None
                and fault_plan is not None
                and fault_plan.should_fire(SITE_WORKER_CRASH)
            ):
                # Inline shards must not os._exit the caller's process, so
                # the injected "crash" degrades to a raise there.
                task.fault = FAULT_RAISE if inline else FAULT_CRASH
        failures: Dict[int, str] = {}
        if inline:
            for shard_id in sorted(pending):
                try:
                    result = worker_fn(pending[shard_id])
                    _post_process_shard(result, fault_plan)
                except (BuildError, CorruptRunError) as exc:
                    failures[shard_id] = str(exc)
                else:
                    results[shard_id] = result
        else:
            ordered = [pending[shard_id] for shard_id in sorted(pending)]
            with ProcessPoolExecutor(
                max_workers=min(workers, len(ordered)), mp_context=context
            ) as executor:
                futures = [
                    (task, executor.submit(worker_fn, task))
                    for task in ordered
                ]
                for task, future in futures:
                    try:
                        result = future.result()
                        _post_process_shard(result, fault_plan)
                    except BrokenProcessPool:
                        failures[task.shard_id] = (
                            "worker process died before returning its shard "
                            "(out-of-memory or crash)"
                        )
                    except (BuildError, CorruptRunError) as exc:
                        failures[task.shard_id] = str(exc)
                    except Exception as exc:
                        failures[task.shard_id] = f"worker failed: {exc!r}"
                    else:
                        results[task.shard_id] = result
        for shard_id, message in sorted(failures.items()):
            attempts[shard_id] += 1
            if attempts[shard_id] >= MAX_SHARD_ATTEMPTS:
                raise BuildError(
                    f"shard {shard_id} failed after {MAX_SHARD_ATTEMPTS} "
                    f"attempts: {message}"
                )
            retries += 1
        for shard_id in list(pending):
            if shard_id in results:
                del pending[shard_id]
    return [results[shard_id] for shard_id in sorted(results)], retries


def build_corpus(
    specs: Sequence[DocumentSpec],
    workers: int = 1,
    spill_dir: Optional[Union[str, Path]] = None,
    on_parse_error: str = "raise",
    mp_start_method: Optional[str] = None,
    _fault: Optional[Tuple[int, str]] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> CorpusBuildResult:
    """Parse + tokenize + extract a corpus, sharded over worker processes.

    Args:
        specs: documents with pre-assigned doc ids (see spec helpers).
        workers: process count; ``1`` runs the single shard inline.
        spill_dir: when set, workers stream posting skeletons into run
            files under a private temp dir here instead of returning them
            through the pipe (bounded memory; see repro.storage.runfile).
        on_parse_error: ``"raise"`` (default) or ``"skip"`` (collect the
            failures, like ``repro index``).
        mp_start_method: override the multiprocessing start method.
        _fault: test hook — ``(shard_id, mode)`` injected into that shard.
        fault_plan: seeded :class:`~repro.faults.FaultPlan` driving worker
            crashes and run-file corruption (chaos harness / tests).
    """
    if workers < 1:
        raise BuildError(f"workers must be >= 1, got {workers}")
    if on_parse_error not in ("raise", "skip"):
        raise BuildError(f"unknown on_parse_error {on_parse_error!r}")
    started = time.perf_counter()
    result = CorpusBuildResult()
    result.stats.workers = workers
    if not specs:
        return result

    run_dir: Optional[str] = None
    if spill_dir is not None:
        Path(spill_dir).mkdir(parents=True, exist_ok=True)
        run_dir = tempfile.mkdtemp(prefix="build-runs-", dir=str(spill_dir))
    try:
        shards = shard_specs(specs, workers)
        result.stats.shards = len(shards)
        tasks = [
            ShardTask(
                shard_id=shard_id,
                specs=shard,
                spill_dir=run_dir,
                on_parse_error=on_parse_error,
                fault=(
                    _fault[1]
                    if _fault is not None and _fault[0] == shard_id
                    else None
                ),
            )
            for shard_id, shard in enumerate(shards)
        ]
        shard_results, result.stats.retries = _execute_shards(
            tasks,
            process_shard,
            workers,
            None if workers == 1 else _mp_context(mp_start_method),
            fault_plan,
        )

        merge_started = time.perf_counter()
        result.raw_postings = merge_shard_results(shard_results)
        result.stats.merge_seconds = time.perf_counter() - merge_started
        for shard_result in shard_results:
            result.documents.extend(shard_result.documents)
            result.skipped.extend(shard_result.skipped)
            result.stats.parse_seconds += shard_result.parse_seconds
            result.stats.extract_seconds += shard_result.extract_seconds
            result.stats.spilled_bytes += shard_result.spilled_bytes
        result.documents.sort(key=lambda document: document.doc_id)
        result.stats.documents = len(result.documents)
        result.stats.skipped = len(result.skipped)
        result.stats.keywords = len(result.raw_postings)
    finally:
        if run_dir is not None:
            shutil.rmtree(run_dir, ignore_errors=True)
    result.stats.elapsed_seconds = time.perf_counter() - started
    return result


def extract_all_raw_postings(
    documents: Sequence[Document],
    workers: int = 1,
    spill_dir: Optional[Union[str, Path]] = None,
    mp_start_method: Optional[str] = None,
    _fault: Optional[Tuple[int, str]] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> Tuple[RawPostingMap, BuildStats]:
    """Posting skeletons for already-parsed documents, sharded by doc id.

    Under a fork start method the workers inherit the parsed trees
    copy-on-write; under spawn each task carries its documents explicitly.
    ``workers=1`` extracts inline (the sequential fallback).  ``fault_plan``
    injects worker crashes / run corruption exactly as in ``build_corpus``.
    """
    if workers < 1:
        raise BuildError(f"workers must be >= 1, got {workers}")
    started = time.perf_counter()
    stats = BuildStats(workers=workers)
    ordered = sorted(documents, key=lambda document: document.doc_id)
    if not ordered:
        return {}, stats

    run_dir: Optional[str] = None
    if spill_dir is not None:
        Path(spill_dir).mkdir(parents=True, exist_ok=True)
        run_dir = tempfile.mkdtemp(prefix="build-runs-", dir=str(spill_dir))
    try:
        # Reuse the LPT planner with word counts as the cost proxy.
        proxy_specs = [
            DocumentSpec(doc_id=document.doc_id, cost=document.word_count)
            for document in ordered
        ]
        plan = shard_specs(proxy_specs, workers)
        by_id = {document.doc_id: document for document in ordered}
        stats.shards = len(plan)

        context = _mp_context(mp_start_method)
        use_fork_table = workers > 1 and context.get_start_method() == "fork"
        tasks = [
            ExtractTask(
                shard_id=shard_id,
                doc_ids=[spec.doc_id for spec in shard],
                documents=(
                    None
                    if use_fork_table or workers == 1
                    else [by_id[spec.doc_id] for spec in shard]
                ),
                spill_dir=run_dir,
                fault=(
                    _fault[1]
                    if _fault is not None and _fault[0] == shard_id
                    else None
                ),
            )
            for shard_id, shard in enumerate(plan)
        ]
        share_table = workers == 1 or use_fork_table
        if share_table:
            set_inherited_documents(by_id)
        try:
            shard_results, stats.retries = _execute_shards(
                tasks, process_extract_shard, workers, context, fault_plan
            )
        finally:
            if share_table:
                set_inherited_documents(None)

        merge_started = time.perf_counter()
        merged = merge_shard_results(shard_results)
        stats.merge_seconds = time.perf_counter() - merge_started
        for shard_result in shard_results:
            stats.extract_seconds += shard_result.extract_seconds
            stats.spilled_bytes += shard_result.spilled_bytes
        stats.documents = len(ordered)
        stats.keywords = len(merged)
    finally:
        if run_dir is not None:
            shutil.rmtree(run_dir, ignore_errors=True)
    stats.elapsed_seconds = time.perf_counter() - started
    return merged, stats
