"""Shared machinery for the five index flavours (paper Sections 4.1-4.4).

Every index owns one :class:`SimulatedDisk`, reports its space usage for
Table 1 through :meth:`space_report`, and supports document-granularity
deletion by tombstoning (Section 4.5: document-level updates work "exactly
like in traditional inverted lists"; the first Dewey component is the
document id, "which can be used for deletion").  Query processors filter
tombstoned documents on the fly; :meth:`vacuum_needed` reports when a
rebuild would reclaim space.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Optional, Set

from ..config import StorageParams
from ..errors import IndexNotBuiltError
from ..storage.disk import SimulatedDisk
from .postings import PostingMap


@dataclass
class SpaceReport:
    """Table 1 row fragment: space in bytes for one index on one corpus."""

    kind: str
    inverted_list_bytes: int
    index_bytes: Optional[int]  # None renders as the paper's "N/A"
    num_keywords: int
    num_postings: int

    @property
    def total_bytes(self) -> int:
        return self.inverted_list_bytes + (self.index_bytes or 0)

    def format_row(self) -> str:
        """One Table 1 row as aligned text."""
        index_part = (
            "N/A" if self.index_bytes is None else _human_bytes(self.index_bytes)
        )
        return (
            f"{self.kind:<12} {_human_bytes(self.inverted_list_bytes):>10} "
            f"{index_part:>10}"
        )


def _human_bytes(count: int) -> str:
    if count >= 1 << 20:
        return f"{count / (1 << 20):.1f}MB"
    if count >= 1 << 10:
        return f"{count / (1 << 10):.1f}KB"
    return f"{count}B"


class KeywordIndex(ABC):
    """Base class: a keyword -> inverted list mapping on a simulated disk."""

    #: short identifier used in reports ("dil", "rdil", ...).
    kind: str = "abstract"

    def __init__(self, storage_params: Optional[StorageParams] = None):
        self.disk = SimulatedDisk(storage_params)
        self.built = False
        self.deleted_docs: Set[int] = set()
        self._num_postings = 0

    # -- construction ------------------------------------------------------------

    @abstractmethod
    def build(self, postings: PostingMap) -> None:
        """Bulk-build from per-keyword posting lists sorted by Dewey ID."""

    def _mark_built(self, postings: PostingMap) -> None:
        self.built = True
        self._num_postings = sum(len(lst) for lst in postings.values())

    def _require_built(self) -> None:
        if not self.built:
            raise IndexNotBuiltError(f"{self.kind} index has not been built")

    # -- keyword surface ------------------------------------------------------------

    @abstractmethod
    def keywords(self) -> Iterable[str]:
        """All indexed keywords."""

    @abstractmethod
    def has_keyword(self, keyword: str) -> bool:
        """True when the keyword has a (possibly empty) inverted list."""

    @abstractmethod
    def list_length(self, keyword: str) -> int:
        """Number of postings in the keyword's inverted list (0 if absent)."""

    # -- updates -----------------------------------------------------------------------

    def delete_document(self, doc_id: int) -> None:
        """Tombstone a document; its postings are skipped at query time."""
        self._require_built()
        self.deleted_docs.add(doc_id)

    def is_live(self, doc_id: int) -> bool:
        """True unless the document is tombstoned."""
        return doc_id not in self.deleted_docs

    def vacuum_needed(self, threshold: float = 0.25) -> bool:
        """Heuristic: rebuild once a quarter of the corpus is tombstoned."""
        if not self.deleted_docs or self._num_postings == 0:
            return False
        return len(self.deleted_docs) / max(1, self._num_postings) > threshold

    # -- accounting ---------------------------------------------------------------------

    @property
    @abstractmethod
    def inverted_list_bytes(self) -> int:
        """Exact bytes of the inverted-list file(s)."""

    @property
    @abstractmethod
    def index_bytes(self) -> Optional[int]:
        """Bytes of auxiliary structures (B+-trees, hash indexes); None = N/A."""

    def space_report(self) -> SpaceReport:
        """Space usage summary for Table 1."""
        self._require_built()
        return SpaceReport(
            kind=self.kind,
            inverted_list_bytes=self.inverted_list_bytes,
            index_bytes=self.index_bytes,
            num_keywords=sum(1 for _ in self.keywords()),
            num_postings=self._num_postings,
        )

    # -- measurement helpers ---------------------------------------------------------------

    def reset_measurement(self, cold_cache: bool = True) -> None:
        """Prepare for one measured query (paper default: cold OS cache)."""
        self.disk.reset_stats()
        if cold_cache:
            self.disk.drop_cache()

    def io_cost_ms(self) -> float:
        """Simulated elapsed milliseconds since the last reset."""
        return self.disk.stats.cost_ms(self.disk.params)
