"""Tests for ASCII chart rendering."""

from repro.bench.charts import render_bars, render_series_csv
from repro.bench.harness import ExperimentTable, SeriesPoint


def sample_table():
    table = ExperimentTable("demo figure", "num keywords", "ms")
    table.points.append(SeriesPoint(x=2, values={"dil": 50.0, "rdil": 25.0}))
    table.points.append(SeriesPoint(x=3, values={"dil": 75.0, "rdil": 30.0}))
    return table


class TestBars:
    def test_contains_all_values(self):
        out = render_bars(sample_table())
        for value in ("50.0", "25.0", "75.0", "30.0"):
            assert value in out

    def test_bar_lengths_proportional(self):
        out = render_bars(sample_table(), width=40)
        lines = [l for l in out.splitlines() if "#" in l]
        lengths = {
            line.strip().split()[1][0]: line.count("#") for line in lines
        }
        dil_rows = [l.count("#") for l in lines if " D " in l]
        rdil_rows = [l.count("#") for l in lines if " R " in l]
        assert max(dil_rows) == 40  # the maximum value spans full width
        assert all(r < d for r, d in zip(sorted(rdil_rows), sorted(dil_rows)))

    def test_legend_present(self):
        out = render_bars(sample_table())
        assert "legend:" in out
        assert "D=dil" in out and "R=rdil" in out

    def test_empty_values_handled(self):
        table = ExperimentTable("empty", "x", "y")
        table.points.append(SeriesPoint(x=1, values={}))
        out = render_bars(table)
        assert "empty" in out

    def test_missing_series_skipped(self):
        table = ExperimentTable("gaps", "x", "y")
        table.points.append(SeriesPoint(x=1, values={"dil": 10.0}))
        table.points.append(SeriesPoint(x=2, values={"dil": 10.0, "hdil": 5.0}))
        out = render_bars(table)
        assert out.count(" H ") == 1


class TestCsv:
    def test_csv_shape(self):
        out = render_series_csv(sample_table())
        lines = out.splitlines()
        assert lines[0] == "num keywords,dil,rdil"
        assert lines[1] == "2,50.000,25.000"
        assert len(lines) == 3

    def test_csv_missing_cell_empty(self):
        table = ExperimentTable("gaps", "x", "y")
        table.points.append(SeriesPoint(x=1, values={"dil": 1.0}))
        table.points.append(SeriesPoint(x=2, values={"rdil": 2.0}))
        out = render_series_csv(table)
        assert ",," not in out.splitlines()[0]
        assert out.splitlines()[1].endswith(",")
