"""The ``repro stress`` harness: clean verdicts and seed determinism."""

from __future__ import annotations

import json

import pytest

from repro.stress import StressReport, run_stress


def test_component_storm_is_race_free():
    report = run_stress(seed=3, scenarios=["components"], ops_scale=0.5)
    assert report.clean, report.describe()
    scenario = report.scenarios[0]
    assert scenario.name == "components"
    assert "cache.hits" in scenario.watched_fields
    assert "metrics.searches" in scenario.watched_fields
    assert "iostats.page_reads" in scenario.watched_fields
    assert scenario.operations > 0


def test_service_storm_is_race_free():
    report = run_stress(seed=5, scenarios=["service"], ops_scale=0.5)
    assert report.clean, report.describe()
    fields = report.scenarios[0].watched_fields
    assert "service.results.hits" in fields
    assert "service.metrics.searches" in fields


def test_cluster_storm_is_race_free():
    report = run_stress(seed=11, scenarios=["cluster"], ops_scale=0.5)
    assert report.clean, report.describe()
    fields = report.scenarios[0].watched_fields
    assert "coordinator.queries" in fields
    assert "coordinator.failovers" in fields


def test_same_seed_reports_are_bit_identical():
    first = run_stress(seed=42, scenarios=["components"], ops_scale=0.25)
    second = run_stress(seed=42, scenarios=["components"], ops_scale=0.25)
    assert first.to_json() == second.to_json()


def test_canonical_json_excludes_schedule_dependent_counts():
    report = run_stress(seed=1, scenarios=["components"], ops_scale=0.25)
    payload = json.loads(report.to_json())
    scenario = payload["scenarios"][0]
    # Planned facts only: nothing the OS scheduler can perturb.
    assert set(scenario) == {
        "name",
        "threads",
        "operations",
        "watched_fields",
        "races",
        "errors",
        "lock_cycles",
        "clean",
    }


def test_unknown_scenario_is_rejected():
    with pytest.raises(ValueError, match="unknown stress scenario"):
        run_stress(scenarios=["warp-drive"])


def test_report_describe_mentions_every_scenario():
    report = StressReport(seed=9)
    report.scenarios.extend(
        run_stress(seed=9, scenarios=["components"], ops_scale=0.25).scenarios
    )
    text = report.describe()
    assert "components" in text and "seed=9" in text
