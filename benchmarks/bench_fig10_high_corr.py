"""Figure 10: query performance under HIGH keyword correlation.

Each benchmark times one cold-cache query (wall clock, via
pytest-benchmark); the *simulated I/O cost* — the paper-comparable number —
is attached as ``extra_info`` and the figure's qualitative shape is asserted
at the end:

* RDIL beats DIL (successful index probes terminate the ranked scan early);
* HDIL tracks RDIL;
* Naive-ID is worse than DIL and Naive-Rank worse than RDIL (ancestor
  entries inflate every scan and probe).
"""

import pytest

from repro.bench.experiments import run_fig10
from repro.bench.harness import APPROACHES
from repro.datasets.workloads import high_correlation_queries

KEYWORD_COUNTS = (1, 2, 3, 4)


@pytest.mark.parametrize("num_keywords", KEYWORD_COUNTS)
@pytest.mark.parametrize("approach", APPROACHES)
def test_query_high_correlation(benchmark, suite, approach, num_keywords):
    query = high_correlation_queries(suite.planted, num_keywords).queries[0]
    indexed = suite.dblp

    def run():
        return indexed.measure(approach, query, m=10)

    measurement = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["simulated_cost_ms"] = measurement.cost_ms
    benchmark.extra_info["num_results"] = measurement.num_results
    benchmark.extra_info["page_reads"] = measurement.io.page_reads


def test_fig10_shape(benchmark, suite, capsys):
    table = benchmark.pedantic(
        lambda: run_fig10(suite, keyword_counts=KEYWORD_COUNTS, m=10),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n" + table.format())

    for point in table.points:
        if point.x < 2:
            continue  # single-keyword queries are trivial for everyone
        values = point.values
        assert values["rdil"] < values["dil"], (
            f"RDIL should win under high correlation at n={point.x}"
        )
        assert values["naive-id"] > values["dil"], (
            "naive ancestor entries make Naive-ID slower than DIL"
        )
        assert values["naive-rank"] > values["rdil"], (
            "naive ancestor entries make Naive-Rank slower than RDIL"
        )
    # HDIL tracks the winner within a small factor at every point (the
    # paper notes an occasional mis-switch, so allow 2x of the best).
    for point in table.points:
        best = min(point.values["dil"], point.values["rdil"])
        assert point.values["hdil"] <= 3 * best


def test_fig10_xmark(benchmark, suite, capsys):
    """Figure 10 workload on the XMark corpus.

    A single deep document lacks the citation-skewed ElemRank distribution
    that lets RDIL's threshold drop quickly, so the high-correlation win is
    dataset-dependent; only the naive-vs-Dewey and HDIL-tracking invariants
    are asserted here (see EXPERIMENTS.md).
    """
    table = benchmark.pedantic(
        lambda: run_fig10(
            suite, keyword_counts=(2, 3), corpus="xmark",
            approaches=("naive-id", "dil", "rdil", "hdil"),
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n" + table.format())
    for point in table.points:
        assert point.values["naive-id"] > point.values["dil"]
        best = min(point.values["dil"], point.values["rdil"])
        assert point.values["hdil"] <= 3 * best
