"""Posting records: the entries of every inverted-list flavour.

A posting ties a keyword occurrence set to one element (paper Figure 4):
the element's Dewey ID, its ElemRank, and ``posList`` — the sorted global
word positions at which the keyword occurs.  The Dewey-family indexes (DIL,
RDIL, HDIL) store postings only for elements that *directly* contain the
keyword; the naive baselines additionally store a posting for every
ancestor, with the descendants' positions merged in — precisely the
replication that inflates their space in Table 1.

The binary layout is ``dewey || float32 rank || delta-varint posList``,
measured identically across all index flavours so the Table 1 comparison is
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..storage.records import RecordReader, RecordWriter
from ..xmlmodel.dewey import DeweyId
from ..xmlmodel.graph import CollectionGraph


@dataclass(frozen=True)
class Posting:
    """One inverted-list entry."""

    dewey: DeweyId
    elemrank: float
    positions: Tuple[int, ...]

    def encode(self) -> bytes:
        """Serialize as dewey + float32 rank + delta posList."""
        writer = RecordWriter()
        writer.dewey(self.dewey)
        writer.float32(self.elemrank)
        writer.uint_list(list(self.positions))
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Posting":
        reader = RecordReader(data)
        dewey = reader.dewey()
        elemrank = reader.float32()
        positions = tuple(reader.uint_list())
        return cls(dewey, elemrank, positions)

    @classmethod
    def decode_payload(cls, dewey: DeweyId, payload: bytes) -> "Posting":
        """Decode a posting whose Dewey ID is stored separately (B+-trees)."""
        reader = RecordReader(payload)
        elemrank = reader.float32()
        positions = tuple(reader.uint_list())
        return cls(dewey, elemrank, positions)

    def encode_payload(self) -> bytes:
        """Encode rank + posList only (the Dewey ID is the B+-tree key)."""
        writer = RecordWriter()
        writer.float32(self.elemrank)
        writer.uint_list(list(self.positions))
        return writer.getvalue()


#: keyword -> postings sorted by Dewey ID.
PostingMap = Dict[str, List[Posting]]


def extract_direct_postings(
    graph: CollectionGraph,
    elemranks: Dict[DeweyId, float],
    score_overrides=None,
) -> PostingMap:
    """Build per-keyword postings for elements that *directly* contain them.

    Pre-order traversal per document (ascending doc id) visits elements in
    Dewey order, so each keyword's posting list comes out sorted by ID with
    no extra sort.

    ``score_overrides`` optionally maps ``(dewey components, keyword)`` to a
    per-keyword score (e.g. tf-idf weights); where present it replaces the
    element's ElemRank in the posting — the hook Section 4 describes for
    "other ways of ranking XML elements".
    """
    postings: PostingMap = {}
    for document in graph.iter_documents():
        for element in document.iter_elements():
            by_word: Dict[str, List[int]] = {}
            for word, position in element.direct_words():
                by_word.setdefault(word, []).append(position)
            if not by_word:
                continue
            rank = elemranks.get(element.dewey, 0.0)
            for word, positions in by_word.items():
                positions.sort()
                score = rank
                if score_overrides is not None:
                    score = score_overrides.get(
                        (element.dewey.components, word), rank
                    )
                postings.setdefault(word, []).append(
                    Posting(element.dewey, score, tuple(positions))
                )
    return postings


def expand_to_naive_postings(
    direct: PostingMap, elemranks: Dict[DeweyId, float]
) -> PostingMap:
    """Replicate every posting onto all ancestors (the naive index of 4.1).

    For each keyword, every element that directly or indirectly contains it
    receives a posting whose posList merges all descendant occurrences —
    this is the redundancy the Dewey encoding eliminates.
    """
    naive: PostingMap = {}
    for word, posting_list in direct.items():
        merged: Dict[DeweyId, List[int]] = {}
        for posting in posting_list:
            merged.setdefault(posting.dewey, []).extend(posting.positions)
            for ancestor in posting.dewey.ancestors():
                merged.setdefault(ancestor, []).extend(posting.positions)
        entries = []
        for dewey in sorted(merged):
            positions = tuple(sorted(merged[dewey]))
            entries.append(Posting(dewey, elemranks.get(dewey, 0.0), positions))
        naive[word] = entries
    return naive


def rank_order(postings: List[Posting]) -> List[Posting]:
    """Order postings by descending ElemRank, Dewey ID as the tiebreak."""
    return sorted(postings, key=lambda p: (-p.elemrank, p.dewey.components))


def iter_decoded(records: Iterator[bytes]) -> Iterator[Posting]:
    """Decode a raw record stream into postings."""
    for record in records:
        yield Posting.decode(record)
