"""Opt-in dynamic data-race detection: Eraser locksets + happens-before.

The static ``guarded-by`` lint proves what the *source* says; this module
checks what a *run* actually did.  Objects whose classes carry
``# guarded by:`` annotations (:mod:`repro.analysis.guards`) are
instrumented with a lightweight per-field access hook, their guard locks
are wrapped in the existing :class:`~repro.analysis.locktrace.TracedLock`
proxies, and every field access is checked against the accesses that came
before it:

* **Lockset** (Eraser): each access records the set of traced locks the
  thread holds, with their modes.  Two accesses to the same field from
  different threads, at least one a write, are *candidate* races unless
  some common lock protects the pair (a lock held in read mode by both
  sides protects nothing — readers coexist).
* **Happens-before** (vector clocks): candidate pairs are dismissed when
  a synchronization chain orders them.  Lock releases publish the
  releasing thread's clock into the lock; acquisitions join it back; the
  harness's fork/join helpers add thread-start and thread-join edges.
  Only a pair that is *both* unprotected and unordered is reported.

False positives are structurally avoided rather than filtered: a field
always accessed under its guard can never produce an unprotected pair,
and a field handed off through fork/join or a traced lock is ordered.
Reports carry the access sites of both sides of the racing pair, like
:class:`~repro.analysis.locktrace.LockOrderReport` carries acquisition
stacks.

The hooks are strictly opt-in: production objects are untouched until
:func:`instrument` patches them, so the serving hot path pays nothing.
"""

from __future__ import annotations

import itertools
import sys
import threading
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .guards import class_guards

#: Frames from these files are skipped when attributing an access site.
_INTERNAL_MARKERS = ("analysis/races", "analysis/locktrace", "analysis\\races")


def _join(into: Dict[int, int], other: Dict[int, int]) -> None:
    """Pointwise max of two vector clocks, in place."""
    for ident, tick in other.items():
        if into.get(ident, 0) < tick:
            into[ident] = tick


def _call_site() -> str:
    """``file:line`` of the nearest frame outside the detector machinery."""
    frame = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename.replace("\\", "/")
        if not any(marker in filename for marker in _INTERNAL_MARKERS):
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


@dataclass
class _Access:
    """One recorded field access (the detector's unit of comparison)."""

    thread: int
    op: str                      # "read" | "write"
    locks: Dict[str, str]        # lock name -> mode held at access time
    epoch: int                   # accessor's own clock entry at the access
    site: str                    # file:line of the access


@dataclass
class RaceFinding:
    """One data race: an unprotected, unordered cross-thread pair."""

    obj: str                     # instrumentation label of the object
    attr: str                    # racing field
    first_op: str
    first_site: str
    first_locks: List[str]
    second_op: str
    second_site: str
    second_locks: List[str]
    #: Full stack of the access that completed the racing pair.
    stack: List[str] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"data race on {self.obj}.{self.attr}: "
            f"{self.first_op} at {self.first_site} "
            f"(locks {self.first_locks or '{}'}) is concurrent with "
            f"{self.second_op} at {self.second_site} "
            f"(locks {self.second_locks or '{}'})"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "object": self.obj,
            "attr": self.attr,
            "first": {
                "op": self.first_op,
                "site": self.first_site,
                "locks": list(self.first_locks),
            },
            "second": {
                "op": self.second_op,
                "site": self.second_site,
                "locks": list(self.second_locks),
            },
            "stack": list(self.stack),
        }


@dataclass
class RaceReport:
    """What a :class:`RaceDetector` observed over one run."""

    races: List[RaceFinding] = field(default_factory=list)
    accesses: int = 0
    #: ``label.field`` keys that were watched and actually touched.
    fields_observed: List[str] = field(default_factory=list)
    threads_seen: int = 0

    @property
    def clean(self) -> bool:
        return not self.races

    def describe(self) -> str:
        lines = [
            f"{self.accesses} accesses over {len(self.fields_observed)} "
            f"guarded fields from {self.threads_seen} threads"
        ]
        lines.extend(race.describe() for race in self.races)
        return "\n".join(lines)


class _ThreadState:
    __slots__ = ("vc", "locks")

    def __init__(self, ident: int):
        self.vc: Dict[int, int] = {ident: 1}
        self.locks: Dict[str, str] = {}


class RaceDetector:
    """Records guarded-field accesses and lock events; finds racing pairs.

    One detector spans a whole run: every instrumented object and every
    traced lock report into it.  Thread-start/join edges come from the
    :meth:`thread` / :meth:`join` helpers (or the lower-level
    :meth:`fork` / :meth:`register` / :meth:`joined`).
    """

    def __init__(self, max_races: int = 64):
        self._mutex = threading.Lock()
        # OS thread idents are reused once a thread exits, which would
        # alias a dead thread's history onto its successor and hide real
        # races ("same thread" pairs are never compared).  Each thread
        # instead gets a unique logical id on first contact, held in
        # thread-local storage — which dies with the thread, so a reused
        # OS ident starts over with a fresh id.
        self._local = threading.local()
        self._id_counter = itertools.count(1)
        self._threads: Dict[int, _ThreadState] = {}
        self._lock_clocks: Dict[str, Dict[int, int]] = {}
        #: (label, attr) -> (last_write, {thread: last_read})
        self._fields: Dict[
            Tuple[str, str], Tuple[Optional[_Access], Dict[int, _Access]]
        ] = {}
        self._races: List[RaceFinding] = []
        self._raced_keys: set = set()
        self._accesses = 0
        self.max_races = max_races

    # -- thread bookkeeping ------------------------------------------------------

    def _ident(self) -> int:
        """The calling thread's detector-unique logical id."""
        lid = getattr(self._local, "lid", None)
        if lid is None:
            lid = next(self._id_counter)
            self._local.lid = lid
        return lid

    def _state(self, ident: int) -> _ThreadState:
        state = self._threads.get(ident)
        if state is None:
            state = _ThreadState(ident)
            self._threads[ident] = state
        return state

    def fork(self) -> Dict[int, int]:
        """Snapshot the calling thread's clock for a child (fork edge)."""
        ident = self._ident()
        with self._mutex:
            state = self._state(ident)
            token = dict(state.vc)
            state.vc[ident] = state.vc.get(ident, 0) + 1
            return token

    def register(self, token: Dict[int, int]) -> None:
        """Adopt a fork token inside the child thread."""
        ident = self._ident()
        with self._mutex:
            _join(self._state(ident).vc, token)

    def joined(self, child_ident: int) -> None:
        """Record a join edge: the child's history precedes the caller."""
        ident = self._ident()
        with self._mutex:
            child = self._threads.get(child_ident)
            if child is not None:
                _join(self._state(ident).vc, child.vc)

    def thread(self, target, *args, **kwargs) -> threading.Thread:
        """A ``threading.Thread`` wired with fork/join edges.

        Join it with :meth:`join` (not ``Thread.join``) so the join edge
        is recorded too.
        """
        token = self.fork()
        cell: Dict[str, int] = {}

        def runner() -> None:
            cell["ident"] = self._ident()
            self.register(token)
            target(*args, **kwargs)

        thread = threading.Thread(target=runner, daemon=True)
        thread.race_ident_cell = cell  # type: ignore[attr-defined]
        return thread

    def join(self, thread: threading.Thread, timeout: float = 120.0) -> None:
        thread.join(timeout=timeout)
        cell = getattr(thread, "race_ident_cell", None)
        if cell and "ident" in cell and not thread.is_alive():
            self.joined(cell["ident"])

    # -- lock events (fed by LockTracer proxies) ---------------------------------

    def on_acquired(self, name: str, mode: str) -> None:
        """The calling thread now holds ``name`` in ``mode``."""
        ident = self._ident()
        with self._mutex:
            state = self._state(ident)
            clock = self._lock_clocks.get(name)
            if clock:
                _join(state.vc, clock)
            state.locks[name] = mode

    def on_release(self, name: str, mode: str) -> None:
        """The calling thread is about to release ``name``."""
        ident = self._ident()
        with self._mutex:
            state = self._state(ident)
            clock = self._lock_clocks.setdefault(name, {})
            _join(clock, state.vc)
            state.vc[ident] = state.vc.get(ident, 0) + 1
            state.locks.pop(name, None)

    # -- the access check ---------------------------------------------------------

    def record(self, label: str, attr: str, op: str) -> None:
        """Check one field access against the field's history."""
        ident = self._ident()
        site = _call_site()
        with self._mutex:
            self._accesses += 1
            state = self._state(ident)
            access = _Access(
                thread=ident,
                op=op,
                locks=dict(state.locks),
                epoch=state.vc.get(ident, 0),
                site=site,
            )
            key = (label, attr)
            last_write, reads = self._fields.get(key, (None, {}))
            if op == "write":
                candidates = [last_write, *reads.values()]
            else:
                candidates = [last_write]
            for prev in candidates:
                if prev is None or prev.thread == ident:
                    continue
                if self._ordered(prev, state):
                    continue
                if _protected(prev, access):
                    continue
                self._report(key, prev, access)
                break
            if op == "write":
                self._fields[key] = (access, {})
            else:
                reads[ident] = access
                self._fields[key] = (last_write, reads)

    def _ordered(self, prev: _Access, current: _ThreadState) -> bool:
        """Happens-before: has the current thread seen prev's epoch?"""
        return current.vc.get(prev.thread, 0) >= prev.epoch

    def _report(
        self, key: Tuple[str, str], prev: _Access, access: _Access
    ) -> None:
        if key in self._raced_keys or len(self._races) >= self.max_races:
            return
        self._raced_keys.add(key)
        self._races.append(
            RaceFinding(
                obj=key[0],
                attr=key[1],
                first_op=prev.op,
                first_site=prev.site,
                first_locks=sorted(prev.locks),
                second_op=access.op,
                second_site=access.site,
                second_locks=sorted(access.locks),
                stack=[
                    line.rstrip("\n")
                    for line in traceback.format_stack()
                    if not any(m in line.replace("\\", "/") for m in _INTERNAL_MARKERS)
                ][-8:],
            )
        )

    # -- reporting ----------------------------------------------------------------

    def report(self) -> RaceReport:
        with self._mutex:
            return RaceReport(
                races=sorted(
                    self._races, key=lambda r: (r.obj, r.attr)
                ),
                accesses=self._accesses,
                fields_observed=sorted(
                    f"{label}.{attr}" for label, attr in self._fields
                ),
                threads_seen=len(self._threads),
            )


def _protected(a: _Access, b: _Access) -> bool:
    """Does some common lock make the pair mutually exclusive?

    A lock held in read mode by both sides does not exclude — concurrent
    readers coexist under it — but any pairing involving a write or
    exclusive hold does.
    """
    for name, mode_a in a.locks.items():
        mode_b = b.locks.get(name)
        if mode_b is None:
            continue
        if mode_a == "read" and mode_b == "read":
            continue
        return True
    return False


# -- instrumentation ---------------------------------------------------------------

#: id(obj) -> (detector, label, frozenset of watched fields).
_WATCH: Dict[int, Tuple[RaceDetector, str, frozenset]] = {}
_PATCHED: Dict[type, type] = {}


def _patched_class(cls: type) -> type:
    """A subclass of ``cls`` whose attribute hooks report to a detector."""
    patched = _PATCHED.get(cls)
    if patched is not None:
        return patched

    def __getattribute__(self, name):  # noqa: N807
        watch = _WATCH.get(id(self))
        if watch is not None and name in watch[2]:
            watch[0].record(watch[1], name, "read")
        return cls.__getattribute__(self, name)

    def __setattr__(self, name, value):  # noqa: N807
        watch = _WATCH.get(id(self))
        if watch is not None and name in watch[2]:
            watch[0].record(watch[1], name, "write")
        cls.__setattr__(self, name, value)

    patched = type(
        f"Instrumented{cls.__name__}",
        (cls,),
        {"__getattribute__": __getattribute__, "__setattr__": __setattr__},
    )
    _PATCHED[cls] = patched
    return patched


def instrument(
    obj: object,
    detector: RaceDetector,
    label: str,
    tracer,
    fields: Optional[Dict[str, str]] = None,
) -> List[str]:
    """Attach per-field access hooks and traced guard locks to ``obj``.

    Args:
        obj: an instance of a ``guarded by:``-annotated class.
        detector: where accesses and lock events are reported.
        label: how the object is named in race reports.
        tracer: a :class:`~repro.analysis.locktrace.LockTracer` whose
            ``race_detector`` is (or will feed) ``detector`` — guard
            locks are wrapped through it so lock-order tracing and race
            detection share one set of proxies.
        fields: explicit ``field -> guard attr`` map overriding the
            class's parsed annotations (used for exec'd fixture classes);
            a ``None`` guard watches the field without wrapping any lock.

    Returns the field names actually being watched.  Fields whose guard
    could not be wrapped (e.g. a ``threading.Condition``) are left
    unwatched rather than risk false positives.
    """
    guard_map = dict(fields) if fields is not None else dict(
        class_guards(type(obj)).fields
    )
    wrapped_guards = set()
    for guard_attr in sorted({g for g in guard_map.values() if g}):
        lock = getattr(obj, guard_attr, None)
        if lock is None:
            continue
        if isinstance(lock, threading.Condition):
            continue  # proxying would lose wait()/notify(); leave it be
        if getattr(lock, "_tracer", None) is not None:
            wrapped_guards.add(guard_attr)  # already a traced proxy
            continue
        if hasattr(lock, "acquire_read") or hasattr(lock, "acquire"):
            proxy = tracer.wrap(lock, f"{label}.{guard_attr}")
            object.__setattr__(obj, guard_attr, proxy)
            wrapped_guards.add(guard_attr)
    watched = frozenset(
        attr
        for attr, guard in guard_map.items()
        if guard is None or guard in wrapped_guards
    )
    if watched:
        obj.__class__ = _patched_class(type(obj))
        _WATCH[id(obj)] = (detector, label, watched)
    return sorted(watched)


def deinstrument(obj: object) -> None:
    """Detach the access hooks installed by :func:`instrument`."""
    _WATCH.pop(id(obj), None)
