"""Per-query cost profiling: counters, activation, aggregation, merge,
and the canonical (timing-stripped) export."""

from __future__ import annotations

import json
import threading

import pytest

from repro.engine import XRankEngine
from repro.obs.profile import (
    COUNTER_FIELDS,
    ProfileRegistry,
    QueryProfile,
    activate,
    active_profile,
    canonical_profile_dict,
    canonical_profile_json,
    merge_snapshots,
    result_bucket,
)
from repro.service.core import XRankService

DOCS = [
    "<doc><title>alpha beta</title><p>alpha gamma delta</p></doc>",
    "<doc><title>beta gamma</title><p>alpha beta beta</p></doc>",
    "<doc><title>delta</title><p>gamma gamma alpha</p></doc>",
]


def build_engine() -> XRankEngine:
    engine = XRankEngine()
    for index, doc in enumerate(DOCS):
        engine.add_xml(doc, uri=f"doc{index}")
    engine.build(kinds=["hdil", "dil"])
    return engine


class TestResultBucket:
    @pytest.mark.parametrize(
        "count,label",
        [(0, "0"), (1, "1-3"), (3, "1-3"), (4, "4-10"), (10, "4-10"),
         (11, "11-30"), (30, "11-30"), (31, "31+"), (1000, "31+")],
    )
    def test_boundaries(self, count, label):
        assert result_bucket(count) == label


class TestQueryProfile:
    def test_counters_start_at_zero_with_full_schema(self):
        profile = QueryProfile()
        counters = profile.counters()
        assert set(counters) == set(COUNTER_FIELDS)
        assert all(value == 0 for value in counters.values())
        assert profile.nonzero() == {}
        assert profile.total() == 0

    def test_nonzero_and_total_track_increments(self):
        profile = QueryProfile()
        profile.postings_scanned += 7
        profile.heap_pushes += 2
        assert profile.nonzero() == {"postings_scanned": 7, "heap_pushes": 2}
        assert profile.total() == 9

    def test_add_cpu_accumulates_per_stage(self):
        profile = QueryProfile()
        profile.add_cpu("evaluate", 100)
        profile.add_cpu("evaluate", 50)
        profile.add_cpu("merge", 10)
        assert profile.cpu_ns == {"evaluate": 150, "merge": 10}

    def test_slots_reject_unknown_counters(self):
        profile = QueryProfile()
        with pytest.raises(AttributeError):
            profile.no_such_counter = 1


class TestActivation:
    def test_activate_installs_and_restores(self):
        assert active_profile() is None
        profile = QueryProfile()
        with activate(profile):
            assert active_profile() is profile
        assert active_profile() is None

    def test_activate_none_is_a_noop_context(self):
        with activate(None) as installed:
            assert installed is None
            assert active_profile() is None

    def test_activations_nest(self):
        outer, inner = QueryProfile(), QueryProfile()
        with activate(outer):
            with activate(inner):
                assert active_profile() is inner
            assert active_profile() is outer

    def test_activation_is_thread_local(self):
        profile = QueryProfile()
        seen = []

        def other_thread():
            seen.append(active_profile())

        with activate(profile):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join(timeout=10)
        assert seen == [None]

    def test_restores_even_when_the_block_raises(self):
        with pytest.raises(RuntimeError):
            with activate(QueryProfile()):
                raise RuntimeError("boom")
        assert active_profile() is None


class TestProfileRegistry:
    def make_profile(self, scanned=10):
        profile = QueryProfile()
        profile.postings_scanned += scanned
        profile.add_cpu("evaluate", 1000)
        return profile

    def test_record_aggregates_same_key(self):
        registry = ProfileRegistry()
        registry.record("hdil", "ranked:2kw", 5, self.make_profile(10))
        registry.record("hdil", "ranked:2kw", 6, self.make_profile(20))
        snapshot = registry.snapshot()
        assert snapshot["queries"] == 2
        (entry,) = snapshot["profiles"]
        assert entry["queries"] == 2
        assert entry["counters"]["postings_scanned"] == 30
        assert entry["cpu_ns"] == {"evaluate": 2000}
        assert entry["results"] == "4-10"

    def test_distinct_keys_stay_distinct_and_sorted(self):
        registry = ProfileRegistry()
        registry.record("rdil", "ranked:1kw", 1, self.make_profile())
        registry.record("dil", "ranked:1kw", 1, self.make_profile())
        keys = [
            (e["evaluator"], e["shape"], e["results"])
            for e in registry.snapshot()["profiles"]
        ]
        assert keys == sorted(keys)
        assert len(keys) == 2

    def test_bounded_with_overflow_accounting(self):
        registry = ProfileRegistry(max_entries=2)
        registry.record("a", "s", 1, self.make_profile())
        registry.record("b", "s", 1, self.make_profile())
        registry.record("c", "s", 1, self.make_profile())  # new key: dropped
        registry.record("a", "s", 1, self.make_profile())  # existing: folds
        snapshot = registry.snapshot()
        assert snapshot["overflow"] == 1
        assert snapshot["queries"] == 4
        assert len(snapshot["profiles"]) == 2

    def test_clear_resets_everything(self):
        registry = ProfileRegistry()
        registry.record("hdil", "s", 1, self.make_profile())
        registry.clear()
        assert registry.snapshot() == {
            "enabled": True, "queries": 0, "overflow": 0, "profiles": [],
        }


class TestCanonicalExport:
    def snapshot(self):
        registry = ProfileRegistry()
        profile = QueryProfile()
        profile.postings_scanned += 3
        profile.add_cpu("evaluate", 123456)
        registry.record("hdil", "ranked:1kw", 2, profile)
        return registry.snapshot()

    def test_cpu_ns_is_stripped_recursively(self):
        canonical = canonical_profile_dict(self.snapshot())
        assert "cpu_ns" not in json.dumps(canonical)
        (entry,) = canonical["profiles"]
        assert entry["counters"]["postings_scanned"] == 3

    def test_json_is_byte_stable_across_differing_timings(self):
        first = self.snapshot()
        second = self.snapshot()
        # Same workload, wildly different CPU readings:
        second["profiles"][0]["cpu_ns"] = {"evaluate": 999999999}
        assert canonical_profile_json(first) == canonical_profile_json(second)

    def test_json_is_compact_and_sorted(self):
        text = canonical_profile_json(self.snapshot())
        assert ": " not in text and ", " not in text
        assert json.loads(text)["enabled"] is True


class TestMergeSnapshots:
    def snapshot_for(self, evaluator, scanned):
        registry = ProfileRegistry()
        profile = QueryProfile()
        profile.postings_scanned += scanned
        profile.add_cpu("evaluate", 500)
        registry.record(evaluator, "ranked:1kw", 1, profile)
        return registry.snapshot()

    def test_same_key_cells_sum_fieldwise(self):
        merged = merge_snapshots(
            [self.snapshot_for("hdil", 4), self.snapshot_for("hdil", 6)]
        )
        assert merged["enabled"] is True
        assert merged["queries"] == 2
        (entry,) = merged["profiles"]
        assert entry["counters"]["postings_scanned"] == 10
        assert entry["cpu_ns"] == {"evaluate": 1000}

    def test_disabled_and_empty_payloads_are_skipped(self):
        merged = merge_snapshots(
            [{"enabled": False, "queries": 9}, {}, None,
             self.snapshot_for("dil", 2)]
        )
        assert merged["queries"] == 1
        assert len(merged["profiles"]) == 1

    def test_all_disabled_yields_disabled(self):
        merged = merge_snapshots([{"enabled": False}, {}])
        assert merged["enabled"] is False
        assert merged["profiles"] == []

    def test_merge_of_one_snapshot_is_identity_on_counters(self):
        original = self.snapshot_for("hdil", 5)
        merged = merge_snapshots([original])
        assert canonical_profile_json(merged) == canonical_profile_json(
            original
        )


class TestServiceProfiling:
    def test_search_populates_the_registry(self):
        service = XRankService(build_engine(), profile=True)
        service.search("alpha beta", m=5)
        snapshot = service.profile_snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["queries"] == 1
        (entry,) = snapshot["profiles"]
        assert entry["counters"]["postings_scanned"] > 0
        assert entry["shape"].endswith("2kw")

    def test_result_cache_hit_is_attributed(self):
        service = XRankService(build_engine(), profile=True)
        service.search("alpha", m=5)
        service.search("alpha", m=5)  # result-cache hit
        snapshot = service.profile_snapshot()
        total_hits = sum(
            e["counters"]["result_cache_hits"] for e in snapshot["profiles"]
        )
        assert total_hits == 1

    def test_disabled_service_reports_disabled(self):
        service = XRankService(build_engine())
        service.search("alpha", m=5)
        snapshot = service.profile_snapshot()
        assert snapshot == {"enabled": False, "queries": 0, "profiles": []}

    def test_profiles_are_deterministic_across_runs(self):
        def run():
            service = XRankService(build_engine(), profile=True)
            for query in ("alpha", "alpha beta", "gamma delta"):
                service.search(query, m=5)
            return canonical_profile_json(service.profile_snapshot())

        assert run() == run()
