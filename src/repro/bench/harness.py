"""Benchmark harness: suite construction, query measurement, table output.

One :class:`BenchmarkSuite` holds the two corpora (DBLP-like, XMark-like),
their index builders and all five indexes per corpus — everything the
Table 1 / Figure 10 / Figure 11 drivers in :mod:`repro.bench.experiments`
need.  Building a suite is expensive, so the pytest benchmarks construct it
once per session.

Queries are measured two ways:

* **simulated I/O cost** (primary) — deterministic milliseconds from the
  storage cost model, after a buffer-pool flush per query (the paper's cold
  OS cache).  This is what reproduces the paper's *shapes*.
* **wall-clock** (secondary) — whatever pytest-benchmark observes; reported
  but machine-dependent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import RankingParams, StorageParams
from ..datasets.dblp import Corpus, generate_dblp
from ..datasets.textgen import PlantedKeywords
from ..datasets.xmark import generate_xmark
from ..index.builder import IndexBuilder
from ..query.dil_eval import DILEvaluator
from ..query.hdil_eval import HDILEvaluator
from ..query.naive_eval import NaiveIdEvaluator, NaiveRankEvaluator
from ..query.rdil_eval import RDILEvaluator
from ..storage.iostats import IOStats

#: Table 1 presentation order.
APPROACHES = ("naive-id", "naive-rank", "dil", "rdil", "hdil")

#: Storage calibration for the scaled-down benchmark corpora.
#:
#: The paper ran against 143 MB / 113 MB corpora whose frequent-keyword
#: inverted lists span thousands of 2003-era disk pages; our corpora are
#: roughly two orders of magnitude smaller.  To keep the *ratio* between a
#: full sequential list scan (DIL) and a handful of random index probes
#: (RDIL) in the same operating regime as the paper's hardware, the bench
#: disk uses small pages and a seek:transfer ratio of 4:1 instead of a
#: modern 160:1 — i.e. per-page transfer cost is scaled up by the same
#: factor the corpus is scaled down.  Only relative costs are meaningful.
BENCH_STORAGE = StorageParams(
    page_size=1024,
    buffer_pool_pages=64,
    seek_cost_ms=4.0,
    transfer_cost_ms=1.0,
)


@dataclass
class QueryMeasurement:
    """Outcome of one measured query."""

    approach: str
    keywords: List[str]
    m: int
    cost_ms: float
    wall_ms: float
    num_results: int
    io: IOStats


@dataclass
class SeriesPoint:
    """One (x, per-approach y) point of a figure."""

    x: float
    values: Dict[str, float] = field(default_factory=dict)


@dataclass
class ExperimentTable:
    """A formatted experiment outcome (one paper table or figure)."""

    name: str
    x_label: str
    y_label: str
    points: List[SeriesPoint] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def format(self) -> str:
        """Render the table as aligned plain text."""
        approaches = sorted(
            {a for point in self.points for a in point.values},
            key=lambda a: APPROACHES.index(a) if a in APPROACHES else 99,
        )
        header = f"{self.x_label:<14}" + "".join(
            f"{a:>12}" for a in approaches
        )
        lines = [f"== {self.name} ==  ({self.y_label})", header]
        for point in self.points:
            row = f"{point.x:<14}" + "".join(
                f"{point.values.get(a, float('nan')):>12.2f}" for a in approaches
            )
            lines.append(row)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


class IndexedCorpus:
    """One corpus with all five indexes and evaluators built."""

    def __init__(
        self,
        corpus: Corpus,
        ranking: Optional[RankingParams] = None,
        storage: Optional[StorageParams] = None,
    ):
        self.corpus = corpus
        self.ranking = ranking or RankingParams()
        self.builder = IndexBuilder(corpus.graph, storage_params=storage)
        self.indexes = self.builder.build_all()
        self.evaluators = {
            "naive-id": NaiveIdEvaluator(self.indexes["naive-id"], self.ranking),
            "naive-rank": NaiveRankEvaluator(
                self.indexes["naive-rank"], self.ranking
            ),
            "dil": DILEvaluator(self.indexes["dil"], self.ranking),
            "rdil": RDILEvaluator(self.indexes["rdil"], self.ranking),
            "hdil": HDILEvaluator(self.indexes["hdil"], self.ranking),
        }

    def measure(
        self, approach: str, keywords: Sequence[str], m: int = 10
    ) -> QueryMeasurement:
        """Run one query cold and collect simulated + wall measurements."""
        index = self.indexes[approach]
        evaluator = self.evaluators[approach]
        index.reset_measurement(cold_cache=True)
        started = time.perf_counter()
        results = evaluator.evaluate(list(keywords), m=m)
        wall_ms = (time.perf_counter() - started) * 1000.0
        return QueryMeasurement(
            approach=approach,
            keywords=list(keywords),
            m=m,
            cost_ms=index.io_cost_ms(),
            wall_ms=wall_ms,
            num_results=len(results),
            io=index.disk.stats.snapshot(),
        )

    def mean_cost(
        self, approach: str, queries: Sequence[Sequence[str]], m: int = 10
    ) -> float:
        """Mean simulated cost over a workload."""
        costs = [self.measure(approach, q, m).cost_ms for q in queries]
        return sum(costs) / len(costs)


class BenchmarkSuite:
    """Both corpora, fully indexed, plus the planted-keyword plan."""

    def __init__(
        self,
        dblp_papers: int = 1200,
        xmark_items: int = 200,
        xmark_auctions: int = 300,
        seed: int = 5,
        storage: Optional[StorageParams] = None,
        ranking: Optional[RankingParams] = None,
    ):
        storage = storage or BENCH_STORAGE
        self.planted = PlantedKeywords.default()
        # Rates tuned so planted keywords are *frequent* (long inverted
        # lists, the paper's interesting case) at bench-corpus scale.
        self.planted.correlated_rate = 0.5
        self.planted.independent_rate = 0.7
        self.dblp = IndexedCorpus(
            generate_dblp(
                num_papers=dblp_papers,
                seed=seed,
                planted=self.planted,
                plant_anecdotes=True,
            ),
            ranking=ranking,
            storage=storage,
        )
        self.xmark = IndexedCorpus(
            generate_xmark(
                num_items=xmark_items,
                num_auctions=xmark_auctions,
                seed=seed + 1,
                planted=self.planted,
                plant_anecdotes=True,
            ),
            ranking=ranking,
            storage=storage,
        )

    @property
    def corpora(self) -> Dict[str, IndexedCorpus]:
        return {"dblp": self.dblp, "xmark": self.xmark}
