"""Configuration-matrix agreement tests.

The Dewey-family evaluators must agree on the top-m under *every*
configuration combination — scorer x aggregation x proximity x decay — not
just the defaults.  This matrix guards the interactions: e.g. tf-idf scores
with f = sum change posting values and rank arithmetic simultaneously, and
the RDIL threshold bound must survive all of it.
"""

import itertools
import random

import pytest

from repro.config import RankingParams
from repro.index.builder import IndexBuilder
from repro.query.dil_eval import DILEvaluator
from repro.query.hdil_eval import HDILEvaluator
from repro.query.rdil_eval import RDILEvaluator

from conftest import random_graph

SCORERS = ("elemrank", "tfidf")
AGGREGATIONS = ("max", "sum")
PROXIMITY = (True, False)
DECAYS = (0.5, 1.0)


@pytest.fixture(scope="module")
def graph():
    return random_graph(random.Random(77), num_docs=4, max_depth=4)


@pytest.mark.parametrize(
    ("scorer", "aggregation", "use_proximity", "decay"),
    list(itertools.product(SCORERS, AGGREGATIONS, PROXIMITY, DECAYS)),
)
def test_dewey_family_agreement_matrix(
    graph, scorer, aggregation, use_proximity, decay
):
    ranking = RankingParams(
        decay=decay, aggregation=aggregation, use_proximity=use_proximity
    )
    builder = IndexBuilder(graph, scorer=scorer)
    dil = DILEvaluator(builder.build_dil(), ranking)
    rdil = RDILEvaluator(builder.build_rdil(), ranking)
    hdil = HDILEvaluator(builder.build_hdil(), ranking)

    for keywords in (["alpha", "beta"], ["gamma", "delta"]):
        reference = [
            round(r.rank, 8) for r in dil.evaluate(keywords, m=5)
        ]
        for name, other in (("rdil", rdil), ("hdil", hdil)):
            got = [round(r.rank, 8) for r in other.evaluate(keywords, m=5)]
            assert got == pytest.approx(reference, rel=1e-5), (
                f"{name} diverges under scorer={scorer}, f={aggregation}, "
                f"proximity={use_proximity}, decay={decay}"
            )


@pytest.mark.parametrize("scorer", SCORERS)
def test_matrix_matches_reference_semantics(graph, scorer):
    """Result SETS are scorer-independent (scores change, membership not)."""
    from conftest import reference_results

    builder = IndexBuilder(graph, scorer=scorer)
    evaluator = DILEvaluator(builder.build_dil())
    got = {
        r.dewey.components
        for r in evaluator.evaluate(["alpha", "beta"], m=10_000)
    }
    expected = set(
        reference_results(graph, ["alpha", "beta"], builder.elemranks)
    )
    assert got == expected
