"""Deep structural validators for the built index structures.

The paper's data structures carry implicit invariants that nothing
re-checks after construction: B+-tree keys are strictly increasing with
a consistent leaf chain (Section 4.3.1), inverted lists are strictly
Dewey-sorted with lossless posting encodings (Section 4.2), the three
Dewey-family indexes answer identical queries identically (Section 4.4's
point is that HDIL matches DIL/RDIL *results* while beating their
costs), and ElemRank converged to finite non-negative scores (Section
2.3).  A codec change, a bulk-load bug, or a bad incremental merge can
silently break any of them while queries keep returning *something*.

Each ``check_*`` function returns a list of
:class:`InvariantViolation`; :func:`check_engine` runs the whole battery
against every built index kind of one engine.  All checks are pure
reads — they never mutate the engine — so ``repro check --strict`` can
run them against a freshly built corpus in CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..index.postings import Posting
from ..storage.btree import BTree, _decode_internal, _decode_leaf
from ..storage.deweycodec import CODECS
from ..xmlmodel.dewey import DeweyId

#: Rank agreement tolerance across index kinds (float32 payload rounding).
_RANK_TOLERANCE = 1e-6


@dataclass(frozen=True)
class InvariantViolation:
    """One failed structural check."""

    check: str      # which validator fired (e.g. "btree", "posting-lists")
    location: str   # what it was looking at ("rdil btree 'xql'", ...)
    message: str

    def format(self) -> str:
        return f"[{self.check}] {self.location}: {self.message}"


# -- B+-trees --------------------------------------------------------------------


def check_btree(tree: BTree, name: str = "btree") -> List[InvariantViolation]:
    """Key ordering, separator bounds, occupancy, and leaf-chain integrity."""
    violations: List[InvariantViolation] = []

    def bad(message: str) -> None:
        violations.append(InvariantViolation("btree", name, message))

    discovered_leaves: List[int] = []

    def walk(page_id: int, level: int, low: Optional[DeweyId], high: Optional[DeweyId]) -> None:
        if level == tree.height:
            discovered_leaves.append(page_id)
            for key, _ in tree._leaf_entries(page_id):
                if low is not None and key < low:
                    bad(f"leaf key {key} below its subtree separator {low}")
                if high is not None and key >= high:
                    bad(f"leaf key {key} at/above the next separator {high}")
            return
        children = _decode_internal(tree.disk.read(page_id))
        if not children:
            bad(f"empty internal node on page {page_id}")
            return
        keys = [key for key, _ in children]
        for a, b in zip(keys, keys[1:]):
            if not a < b:
                bad(f"internal separators not strictly increasing: {a} !< {b}")
        for position, (key, child) in enumerate(children):
            child_low = key if position > 0 else low
            child_high = (
                children[position + 1][0] if position + 1 < len(children) else high
            )
            walk(child, level + 1, child_low, child_high)

    walk(tree.root_page, 1, None, None)

    if discovered_leaves != tree.leaf_pages:
        bad(
            f"leaf pages reachable from the root {discovered_leaves} differ "
            f"from the recorded leaf level {tree.leaf_pages}"
        )

    # Sibling pointers (owned leaves only; external leaves are consecutive
    # list pages with no stored chain).
    if tree.leaf_decoder is None:
        for position, page_id in enumerate(tree.leaf_pages):
            prev_page, next_page, _ = _decode_leaf(tree.disk.read(page_id))
            want_prev = tree.leaf_pages[position - 1] if position > 0 else -1
            want_next = (
                tree.leaf_pages[position + 1]
                if position + 1 < len(tree.leaf_pages)
                else -1
            )
            if (prev_page, next_page) != (want_prev, want_next):
                bad(
                    f"leaf {page_id} chain pointers ({prev_page}, {next_page}) "
                    f"!= expected ({want_prev}, {want_next})"
                )

    # Global key order + entry accounting over the whole leaf level.
    total = 0
    previous: Optional[DeweyId] = None
    for page_id in tree.leaf_pages:
        entries = tree._leaf_entries(page_id)
        if not entries and tree.num_entries > 0 and len(tree.leaf_pages) > 1:
            bad(f"empty leaf page {page_id} in a non-empty tree")
        for key, _ in entries:
            total += 1
            if previous is not None and not previous < key:
                bad(f"leaf keys out of order: {previous} !< {key}")
            previous = key
    if total != tree.num_entries:
        bad(f"leaf level holds {total} entries, tree claims {tree.num_entries}")
    return violations


# -- posting lists ----------------------------------------------------------------


def check_posting_lists(
    engine, sample: int = 8
) -> List[InvariantViolation]:
    """Dewey order, codec round-trips, rank order, and head consistency.

    Checks up to ``sample`` keywords (the longest lists — they exercise
    page boundaries) per built Dewey-family index kind.
    """
    violations: List[InvariantViolation] = []
    for kind, index in sorted(engine._indexes.items()):
        if kind == "dil" or kind == "dil-incremental":
            keywords = _sampled(index, sample)
            for keyword in keywords:
                cursor = index.cursor(keyword)
                if cursor is None:
                    continue
                violations.extend(
                    _check_record_stream(
                        _drain_raw(cursor), f"{kind} list {keyword!r}",
                        dewey_sorted=True,
                    )
                )
        elif kind == "rdil":
            for keyword in _sampled(index, sample):
                cursor = index.ranked_cursor(keyword)
                if cursor is not None:
                    violations.extend(
                        _check_record_stream(
                            _drain_raw(cursor), f"rdil ranked list {keyword!r}",
                            rank_sorted=True,
                        )
                    )
                tree = index.btree(keyword)
                if tree is not None:
                    violations.extend(check_btree(tree, f"rdil btree {keyword!r}"))
        elif kind == "hdil":
            for keyword in _sampled(index, sample):
                cursor = index.full_cursor(keyword)
                if cursor is not None:
                    violations.extend(
                        _check_record_stream(
                            _drain_raw(cursor), f"hdil full list {keyword!r}",
                            dewey_sorted=True,
                        )
                    )
                head = index.ranked_cursor(keyword)
                if head is not None:
                    violations.extend(
                        _check_record_stream(
                            _drain_raw(head), f"hdil ranked head {keyword!r}",
                            rank_sorted=True,
                        )
                    )
                if index.head_length(keyword) > index.list_length(keyword):
                    violations.append(
                        InvariantViolation(
                            "posting-lists",
                            f"hdil head {keyword!r}",
                            "ranked head is longer than the full list",
                        )
                    )
                tree = index.btree(keyword)
                if tree is not None:
                    violations.extend(check_btree(tree, f"hdil btree {keyword!r}"))
    return violations


def _sampled(index, sample: int) -> List[str]:
    keywords = sorted(index.keywords(), key=lambda k: (-index.list_length(k), k))
    return keywords[:sample]


def _drain_raw(cursor) -> List[bytes]:
    records: List[bytes] = []
    while not cursor.eof:
        records.append(cursor.next())
    return records


def _check_record_stream(
    records: Sequence[bytes],
    location: str,
    dewey_sorted: bool = False,
    rank_sorted: bool = False,
) -> List[InvariantViolation]:
    violations: List[InvariantViolation] = []

    def bad(message: str) -> None:
        violations.append(InvariantViolation("posting-lists", location, message))

    previous: Optional[Posting] = None
    for raw in records:
        posting = Posting.decode(raw)
        if posting.encode() != raw:
            bad(f"posting at {posting.dewey} does not round-trip its encoding")
        if not math.isfinite(posting.elemrank) or posting.elemrank < 0:
            bad(f"posting at {posting.dewey} has bad rank {posting.elemrank}")
        if any(b <= a for a, b in zip(posting.positions, posting.positions[1:])):
            bad(f"positions not strictly increasing at {posting.dewey}")
        if previous is not None:
            if dewey_sorted and not previous.dewey < posting.dewey:
                bad(
                    f"Dewey order violated: {previous.dewey} !< {posting.dewey}"
                )
            if rank_sorted and posting.elemrank > previous.elemrank + 1e-12:
                bad(
                    f"rank order violated at {posting.dewey}: "
                    f"{posting.elemrank} > {previous.elemrank}"
                )
        previous = posting
    return violations


# -- Dewey codecs -----------------------------------------------------------------


def check_dewey_codecs(ids: Sequence[DeweyId]) -> List[InvariantViolation]:
    """Every codec must round-trip the (Dewey-ordered) ID list losslessly."""
    violations: List[InvariantViolation] = []
    ordered = sorted(ids)
    for name, (encode, decode) in CODECS.items():
        try:
            decoded = decode(encode(ordered))
        except Exception as exc:
            violations.append(
                InvariantViolation(
                    "dewey-codec", name, f"codec raised {type(exc).__name__}: {exc}"
                )
            )
            continue
        if decoded != ordered:
            violations.append(
                InvariantViolation(
                    "dewey-codec",
                    name,
                    f"round-trip lost data ({len(ordered)} ids in, "
                    f"{len(decoded)} out or values changed)",
                )
            )
    return violations


# -- cross-index agreement --------------------------------------------------------


def check_index_agreement(
    engine,
    queries: Optional[Sequence[Sequence[str]]] = None,
    m: int = 10,
) -> List[InvariantViolation]:
    """DIL/RDIL/HDIL must produce the same ranked answer for the same query.

    Ranks are compared as sorted-descending vectors within a small
    tolerance (float32 payloads), not by result identity: evaluators may
    break exact rank ties differently at the top-m boundary, which is
    not an index-corruption signal.
    """
    kinds = [k for k in ("dil", "rdil", "hdil") if k in engine._indexes]
    if len(kinds) < 2:
        return []
    if queries is None:
        queries = _default_queries(engine)
    violations: List[InvariantViolation] = []
    for keywords in queries:
        answers: Dict[str, List[float]] = {}
        for kind in kinds:
            results = engine._evaluators[kind].evaluate(list(keywords), m=m)
            answers[kind] = sorted((r.rank for r in results), reverse=True)
        reference_kind = kinds[0]
        reference = answers[reference_kind]
        for kind in kinds[1:]:
            ranks = answers[kind]
            location = f"query {' '.join(keywords)!r}: {reference_kind} vs {kind}"
            if len(ranks) != len(reference):
                violations.append(
                    InvariantViolation(
                        "index-agreement",
                        location,
                        f"{len(reference)} results vs {len(ranks)}",
                    )
                )
                continue
            for a, b in zip(reference, ranks):
                if abs(a - b) > _RANK_TOLERANCE:
                    violations.append(
                        InvariantViolation(
                            "index-agreement",
                            location,
                            f"rank vectors diverge: {a:.8f} vs {b:.8f}",
                        )
                    )
                    break
    return violations


def _default_queries(engine) -> List[List[str]]:
    """Sampled keyword sets: frequent singletons plus co-occurring pairs."""
    if engine.builder is None:
        return []
    postings = engine.builder.direct_postings
    frequent = sorted(postings, key=lambda k: (-len(postings[k]), k))[:4]
    queries: List[List[str]] = [[keyword] for keyword in frequent]
    # Pairs that co-occur in at least one document (conjunctive queries
    # over disjoint keyword sets would just compare empty answers).
    for i, first in enumerate(frequent):
        docs_first = {p.dewey.doc_id for p in postings[first]}
        for second in frequent[i + 1 :]:
            if docs_first & {p.dewey.doc_id for p in postings[second]}:
                queries.append([first, second])
    return queries


# -- ElemRank ---------------------------------------------------------------------


def check_elemrank(engine) -> List[InvariantViolation]:
    """Convergence sanity: converged, finite residual, sane scores."""
    if engine.builder is None:
        return []
    violations: List[InvariantViolation] = []
    result = engine.builder.elemrank_result

    def bad(message: str) -> None:
        violations.append(InvariantViolation("elemrank", result.variant.value, message))

    if not result.converged:
        bad(f"did not converge in {result.iterations} iterations")
    if not math.isfinite(result.residual):
        bad(f"non-finite residual {result.residual}")
    for dewey, score in engine.builder.elemranks.items():
        if not math.isfinite(score) or score < 0:
            bad(f"score of {dewey} is {score}")
            break  # one bad score implies a systemic failure; don't spam
    return violations


# -- parallel build identity -------------------------------------------------------


def check_parallel_build(
    sources: Sequence[Tuple[str, str]],
    worker_counts: Sequence[int] = (2, 3),
    kinds: Sequence[str] = ("hdil",),
) -> List[InvariantViolation]:
    """The repro.build contract: ``build(workers=k)`` is byte-identical.

    Builds the given ``(uri, source)`` corpus once sequentially and once
    per worker count through the sharded pipeline, then requires identical
    posting maps (encoded bytes and keyword order), ElemRank tables, and
    top-10 probe-query results.  A divergence means the shard merge lost
    its determinism — the exact regression this gate exists to catch.
    """
    from ..build.verify import compare_engines, default_probe_queries
    from ..engine import XRankEngine

    corpus = [(source, uri) for uri, source in sources]

    def built(workers: int) -> XRankEngine:
        engine = XRankEngine()
        engine.build(kinds=list(kinds), corpus=corpus, workers=workers)
        return engine

    violations: List[InvariantViolation] = []
    reference = built(1)
    queries = default_probe_queries(reference)
    for workers in worker_counts:
        for problem in compare_engines(
            reference, built(workers), queries, kind=kinds[0]
        ):
            violations.append(
                InvariantViolation(
                    "parallel-build",
                    f"workers={workers}",
                    problem,
                )
            )
    return violations


# -- orchestration ----------------------------------------------------------------


def check_engine(
    engine,
    queries: Optional[Sequence[Sequence[str]]] = None,
    sample: int = 8,
    m: int = 10,
) -> List[InvariantViolation]:
    """Run the full battery against one built engine."""
    violations: List[InvariantViolation] = []
    violations.extend(check_posting_lists(engine, sample=sample))
    violations.extend(check_elemrank(engine))
    violations.extend(check_index_agreement(engine, queries=queries, m=m))
    if engine.builder is not None and engine.builder.direct_postings:
        postings = engine.builder.direct_postings
        longest = max(postings, key=lambda k: len(postings[k]))
        violations.extend(
            check_dewey_codecs([p.dewey for p in postings[longest]])
        )
    return violations
